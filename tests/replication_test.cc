// Warm-standby replication tests (src/replication/): snapshot bootstrap,
// pipelined record shipping, tail retransmission after a dropped link,
// fence-epoch split-brain protection, the dirty-plane restart discipline,
// and the raw-mode socket transport over real loopback sockets.
//
// The in-memory tests wire two Replicas through a queued Link so every
// send is delivered on a later pump() — no re-entrant decoding, and the
// link can drop, corrupt, partition, or chunk bytes like a real TCP
// stream (or a real network split) would.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bus/message_bus.h"
#include "common/rng.h"
#include "core/health_monitor.h"
#include "core/journal.h"
#include "core/persistence.h"
#include "fault/fault_plan.h"
#include "net/asyncio/conman.h"
#include "net/asyncio/event_loop.h"
#include "replication/repl_frame.h"
#include "replication/repl_transport.h"
#include "replication/replica.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

PolicyRule make_rule(std::uint8_t octet, PolicyAction action) {
  PolicyRule rule;
  rule.action = action;
  rule.properties.ether_type = 0x0800;
  rule.source.ip = Ipv4Address(10, 0, 0, octet);
  rule.source.user = Username{"user" + std::to_string(octet)};
  rule.destination.l4_port = static_cast<std::uint16_t>(1000 + octet);
  return rule;
}

BindingEvent make_binding(BindingKind kind, std::uint8_t octet) {
  BindingEvent event;
  event.kind = kind;
  event.user = Username{"user" + std::to_string(octet)};
  event.host = Hostname{"host" + std::to_string(octet)};
  event.ip = Ipv4Address(10, 0, 0, octet);
  event.mac = MacAddress::from_u64(0xa000 + octet);
  event.dpid = Dpid{1};
  event.port = PortNo{octet};
  return event;
}

// One replica node: store + journal + state plane + the Replica endpoint.
struct Node {
  explicit Node(std::uint64_t seed, HealthMonitor* health = nullptr,
                ReplicaConfig config = {})
      : manager(bus), erm(bus) {
    config.seed = seed;
    journal = std::make_unique<Journal>(store);
    manager.attach_journal(journal.get());
    erm.attach_journal(journal.get());
    replica = std::make_unique<Replica>(config, *journal, manager, erm, health);
  }

  std::string image() const {
    return save_policies(manager) + "=== " + save_bindings(erm);
  }

  InMemoryJournalStore store;
  MessageBus bus;
  PolicyManager manager;
  EntityResolutionManager erm;
  std::unique_ptr<Journal> journal;
  std::unique_ptr<Replica> replica;
};

// Queued bidirectional byte link between two replicas. Sends enqueue;
// pump() delivers FIFO, so handler stacks never nest. take_down() is an
// RST both endpoints observe; partition() silently eats bytes (a network
// split: the sender keeps believing the link is up).
struct Link {
  Link(Replica& a, Replica& b) : a_(&a), b_(&b) {
    a.set_send([this](const std::string& bytes) { enqueue(1, bytes); });
    b.set_send([this](const std::string& bytes) { enqueue(0, bytes); });
  }

  void enqueue(int dest, const std::string& bytes) {
    if (!up || partitioned) return;
    queue.emplace_back(dest, bytes);
  }

  void take_down() {
    up = false;
    queue.clear();
    a_->on_link_down();
    b_->on_link_down();
  }
  void bring_up() { up = true; }

  void partition() {
    partitioned = true;
    queue.clear();
  }
  void heal() { partitioned = false; }

  void pump() {
    while (!queue.empty()) {
      auto [dest, bytes] = std::move(queue.front());
      queue.pop_front();
      Replica* target = dest == 0 ? a_ : b_;
      const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
      if (chunker == nullptr) {
        target->on_bytes(data, bytes.size());
        continue;
      }
      std::size_t off = 0;  // torn delivery: 1..7 bytes at a time
      while (off < bytes.size()) {
        const auto n = static_cast<std::size_t>(chunker->uniform_int(1, 7));
        const std::size_t take = std::min(n, bytes.size() - off);
        target->on_bytes(data + off, take);
        off += take;
      }
    }
  }

  Replica* a_;
  Replica* b_;
  std::deque<std::pair<int, std::string>> queue;
  bool up = true;
  bool partitioned = false;
  Rng* chunker = nullptr;
};

// The journal_test op script, reused as the replicated workload. Ops in
// [from, upto) run; the rest are skipped (prefix/suffix oracles). Note op
// 5 (the revoke) only runs when the same invocation inserted enough rules.
std::size_t run_script(Node& node, std::size_t upto = SIZE_MAX,
                       std::size_t from = 0) {
  std::size_t op = 0;
  std::vector<PolicyRuleId> ids;
  const auto step = [&](auto&& fn) {
    if (op >= from && op < upto) fn();
    ++op;
  };
  step([&] { ids.push_back(node.manager.insert(make_rule(1, PolicyAction::kAllow), PdpPriority{10}, "pdp-a")); });
  step([&] { node.erm.apply(make_binding(BindingKind::kUserHost, 1)); });
  step([&] { ids.push_back(node.manager.insert(make_rule(2, PolicyAction::kDeny), PdpPriority{20}, "pdp-b")); });
  step([&] { node.erm.apply(make_binding(BindingKind::kHostIp, 1)); });
  step([&] { ids.push_back(node.manager.insert(make_rule(3, PolicyAction::kAllow), PdpPriority{20}, "pdp-b")); });
  step([&] {
    if (ids.size() > 1) node.manager.revoke(ids[1]);
  });
  step([&] { node.erm.apply(make_binding(BindingKind::kIpMac, 2)); });
  step([&] {
    BindingEvent retract = make_binding(BindingKind::kUserHost, 1);
    retract.retracted = true;
    node.erm.apply(retract);
  });
  step([&] { ids.push_back(node.manager.insert(make_rule(4, PolicyAction::kDeny), PdpPriority{5}, "pdp-c")); });
  step([&] { node.erm.apply(make_binding(BindingKind::kMacLocation, 2)); });
  return op;
}

void expect_converged(const Node& primary, const Node& standby) {
  EXPECT_EQ(standby.image(), primary.image());
  EXPECT_EQ(standby.manager.epoch(), primary.manager.epoch());
  EXPECT_EQ(standby.erm.epoch(), primary.erm.epoch());
  EXPECT_EQ(standby.manager.next_id(), primary.manager.next_id());
  EXPECT_EQ(standby.journal->fence_epoch(), primary.journal->fence_epoch());
}

TEST(Replication, SnapshotBootstrapThenStreamingIsByteIdentical) {
  Node a(11);
  Node b(22);
  Link link(*a.replica, *b.replica);

  a.replica->become_primary();
  b.replica->become_standby();  // fresh standby: hello -> snapshot bootstrap
  link.pump();
  EXPECT_EQ(b.replica->stats().snapshots_installed, 1u);
  EXPECT_TRUE(a.replica->standby_synced());

  const std::size_t ops = run_script(a);
  link.pump();

  expect_converged(a, b);
  EXPECT_EQ(b.replica->stats().records_applied, ops);
  EXPECT_EQ(a.replica->stats().records_shipped, ops);
  // Cumulative acks drained the retransmit buffer completely.
  EXPECT_EQ(a.replica->retransmit_buffered(), 0u);

  // WAL ordering held on the standby: its OWN journal replays to the same
  // bytes (this is what makes promotion byte-identical).
  Node recovered(33);
  Journal reader(b.store);
  const auto recovery = reader.recover(recovered.manager, recovered.erm);
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  EXPECT_EQ(recovered.image(), a.image());
}

TEST(Replication, ChunkedDeliveryDecodesIdentically) {
  // Same workload, but every delivery is torn into 1..7-byte reads drawn
  // from a seeded FaultPlan: stream reassembly must not care.
  FaultPlan plan(0xfeed);
  Rng chunker(plan.rng().next_u64());
  Node a(11);
  Node b(22);
  Link link(*a.replica, *b.replica);
  link.chunker = &chunker;

  a.replica->become_primary();
  b.replica->become_standby();
  link.pump();
  run_script(a);
  link.pump();

  expect_converged(a, b);
  EXPECT_EQ(b.replica->stats().decode_errors, 0u);
}

TEST(Replication, BatchedShippingFlushesOnThresholdAndOnDemand) {
  ReplicaConfig batched;
  batched.flush_threshold = 1 << 20;  // nothing leaves until an explicit flush
  Node a(11, nullptr, batched);
  Node b(22);
  Link link(*a.replica, *b.replica);

  a.replica->become_primary();
  b.replica->become_standby();
  link.pump();

  run_script(a);
  link.pump();
  // Records accumulated in the batch: the standby has applied nothing yet.
  EXPECT_EQ(b.replica->stats().records_applied, 0u);

  a.replica->flush();
  link.pump();
  expect_converged(a, b);
  EXPECT_EQ(b.replica->stats().records_applied, 10u);
  // One pipelined batch; the whole batch is covered by ONE cumulative ack
  // (plus the snapshot's bootstrap ack).
  EXPECT_EQ(a.replica->stats().batches_flushed, 1u);
  EXPECT_EQ(b.replica->stats().acks_sent, 2u);
  EXPECT_EQ(a.replica->retransmit_buffered(), 0u);
}

TEST(Replication, DroppedLinkCatchesUpFromRetransmitTail) {
  Node a(11);
  Node b(22);
  Link link(*a.replica, *b.replica);

  a.replica->become_primary();
  b.replica->become_standby();
  link.pump();
  run_script(a, 5);
  link.pump();
  EXPECT_EQ(b.replica->stats().records_applied, 5u);

  // Link dies; the primary keeps appending. The new records cannot ship
  // (no link) but stay buffered for retransmission because no acks arrive.
  link.take_down();
  run_script(a, SIZE_MAX, 6);
  link.bring_up();

  // The standby detects the gap from the next heartbeat's high-water seq
  // and re-hellos; the primary retransmits the missing tail in-session.
  a.replica->tick_heartbeat();
  link.pump();

  EXPECT_EQ(a.replica->stats().retransmits, 4u);  // ops 6..9
  EXPECT_EQ(a.replica->stats().snapshots_sent, 1u);  // bootstrap only
  EXPECT_EQ(b.replica->stats().resyncs_requested, 1u);
  expect_converged(a, b);
}

TEST(Replication, CorruptStreamPoisonsDecoderThenResyncRecovers) {
  Node a(11);
  Node b(22);
  Link link(*a.replica, *b.replica);

  a.replica->become_primary();
  b.replica->become_standby();
  link.pump();
  run_script(a, 3);
  link.pump();

  run_script(a, 4, 3);  // one more record, corrupted in flight
  ASSERT_FALSE(link.queue.empty());
  link.queue.front().second[0] ^= 0xff;  // flip the magic byte
  link.pump();

  EXPECT_EQ(b.replica->stats().decode_errors, 1u);

  // The poisoned receiver dropped the link; model the TCP teardown both
  // sides see, reconnect, and let the heartbeat drive the resync.
  link.take_down();
  link.bring_up();
  a.replica->tick_heartbeat();
  link.pump();
  expect_converged(a, b);
}

TEST(Replication, StaleFencePrimaryIsRejectedFencedOutAndRefusesAppends) {
  Node a(11);
  Node b(22);
  Link link(*a.replica, *b.replica);

  a.replica->become_primary();
  b.replica->become_standby();
  link.pump();
  run_script(a, 5);
  link.pump();

  // Network split. The standby is promoted (fence bumps past everything it
  // has observed) while the old primary keeps running, oblivious.
  link.partition();
  b.replica->promote();
  EXPECT_TRUE(b.replica->is_primary());
  EXPECT_EQ(b.journal->fence_epoch(), 1u);

  // Heal the split: the deposed primary ships a record stamped with its
  // stale fence 0. The survivor answers kFenceReject; the old primary
  // observes the higher epoch, stands down, and its journal fences out.
  link.heal();
  run_script(a, 7, 6);
  const std::string b_image_before = b.image();
  link.pump();

  EXPECT_EQ(b.replica->stats().fence_rejects_sent, 1u);
  EXPECT_EQ(a.replica->stats().fence_rejects_received, 1u);
  EXPECT_FALSE(a.replica->is_primary());
  EXPECT_TRUE(a.journal->fenced_out());
  EXPECT_EQ(b.image(), b_image_before);  // the stale record changed nothing

  // Fail-secure: every further local append on the deposed node refuses.
  EXPECT_THROW(a.manager.insert(make_rule(9, PolicyAction::kAllow),
                                PdpPriority{1}, "pdp-x"),
               FencedException);
  EXPECT_GT(a.journal->stats().fenced_appends, 0u);

  // Standing down re-helloed; the survivor offered a snapshot, and the
  // deposed node's dirty plane refused it: restart required.
  EXPECT_TRUE(a.replica->needs_restart());

  // The supervisor rebuilds the deposed node as a fresh process: empty
  // plane, new journal over a clean store. The snapshot install seeds it
  // wholesale — the diverged history is discarded, and the node rejoins
  // byte-identical to the survivor, under the survivor's fence.
  Node a2(44);
  Link link2(*b.replica, *a2.replica);
  a2.replica->become_standby();
  link2.pump();
  run_script(b, 8, 6);
  link2.pump();
  EXPECT_EQ(a2.image(), b.image());
  EXPECT_EQ(a2.journal->fence_epoch(), 1u);
}

TEST(Replication, PrimaryStandsDownWhenItHearsAHigherFenceHeartbeat) {
  Node a(11);
  Node b(22);
  Link link(*a.replica, *b.replica);

  a.replica->become_primary();
  b.replica->become_standby();
  link.pump();

  link.partition();
  b.replica->promote();
  link.heal();

  // No traffic from the deposed side this time: the survivor's heartbeat
  // alone carries the higher fence and deposes it. This node's plane is
  // still EMPTY (it never applied anything), so the stand-down's re-hello
  // earns a snapshot that installs cleanly: the node rejoins as a standby
  // under the survivor's fence, and fenced_out clears because its own
  // epoch caught up to everything observed.
  b.replica->tick_heartbeat();
  link.pump();

  EXPECT_FALSE(a.replica->is_primary());
  EXPECT_EQ(a.replica->stats().snapshots_installed, 1u);
  EXPECT_EQ(a.journal->fence_epoch(), 1u);
  EXPECT_FALSE(a.journal->fenced_out());
  EXPECT_FALSE(a.replica->needs_restart());
}

TEST(Replication, OverflowedRetransmitBufferForcesSnapshotPath) {
  ReplicaConfig tiny;
  tiny.retransmit_cap = 2;
  Node a(11, nullptr, tiny);
  Node b(22);
  Link link(*a.replica, *b.replica);

  a.replica->become_primary();
  b.replica->become_standby();
  link.pump();
  run_script(a, 2);
  link.pump();
  EXPECT_EQ(b.replica->stats().records_applied, 2u);

  // Drop the link and run far past the buffer cap: the primary discards
  // the (now useless) partial tail and will answer the next hello with a
  // snapshot instead of an in-session retransmit.
  link.take_down();
  run_script(a, SIZE_MAX, 2);
  EXPECT_LT(a.replica->retransmit_buffered(), 3u);  // overflowed and cleared
  link.bring_up();
  const std::string before = b.image();
  a.replica->tick_heartbeat();
  link.pump();

  // The standby's plane is dirty (it applied records 1-2), so the snapshot
  // is refused and the restart discipline kicks in; nothing was applied
  // over the dirty plane.
  EXPECT_TRUE(b.replica->needs_restart());
  EXPECT_EQ(b.replica->stats().restarts_required, 1u);
  EXPECT_EQ(b.image(), before);

  // Restarted standby (fresh plane) bootstraps clean.
  Node b2(55);
  Link link2(*a.replica, *b2.replica);
  b2.replica->become_standby();
  link2.pump();
  expect_converged(a, b2);
}

TEST(Replication, FailoverPromotionBumpsFenceAndTakesOver) {
  // End-to-end handover through HealthMonitor: the standby's failover
  // clock runs dry, poll() runs the promotion inside a degraded window,
  // and the promoted node fences the old primary on first contact.
  Simulator sim;
  MessageBus health_bus;
  HealthConfig hc;
  hc.enabled = true;
  hc.failover_deadline = seconds(2.0);
  HealthMonitor health_a(sim, health_bus, hc, Rng(1));
  HealthMonitor health_b(sim, health_bus, hc, Rng(2));

  Node a(11, &health_a);
  Node b(22, &health_b);
  Link link(*a.replica, *b.replica);

  health_a.enable_failover(ReplicaRole::kPrimary, [&] { a.replica->promote(); });
  health_b.enable_failover(ReplicaRole::kStandby, [&] { b.replica->promote(); });
  a.replica->become_primary();
  b.replica->become_standby();
  link.pump();
  run_script(a, 5);
  link.pump();
  EXPECT_EQ(health_b.role(), ReplicaRole::kStandby);

  // Network split: no more records or beats reach the standby. Past the
  // failover deadline its monitor runs the promotion.
  link.partition();
  sim.schedule_after(seconds(3.0), [] {});
  sim.run();
  health_b.poll();

  EXPECT_EQ(health_b.role(), ReplicaRole::kPrimary);
  EXPECT_EQ(health_b.stats().promotions, 1u);
  EXPECT_TRUE(b.replica->is_primary());
  EXPECT_EQ(b.journal->fence_epoch(), 1u);
  // Promotion is byte-identical: the survivor's plane equals the deposed
  // primary's at the moment of the split (everything shipped was applied).
  EXPECT_EQ(b.image(), a.image());

  // The split heals; the oblivious old primary pushes one stale record; it
  // is fenced, stands down, and its monitor ledgers the demotion.
  link.heal();
  run_script(a, 7, 6);
  link.pump();
  EXPECT_FALSE(a.replica->is_primary());
  EXPECT_TRUE(a.journal->fenced_out());
  EXPECT_EQ(health_a.role(), ReplicaRole::kStandby);
  EXPECT_EQ(health_a.stats().demotions, 1u);
}

// ---------------------------------------------------------------- transport

template <typename Cond>
bool pump_until(net::EventLoop& loop, Cond cond, int timeout_ms = 2000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    loop.run_once(5);
  }
  return true;
}

TEST(Replication, TransportStreamsOverRealLoopbackSockets) {
  net::EventLoop loop;
  net::ConnectionManager conman_a(loop, {});
  net::ConnectionManager conman_b(loop, {});

  Node a(11);
  Node b(22);
  ReplTransport transport_a(loop, conman_a, *a.replica, /*heartbeat_ms=*/5);
  ReplTransport transport_b(loop, conman_b, *b.replica, /*heartbeat_ms=*/5);

  a.replica->become_primary();
  const auto port = transport_a.listen("127.0.0.1", 0);
  ASSERT_TRUE(port.ok()) << port.error().message;
  transport_b.dial("127.0.0.1", port.value());

  ASSERT_TRUE(pump_until(loop, [&] {
    return b.replica->stats().snapshots_installed == 1;
  }));

  const std::size_t ops = run_script(a);
  ASSERT_TRUE(pump_until(loop, [&] {
    return b.replica->stats().records_applied == ops;
  }));
  expect_converged(a, b);

  // Heartbeats ride the event-loop timer wheel end to end.
  transport_a.start_heartbeats();
  ASSERT_TRUE(pump_until(loop, [&] {
    return b.replica->stats().heartbeats_received >= 3;
  }));
  // And the cumulative acks flowed back over the same socket.
  ASSERT_TRUE(pump_until(loop, [&] {
    return a.replica->retransmit_buffered() == 0;
  }));
}

TEST(Replication, DecoderPoisonsPermanentlyOnGarbage) {
  repl::ReplFrameDecoder decoder;
  std::vector<std::uint8_t> garbage(repl::kReplHeaderSize, 0x00);  // bad magic
  decoder.feed(garbage.data(), garbage.size());
  repl::ReplFrame frame;
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_TRUE(decoder.poisoned());
  // Even valid bytes after the poison never decode: the link must die.
  const std::string good = repl::encode_frame(
      {repl::FrameType::kHeartbeat, 0, 1, 1, {}});
  decoder.feed(reinterpret_cast<const std::uint8_t*>(good.data()), good.size());
  EXPECT_FALSE(decoder.next(frame));
  EXPECT_TRUE(decoder.poisoned());
  decoder.reset();
  EXPECT_FALSE(decoder.poisoned());
  decoder.feed(reinterpret_cast<const std::uint8_t*>(good.data()), good.size());
  EXPECT_TRUE(decoder.next(frame));
  EXPECT_EQ(frame.type, repl::FrameType::kHeartbeat);
}

}  // namespace
}  // namespace dfi
