// Tests for the NotPetya surrogate on the enterprise testbed
// (paper Section V-B). Kept short: tight worm timings, bounded horizons.
#include <gtest/gtest.h>

#include "worm/worm.h"

namespace dfi {
namespace {

WormConfig fast_worm() {
  WormConfig config;
  config.exploit_time = milliseconds(200);
  config.credential_time = milliseconds(100);
  config.connect = ConnectOptions{seconds(3.0), seconds(1.0), 2};
  config.sweep_pause = seconds(30.0);
  config.min_active_minutes = 30.0;
  config.max_active_minutes = 30.0;
  return config;
}

TEST(Worm, BaselineInfectsEntireNetworkQuickly) {
  EnterpriseConfig config;
  config.condition = PolicyCondition::kBaseline;
  EnterpriseTestbed testbed(config);
  testbed.schedule_all_activity();

  WormScenario worm(testbed, fast_worm());
  worm.infect_foothold(Hostname{"host-d3-2"}, clock_time(9));
  worm.run_until(clock_time(9, 10));

  // No access control: everything falls within minutes.
  EXPECT_EQ(worm.infected_count(), 92u);
  EXPECT_GT(worm.stats().exploit_successes, 0u);
  EXPECT_GT(worm.stats().credential_successes, 0u);

  // The foothold is the first record; infections are time-monotone.
  ASSERT_FALSE(worm.infections().empty());
  EXPECT_EQ(worm.infections()[0].host, Hostname{"host-d3-2"});
  for (std::size_t i = 1; i < worm.infections().size(); ++i) {
    EXPECT_GE(worm.infections()[i].at.us, worm.infections()[i - 1].at.us);
  }
}

TEST(Worm, SRbacConfinesFirstWaveToEnclaveAndServers) {
  EnterpriseConfig config;
  config.condition = PolicyCondition::kSRbac;
  config.dfi = DfiConfig::functional();  // timing not under test here
  EnterpriseTestbed testbed(config);
  testbed.schedule_all_activity();

  WormConfig worm_config = fast_worm();
  WormScenario worm(testbed, worm_config);
  worm.infect_foothold(Hostname{"host-d3-2"}, clock_time(9));
  worm.run_until(clock_time(9, 10));

  // Every infection edge must be an S-RBAC-permitted flow: same enclave,
  // or one endpoint is a server. Direct cross-enclave host-to-host
  // infections are impossible.
  for (const auto& record : worm.infections()) {
    if (record.infected_from.value.empty()) continue;  // the foothold
    const HostRecord* victim = testbed.directory().find_host(record.host);
    const HostRecord* attacker = testbed.directory().find_host(record.infected_from);
    ASSERT_NE(victim, nullptr);
    ASSERT_NE(attacker, nullptr);
    EXPECT_TRUE(victim->enclave == attacker->enclave || victim->is_server ||
                attacker->is_server)
        << record.infected_from.value << " -> " << record.host.value
        << " violates S-RBAC reachability";
  }
  // The first infection is inside the foothold's enclave or a server.
  ASSERT_GE(worm.infections().size(), 2u);
  const HostRecord* first = testbed.directory().find_host(worm.infections()[1].host);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(first->enclave == "dept-3" || first->is_server);
}

TEST(Worm, AtRbacOffHoursFootholdIsContained) {
  EnterpriseConfig config;
  config.condition = PolicyCondition::kAtRbac;
  config.dfi = DfiConfig::functional();
  EnterpriseTestbed testbed(config);
  testbed.schedule_all_activity();

  WormScenario worm(testbed, fast_worm());
  // 02:00 foothold: no logged-on users anywhere, so only the foothold is
  // infected when the worm times out (paper Fig. 5b).
  worm.infect_foothold(Hostname{"host-d3-2"}, clock_time(2));
  worm.run_until(clock_time(4));
  EXPECT_EQ(worm.infected_count(), 1u);
  EXPECT_EQ(worm.stats().connections_succeeded, 0u);
}

TEST(Worm, AtRbacBusinessHoursSlowerThanBaseline) {
  // Compare infected counts at the same horizon under baseline vs AT-RBAC.
  const auto run_condition = [](PolicyCondition condition) {
    EnterpriseConfig config;
    config.condition = condition;
    config.dfi = DfiConfig::functional();
    EnterpriseTestbed testbed(config);
    testbed.schedule_all_activity();
    WormScenario worm(testbed, fast_worm());
    worm.infect_foothold(Hostname{"host-d3-2"}, clock_time(9));
    worm.run_until(clock_time(9, 6));
    return worm.infected_count();
  };
  const std::size_t baseline = run_condition(PolicyCondition::kBaseline);
  const std::size_t atrbac = run_condition(PolicyCondition::kAtRbac);
  EXPECT_EQ(baseline, 92u);
  EXPECT_LT(atrbac, baseline);
}

TEST(Worm, InfectionCurveIsStepMonotone) {
  EnterpriseConfig config;
  config.condition = PolicyCondition::kBaseline;
  EnterpriseTestbed testbed(config);
  WormScenario worm(testbed, fast_worm());
  worm.infect_foothold(Hostname{"host-d1-1"}, clock_time(9));
  worm.run_until(clock_time(9, 5));

  const TimeSeries curve = worm.infection_curve();
  double last = -1.0;
  for (const auto& point : curve.points) {
    EXPECT_GE(point.value, last);
    last = point.value;
  }
  EXPECT_EQ(curve.value_at(static_cast<double>(clock_time(9, 5).us) / 1e6),
            static_cast<double>(worm.infected_count()));
}

TEST(Worm, ServersSpreadOnlyByExploit) {
  EnterpriseConfig config;
  config.condition = PolicyCondition::kBaseline;
  EnterpriseTestbed testbed(config);
  WormScenario worm(testbed, fast_worm());
  worm.infect_foothold(Hostname{"host-d1-1"}, clock_time(9));
  worm.run_until(clock_time(9, 10));

  // Servers cache no credentials, so every server infection used the
  // exploit vector.
  for (const auto& record : worm.infections()) {
    const HostRecord* host = testbed.directory().find_host(record.host);
    if (host != nullptr && host->is_server && !record.infected_from.value.empty()) {
      EXPECT_TRUE(record.via_exploit) << record.host.value;
    }
  }
}

TEST(Worm, ExploitOnlyCappedAtVulnerableMachines) {
  EnterpriseConfig config;
  config.condition = PolicyCondition::kBaseline;
  EnterpriseTestbed testbed(config);
  WormConfig worm_config = fast_worm();
  worm_config.credential_vector = false;  // WannaCry-style strain
  WormScenario worm(testbed, worm_config);
  worm.infect_foothold(Hostname{"host-d3-2"}, clock_time(9));
  worm.run_until(clock_time(9, 15));

  // 10 vulnerable hosts + 6 servers + the (patched) foothold.
  EXPECT_EQ(worm.infected_count(), 17u);
  EXPECT_EQ(worm.stats().credential_successes, 0u);
  EXPECT_EQ(worm.stats().exploit_successes, 16u);
}

TEST(Worm, CredentialOnlyCannotTouchServers) {
  EnterpriseConfig config;
  config.condition = PolicyCondition::kBaseline;
  EnterpriseTestbed testbed(config);
  WormConfig worm_config = fast_worm();
  worm_config.exploit_vector = false;  // pure lateral-movement tool
  WormScenario worm(testbed, worm_config);
  worm.infect_foothold(Hostname{"host-d3-2"}, clock_time(9));
  worm.run_until(clock_time(9, 15));

  // Cached credentials only grant Local Administrator inside the enclave;
  // servers grant no one local admin, so the spread stops at dept-3.
  EXPECT_EQ(worm.infected_count(), 9u);
  EXPECT_EQ(worm.stats().exploit_successes, 0u);
  for (const auto& record : worm.infections()) {
    const HostRecord* host = testbed.directory().find_host(record.host);
    ASSERT_NE(host, nullptr);
    EXPECT_EQ(host->enclave, "dept-3");
  }
}

}  // namespace
}  // namespace dfi
