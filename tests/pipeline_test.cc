// Unit tests for the multi-table pipeline — DFI's Table-0 precedence lives here.
#include <gtest/gtest.h>

#include "openflow/pipeline.h"

namespace dfi {
namespace {

Packet flow() {
  return make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                         Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1000, 80);
}

FlowRule rule(std::uint16_t priority, Match match, Instructions instructions,
              Cookie cookie = {}) {
  FlowRule r;
  r.priority = priority;
  r.match = std::move(match);
  r.instructions = std::move(instructions);
  r.cookie = cookie;
  return r;
}

TEST(Pipeline, MissInTableZeroReportsPacketIn) {
  Pipeline pipeline(4);
  const PipelineResult result = pipeline.process(flow(), PortNo{1}, 64, SimTime{});
  EXPECT_TRUE(result.table_miss);
  EXPECT_EQ(result.miss_table, 0);
  EXPECT_FALSE(result.dropped);
}

TEST(Pipeline, DropRuleInTableZeroStopsPacket) {
  Pipeline pipeline(4);
  ASSERT_TRUE(pipeline.table(0).add(rule(100, Match{}, Instructions::drop(), Cookie{7}),
                                    SimTime{}));
  const PipelineResult result = pipeline.process(flow(), PortNo{1}, 64, SimTime{});
  EXPECT_FALSE(result.table_miss);
  EXPECT_TRUE(result.dropped);
  EXPECT_TRUE(result.output_ports.empty());
  EXPECT_EQ(result.last_cookie, Cookie{7});
}

TEST(Pipeline, GotoChainsThroughTables) {
  Pipeline pipeline(4);
  ASSERT_TRUE(pipeline.table(0).add(rule(100, Match{}, Instructions::to_table(1)),
                                    SimTime{}));
  ASSERT_TRUE(pipeline.table(1).add(rule(10, Match{}, Instructions::output(PortNo{3})),
                                    SimTime{}));
  const PipelineResult result = pipeline.process(flow(), PortNo{1}, 64, SimTime{});
  EXPECT_FALSE(result.table_miss);
  ASSERT_EQ(result.output_ports.size(), 1u);
  EXPECT_EQ(result.output_ports[0], PortNo{3});
}

TEST(Pipeline, MissAfterGotoReportsLaterTable) {
  Pipeline pipeline(4);
  ASSERT_TRUE(pipeline.table(0).add(rule(100, Match{}, Instructions::to_table(1)),
                                    SimTime{}));
  const PipelineResult result = pipeline.process(flow(), PortNo{1}, 64, SimTime{});
  EXPECT_TRUE(result.table_miss);
  EXPECT_EQ(result.miss_table, 1);
}

TEST(Pipeline, ActionsAccumulateAcrossTables) {
  Pipeline pipeline(4);
  Instructions tee;
  tee.apply_actions = {OutputAction{PortNo{9}}};
  tee.goto_table = 1;
  ASSERT_TRUE(pipeline.table(0).add(rule(100, Match{}, tee), SimTime{}));
  ASSERT_TRUE(pipeline.table(1).add(rule(10, Match{}, Instructions::output(PortNo{3})),
                                    SimTime{}));
  const PipelineResult result = pipeline.process(flow(), PortNo{1}, 64, SimTime{});
  ASSERT_EQ(result.output_ports.size(), 2u);
  EXPECT_EQ(result.output_ports[0], PortNo{9});
  EXPECT_EQ(result.output_ports[1], PortNo{3});
}

TEST(Pipeline, InvalidGotoEndsProcessing) {
  Pipeline pipeline(2);
  // goto beyond the last table: processing must end, not crash.
  ASSERT_TRUE(pipeline.table(0).add(rule(100, Match{}, Instructions::to_table(7)),
                                    SimTime{}));
  const PipelineResult result = pipeline.process(flow(), PortNo{1}, 64, SimTime{});
  EXPECT_FALSE(result.table_miss);
  EXPECT_TRUE(result.dropped);
}

TEST(Pipeline, HigherPriorityTableZeroRuleWinsOverGoto) {
  // DFI's Deny (drop, prio 100) must shadow a lower-priority allow.
  Pipeline pipeline(4);
  const Packet packet = flow();
  Match exact = Match::exact_from_packet(packet, PortNo{1});
  ASSERT_TRUE(pipeline.table(0).add(rule(100, exact, Instructions::drop()), SimTime{}));
  ASSERT_TRUE(pipeline.table(0).add(rule(50, Match{}, Instructions::to_table(1)),
                                    SimTime{}));
  ASSERT_TRUE(pipeline.table(1).add(rule(10, Match{}, Instructions::output(PortNo{3})),
                                    SimTime{}));
  const PipelineResult result = pipeline.process(packet, PortNo{1}, 64, SimTime{});
  EXPECT_TRUE(result.dropped);

  // Another flow (different port) follows the wildcard goto instead.
  const PipelineResult other = pipeline.process(packet, PortNo{2}, 64, SimTime{});
  EXPECT_FALSE(other.dropped);
  EXPECT_EQ(other.output_ports.size(), 1u);
}

TEST(Pipeline, TotalRulesAcrossTables) {
  Pipeline pipeline(3);
  ASSERT_TRUE(pipeline.table(0).add(rule(1, Match{}, Instructions::drop()), SimTime{}));
  Match m;
  m.tcp_dst = 1;
  ASSERT_TRUE(pipeline.table(2).add(rule(1, m, Instructions::drop()), SimTime{}));
  EXPECT_EQ(pipeline.total_rules(), 2u);
  EXPECT_EQ(pipeline.num_tables(), 3);
}

}  // namespace
}  // namespace dfi
