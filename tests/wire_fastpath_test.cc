// Differential proof for the wire fast path (DESIGN.md §5).
//
// The proxy's slow path is decode -> table shift -> encode; the fast path
// forwards bytes verbatim (kPassThrough) or rewrites table ids in place
// (kPatch). This suite pits the two against each other frame by frame:
// whenever classify() admits a frame to the fast path, the fast-path bytes
// must equal the slow path's output exactly. Random canonical messages of
// every type in messages.h, table_id boundary values, truncated/runt/
// oversized-length frames, and random byte mutations all go through the
// same check — the last one is the interesting case, because it hunts for
// non-canonical frames the classifier wrongly admits.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "common/rng.h"
#include "openflow/wire.h"

namespace dfi {
namespace {

// ---------------------------------------------------------------------------
// Random message generators.

Match random_match(Rng& rng) {
  Match match;
  if (rng.chance(0.5)) match.in_port = PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 48))};
  if (rng.chance(0.4)) match.eth_src = MacAddress::from_u64(rng.next_u64() & 0xffffffffffffull);
  if (rng.chance(0.4)) match.eth_dst = MacAddress::from_u64(rng.next_u64() & 0xffffffffffffull);
  if (rng.chance(0.4)) match.eth_type = 0x0800;
  if (rng.chance(0.3)) match.ip_proto = rng.chance(0.5) ? 6 : 17;
  if (rng.chance(0.3)) {
    match.ipv4_src = Ipv4Address(10, 0, static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                                 static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
  }
  if (rng.chance(0.3)) {
    match.ipv4_dst = Ipv4Address(10, 1, static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                                 static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
  }
  if (rng.chance(0.2)) match.tcp_src = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
  if (rng.chance(0.2)) match.tcp_dst = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
  if (rng.chance(0.1)) match.udp_src = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
  if (rng.chance(0.1)) match.udp_dst = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
  return match;
}

Instructions random_instructions(Rng& rng) {
  Instructions instructions;
  const int actions = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < actions; ++i) {
    instructions.apply_actions.push_back(
        OutputAction{PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 48))}});
  }
  if (rng.chance(0.5)) {
    instructions.goto_table = static_cast<std::uint8_t>(rng.uniform_int(0, 254));
  }
  return instructions;
}

std::vector<std::uint8_t> random_payload_bytes(Rng& rng, int max_len) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(rng.uniform_int(0, max_len)));
  for (auto& byte : data) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return data;
}

FlowStatsEntry random_flow_stats_entry(Rng& rng, std::uint8_t table_id) {
  FlowStatsEntry entry;
  entry.table_id = table_id;
  entry.duration_sec = static_cast<std::uint32_t>(rng.uniform_int(0, 100000));
  entry.priority = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
  entry.idle_timeout = static_cast<std::uint16_t>(rng.uniform_int(0, 600));
  entry.hard_timeout = static_cast<std::uint16_t>(rng.uniform_int(0, 600));
  entry.cookie = Cookie{rng.next_u64()};
  entry.packet_count = rng.next_u64() % 1000000;
  entry.byte_count = rng.next_u64() % 100000000;
  entry.match = random_match(rng);
  entry.instructions = random_instructions(rng);
  return entry;
}

// One random message of each wire type, with table ids drawn from the full
// range so boundary values appear organically across seeds.
std::vector<OfMessage> random_messages(Rng& rng) {
  std::vector<OfMessage> out;
  auto xid = [&rng] { return static_cast<std::uint32_t>(rng.next_u64() & 0xffffffff); };

  out.push_back({xid(), HelloMsg{}});
  out.push_back({xid(), ErrorMsg{static_cast<std::uint16_t>(rng.uniform_int(0, 13)),
                                 static_cast<std::uint16_t>(rng.uniform_int(0, 15)),
                                 random_payload_bytes(rng, 32)}});
  out.push_back({xid(), EchoRequestMsg{random_payload_bytes(rng, 16)}});
  out.push_back({xid(), EchoReplyMsg{random_payload_bytes(rng, 16)}});
  out.push_back({xid(), FeaturesRequestMsg{}});

  FeaturesReplyMsg features;
  features.datapath_id = Dpid{rng.next_u64()};
  features.n_buffers = static_cast<std::uint32_t>(rng.uniform_int(0, 1024));
  features.n_tables = static_cast<std::uint8_t>(rng.uniform_int(1, 254));
  features.capabilities = 0x1 | 0x4;
  out.push_back({xid(), features});

  PacketInMsg packet_in;
  packet_in.buffer_id = kNoBuffer;
  packet_in.total_len = static_cast<std::uint16_t>(rng.uniform_int(0, 1500));
  packet_in.reason = rng.chance(0.5) ? PacketInReason::kNoMatch : PacketInReason::kAction;
  packet_in.table_id = static_cast<std::uint8_t>(rng.uniform_int(0, 254));
  packet_in.cookie = Cookie{rng.next_u64()};
  packet_in.in_port = PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 48))};
  packet_in.data = random_payload_bytes(rng, 128);
  out.push_back({xid(), packet_in});

  PacketOutMsg packet_out;
  packet_out.in_port = PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 48))};
  const int actions = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < actions; ++i) {
    packet_out.actions.push_back(
        OutputAction{PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 48))}});
  }
  packet_out.data = random_payload_bytes(rng, 128);
  out.push_back({xid(), packet_out});

  FlowModMsg flow_mod;
  flow_mod.cookie = Cookie{rng.next_u64()};
  flow_mod.cookie_mask = Cookie{rng.chance(0.5) ? ~0ull : 0ull};
  flow_mod.table_id = static_cast<std::uint8_t>(rng.uniform_int(0, 255));  // incl. OFPTT_ALL
  flow_mod.command = static_cast<FlowModCommand>(rng.uniform_int(0, 4));
  flow_mod.idle_timeout = static_cast<std::uint16_t>(rng.uniform_int(0, 600));
  flow_mod.hard_timeout = static_cast<std::uint16_t>(rng.uniform_int(0, 600));
  flow_mod.priority = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
  flow_mod.flags = rng.chance(0.3) ? 0x1 : 0x0;
  flow_mod.match = random_match(rng);
  flow_mod.instructions = random_instructions(rng);
  out.push_back({xid(), flow_mod});

  FlowRemovedMsg removed;
  removed.cookie = Cookie{rng.next_u64()};
  removed.priority = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
  removed.reason = static_cast<FlowRemovedReason>(rng.uniform_int(0, 2));
  removed.table_id = static_cast<std::uint8_t>(rng.uniform_int(0, 254));
  removed.duration_sec = static_cast<std::uint32_t>(rng.uniform_int(0, 100000));
  removed.idle_timeout = static_cast<std::uint16_t>(rng.uniform_int(0, 600));
  removed.hard_timeout = static_cast<std::uint16_t>(rng.uniform_int(0, 600));
  removed.packet_count = rng.next_u64() % 1000000;
  removed.byte_count = rng.next_u64() % 100000000;
  removed.match = random_match(rng);
  out.push_back({xid(), removed});

  PortStatusMsg port_status;
  port_status.reason = static_cast<PortStatusReason>(rng.uniform_int(0, 2));
  port_status.desc.port_no = PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 48))};
  port_status.desc.hw_addr = MacAddress::from_u64(rng.next_u64() & 0xffffffffffffull);
  port_status.desc.name = "eth0";
  port_status.desc.state = rng.chance(0.5) ? kPortStateLinkDown : 0;
  out.push_back({xid(), port_status});

  MultipartRequestMsg flow_request;
  flow_request.stats_type = kStatsTypeFlow;
  flow_request.flow_request.table_id =
      rng.chance(0.3) ? 0xff : static_cast<std::uint8_t>(rng.uniform_int(0, 254));
  flow_request.flow_request.cookie = Cookie{rng.next_u64()};
  flow_request.flow_request.cookie_mask = Cookie{rng.chance(0.5) ? ~0ull : 0ull};
  flow_request.flow_request.match = random_match(rng);
  out.push_back({xid(), flow_request});

  MultipartRequestMsg port_request;
  port_request.stats_type = kStatsTypePort;
  port_request.port_no = rng.chance(0.5)
                             ? kPortAny
                             : PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 48))};
  out.push_back({xid(), port_request});

  MultipartReplyMsg flow_reply;
  flow_reply.stats_type = kStatsTypeFlow;
  const int entries = static_cast<int>(rng.uniform_int(0, 4));
  for (int i = 0; i < entries; ++i) {
    flow_reply.flow_stats.push_back(
        random_flow_stats_entry(rng, static_cast<std::uint8_t>(rng.uniform_int(0, 254))));
  }
  out.push_back({xid(), flow_reply});

  MultipartReplyMsg port_reply;
  port_reply.stats_type = kStatsTypePort;
  const int ports = static_cast<int>(rng.uniform_int(0, 3));
  for (int i = 0; i < ports; ++i) {
    PortStatsEntry stats;
    stats.port_no = PortNo{static_cast<std::uint32_t>(i + 1)};
    stats.rx_packets = rng.next_u64() % 100000;
    stats.tx_packets = rng.next_u64() % 100000;
    stats.rx_bytes = rng.next_u64() % 10000000;
    stats.tx_bytes = rng.next_u64() % 10000000;
    stats.duration_sec = static_cast<std::uint32_t>(rng.uniform_int(0, 100000));
    port_reply.port_stats.push_back(stats);
  }
  out.push_back({xid(), port_reply});

  out.push_back({xid(), BarrierRequestMsg{}});
  out.push_back({xid(), BarrierReplyMsg{}});
  return out;
}

// ---------------------------------------------------------------------------
// Slow-path oracle: the exact byte transform DfiProxy's decode path applies
// to one decoded message. Returns the list of frames the proxy would emit,
// or nullopt for frames the fast path must never claim because they take a
// side channel (PCP hand-off, handshake rewrite, OFPTT_ALL expansion, error
// replies). Mirrors Session::handle_switch_message /
// handle_controller_message in src/core/proxy.cc.
std::optional<std::vector<std::vector<std::uint8_t>>> slow_path_oracle(
    const OfMessage& message, ProxyDirection direction, std::uint8_t switch_num_tables) {
  using Frames = std::vector<std::vector<std::uint8_t>>;
  if (direction == ProxyDirection::kSwitchToController) {
    if (std::holds_alternative<FeaturesReplyMsg>(message.payload)) return std::nullopt;
    if (const auto* packet_in = std::get_if<PacketInMsg>(&message.payload)) {
      if (packet_in->table_id == 0) return std::nullopt;  // PCP decides
      PacketInMsg shifted = *packet_in;
      --shifted.table_id;
      return Frames{encode(OfMessage{message.xid, shifted})};
    }
    if (const auto* removed = std::get_if<FlowRemovedMsg>(&message.payload)) {
      if (removed->table_id == 0) return Frames{};  // DFI-internal: dropped
      FlowRemovedMsg shifted = *removed;
      --shifted.table_id;
      return Frames{encode(OfMessage{message.xid, shifted})};
    }
    if (const auto* reply = std::get_if<MultipartReplyMsg>(&message.payload)) {
      MultipartReplyMsg shifted;
      shifted.stats_type = reply->stats_type;
      shifted.port_stats = reply->port_stats;
      for (const auto& entry : reply->flow_stats) {
        if (entry.table_id == 0) continue;
        FlowStatsEntry adjusted = entry;
        --adjusted.table_id;
        if (adjusted.instructions.goto_table.has_value() &&
            *adjusted.instructions.goto_table > 0) {
          --*adjusted.instructions.goto_table;
        }
        shifted.flow_stats.push_back(std::move(adjusted));
      }
      return Frames{encode(OfMessage{message.xid, std::move(shifted)})};
    }
    return Frames{encode(message)};
  }

  if (const auto* flow_mod = std::get_if<FlowModMsg>(&message.payload)) {
    if (flow_mod->table_id == 0xff) return std::nullopt;  // expansion or error
    const std::uint8_t tables = switch_num_tables == 0 ? 4 : switch_num_tables;
    if (flow_mod->table_id + 1 >= tables) return std::nullopt;  // error reply
    FlowModMsg shifted = *flow_mod;
    ++shifted.table_id;
    if (shifted.instructions.goto_table.has_value()) ++*shifted.instructions.goto_table;
    return Frames{encode(OfMessage{message.xid, std::move(shifted)})};
  }
  if (const auto* request = std::get_if<MultipartRequestMsg>(&message.payload)) {
    MultipartRequestMsg shifted = *request;
    if (shifted.stats_type == kStatsTypeFlow && shifted.flow_request.table_id != 0xff) {
      ++shifted.flow_request.table_id;
    }
    return Frames{encode(OfMessage{message.xid, std::move(shifted)})};
  }
  return Frames{encode(message)};
}

// The differential check: whatever classify() decides, the fast path's
// bytes must be indistinguishable from the slow path's.
void check_frame(const std::vector<std::uint8_t>& bytes, ProxyDirection direction,
                 std::uint8_t switch_num_tables) {
  SCOPED_TRACE(::testing::Message()
               << "direction="
               << (direction == ProxyDirection::kSwitchToController ? "s->c" : "c->s")
               << " num_tables=" << static_cast<int>(switch_num_tables)
               << " size=" << bytes.size()
               << " type=" << (bytes.size() > 1 ? static_cast<int>(bytes[1]) : -1));
  const FrameView view(bytes.data(), bytes.size());
  const FrameClass cls = classify(view, direction, switch_num_tables);
  const auto decoded = decode(bytes);
  if (!decoded.ok()) {
    // Frames the slow path rejects must never ride the fast path: the slow
    // path drops them (and counts them malformed), so forwarding any bytes
    // would diverge.
    EXPECT_EQ(cls, FrameClass::kDecode);
    return;
  }
  if (cls == FrameClass::kDecode) return;  // both paths share the decode code

  const auto expected = slow_path_oracle(decoded.value(), direction, switch_num_tables);
  ASSERT_TRUE(expected.has_value())
      << "fast path claimed a frame the proxy routes through a side channel";

  if (cls == FrameClass::kPassThrough) {
    ASSERT_EQ(expected->size(), 1u);
    EXPECT_EQ((*expected)[0], bytes) << "pass-through bytes differ from slow path";
    return;
  }

  // kPatch. The proxy drops switch->controller FLOW_REMOVED for Table 0
  // before patching; mirror that here.
  if (direction == ProxyDirection::kSwitchToController &&
      view.type() == OfType::kFlowRemoved && bytes[kFlowRemovedTableOffset] == 0) {
    EXPECT_TRUE(expected->empty()) << "fast path drops, slow path would forward";
    return;
  }
  std::vector<std::uint8_t> patched = bytes;
  ASSERT_TRUE(patch_table_refs(patched.data(), patched.size(), direction));
  ASSERT_EQ(expected->size(), 1u);
  EXPECT_EQ(patched, (*expected)[0]) << "patched bytes differ from slow path";
}

void check_both_directions(const std::vector<std::uint8_t>& bytes,
                           std::uint8_t switch_num_tables) {
  check_frame(bytes, ProxyDirection::kSwitchToController, switch_num_tables);
  check_frame(bytes, ProxyDirection::kControllerToSwitch, switch_num_tables);
}

// ---------------------------------------------------------------------------

class FastPathDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FastPathDifferential, EveryMessageTypeAgreesWithSlowPath) {
  Rng rng(GetParam());
  const std::uint8_t table_counts[] = {0, 2, 4, 8, 254};
  for (int round = 0; round < 40; ++round) {
    for (const auto& message : random_messages(rng)) {
      const auto bytes = encode(message);
      for (const std::uint8_t tables : table_counts) {
        check_both_directions(bytes, tables);
      }
    }
  }
}

// Random single/multi-byte mutations hunt for non-canonical frames the
// classifier wrongly admits: a mutation may flip a pad byte, stretch a TLV
// length, or truncate the frame, and the fast path must either reject it
// (kDecode) or still match the slow path byte for byte.
TEST_P(FastPathDifferential, MutatedFramesNeverDiverge) {
  Rng rng(GetParam() ^ 0x9e3779b97f4a7c15ull);
  for (int round = 0; round < 30; ++round) {
    for (const auto& message : random_messages(rng)) {
      auto bytes = encode(message);
      const int mutations = static_cast<int>(rng.uniform_int(1, 4));
      for (int m = 0; m < mutations; ++m) {
        const auto pos = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(bytes.size()) - 1));
        bytes[pos] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      // Keep the frame well-framed half the time so the mutation lands in
      // the body rather than tripping the length check immediately.
      if (rng.chance(0.5) && bytes.size() >= 4) {
        bytes[2] = static_cast<std::uint8_t>(bytes.size() >> 8);
        bytes[3] = static_cast<std::uint8_t>(bytes.size());
      }
      check_both_directions(bytes, static_cast<std::uint8_t>(rng.uniform_int(0, 8)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FastPathDifferential,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

// ---------------------------------------------------------------------------
// Table-id boundary values: 0 (DFI's reserved table), the 253/254 shift
// edges, and OFPTT_ALL. These are the exact off-by-one traps in +-1
// rewriting.

TEST(FastPathBoundaries, FlowModTableEdges) {
  for (const std::uint8_t table : {0, 1, 252, 253, 254}) {
    for (const std::uint8_t tables : {0, 2, 4, 254, 255}) {
      FlowModMsg mod;
      mod.table_id = table;
      mod.match.in_port = PortNo{1};
      mod.instructions = Instructions::output(PortNo{2});
      const auto bytes = encode(OfMessage{1, mod});
      check_frame(bytes, ProxyDirection::kControllerToSwitch, tables);

      const FrameView view(bytes.data(), bytes.size());
      const std::uint8_t effective = tables == 0 ? 4 : tables;
      const FrameClass cls =
          classify(view, ProxyDirection::kControllerToSwitch, tables);
      if (table + 1 >= effective) {
        EXPECT_EQ(cls, FrameClass::kDecode)
            << "out-of-range table " << int(table) << "/" << int(tables)
            << " must take the error path";
      } else {
        EXPECT_EQ(cls, FrameClass::kPatch);
      }
    }
  }
  // OFPTT_ALL always needs the decode path (delete expansion or error).
  FlowModMsg all;
  all.table_id = 0xff;
  all.command = FlowModCommand::kDelete;
  const auto bytes = encode(OfMessage{1, all});
  EXPECT_EQ(classify(FrameView(bytes.data(), bytes.size()),
                     ProxyDirection::kControllerToSwitch, 4),
            FrameClass::kDecode);
}

TEST(FastPathBoundaries, GotoTableEdges) {
  for (const std::uint8_t goto_table : {0, 1, 253, 254}) {
    FlowModMsg mod;
    mod.table_id = 1;
    mod.instructions.goto_table = goto_table;
    check_frame(encode(OfMessage{1, mod}), ProxyDirection::kControllerToSwitch, 254);
  }
}

TEST(FastPathBoundaries, PacketInAndFlowRemovedTableEdges) {
  for (const std::uint8_t table : {0, 1, 2, 253, 254}) {
    PacketInMsg packet_in;
    packet_in.table_id = table;
    packet_in.in_port = PortNo{3};
    packet_in.data = {1, 2, 3};
    const auto pi_bytes = encode(OfMessage{1, packet_in});
    check_frame(pi_bytes, ProxyDirection::kSwitchToController, 4);
    // Table 0 packet-ins are the PCP's, never the fast path's.
    EXPECT_EQ(classify(FrameView(pi_bytes.data(), pi_bytes.size()),
                       ProxyDirection::kSwitchToController, 4),
              table == 0 ? FrameClass::kDecode : FrameClass::kPatch);

    FlowRemovedMsg removed;
    removed.table_id = table;
    removed.match.in_port = PortNo{3};
    check_frame(encode(OfMessage{1, removed}), ProxyDirection::kSwitchToController, 4);
  }
}

TEST(FastPathBoundaries, MultipartEntryTableEdges) {
  for (const std::uint8_t table : {0, 1, 253, 254}) {
    MultipartReplyMsg reply;
    reply.stats_type = kStatsTypeFlow;
    FlowStatsEntry entry;
    entry.table_id = table;
    entry.match.in_port = PortNo{1};
    if (table > 0) entry.instructions.goto_table = table;  // goto-- edge too
    reply.flow_stats.push_back(entry);
    const auto bytes = encode(OfMessage{1, reply});
    check_frame(bytes, ProxyDirection::kSwitchToController, 4);
    // Entries describing Table 0 force the rebuild (rows are filtered).
    EXPECT_EQ(classify(FrameView(bytes.data(), bytes.size()),
                       ProxyDirection::kSwitchToController, 4),
              table == 0 ? FrameClass::kDecode : FrameClass::kPatch);
  }
}

// ---------------------------------------------------------------------------
// Malformed framing: runts, truncations, and lying length fields must all
// take the decode path (where they are counted malformed and dropped), and
// none of them may desynchronize a stream that continues afterwards.

TEST(FastPathMalformed, TruncatedAndRuntFramesAreNeverAdmitted) {
  FlowModMsg mod;
  mod.table_id = 1;
  mod.match.in_port = PortNo{1};
  mod.instructions = Instructions::to_table(2);
  const auto full = encode(OfMessage{1, mod});
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::uint8_t> prefix(full.begin(), full.begin() + len);
    if (len >= 4) {  // keep framing consistent so only the body is short
      prefix[2] = static_cast<std::uint8_t>(len >> 8);
      prefix[3] = static_cast<std::uint8_t>(len);
    }
    check_both_directions(prefix, 4);
  }
  // Oversized length field: frame claims more bytes than it has.
  auto oversized = full;
  oversized[2] = 0x7f;
  oversized[3] = 0xff;
  EXPECT_EQ(classify(FrameView(oversized.data(), oversized.size()),
                     ProxyDirection::kControllerToSwitch, 4),
            FrameClass::kDecode);
  // Wrong version.
  auto wrong_version = full;
  wrong_version[0] = 0x01;
  EXPECT_EQ(classify(FrameView(wrong_version.data(), wrong_version.size()),
                     ProxyDirection::kControllerToSwitch, 4),
            FrameClass::kDecode);
}

TEST(FastPathMalformed, StreamWithMalformedFramesStaysInSync) {
  // A stream of [good, malformed-but-framed, good, good] must yield exactly
  // four frames from the decoder, and the two paths must agree on each.
  const auto good1 = encode(OfMessage{1, EchoRequestMsg{{0xaa}}});
  const auto bad = [] {
    auto frame = encode(OfMessage{2, FlowModMsg{}});
    frame[1] = 0x63;  // unknown type, framing intact
    return frame;
  }();
  const auto good2 = encode(OfMessage{3, BarrierRequestMsg{}});
  const auto good3 = encode(OfMessage{4, EchoReplyMsg{{0xbb}}});

  std::vector<std::uint8_t> stream;
  for (const auto* frame : {&good1, &bad, &good2, &good3}) {
    stream.insert(stream.end(), frame->begin(), frame->end());
  }
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    FrameDecoder decoder;
    std::size_t offset = 0;
    std::vector<std::vector<std::uint8_t>> frames;
    while (offset < stream.size()) {
      const std::size_t end = std::min(
          offset + static_cast<std::size_t>(rng.uniform_int(1, 17)), stream.size());
      decoder.feed({stream.begin() + offset, stream.begin() + end});
      offset = end;
      FrameView view;
      while (decoder.next_frame(view) == FrameStatus::kFrame) {
        frames.emplace_back(view.data(), view.data() + view.size());
      }
    }
    ASSERT_EQ(frames.size(), 4u);
    EXPECT_EQ(frames[0], good1);
    EXPECT_EQ(frames[1], bad);
    EXPECT_EQ(frames[2], good2);
    EXPECT_EQ(frames[3], good3);
    for (const auto& frame : frames) check_both_directions(frame, 4);
  }
}

// ---------------------------------------------------------------------------
// Coverage: the classifier must actually use the fast path on the canonical
// frames the proxy forwards all day — being conservatively correct by
// classifying everything kDecode would pass the differential suite while
// deleting the optimization.

TEST(FastPathCoverage, CanonicalHotPathFramesAvoidDecode) {
  const auto echo = encode(OfMessage{1, EchoRequestMsg{{1, 2, 3, 4}}});
  EXPECT_EQ(classify(FrameView(echo.data(), echo.size()),
                     ProxyDirection::kSwitchToController, 4),
            FrameClass::kPassThrough);

  PacketInMsg packet_in;
  packet_in.table_id = 2;
  packet_in.in_port = PortNo{1};
  packet_in.data = {1, 2, 3, 4, 5};
  const auto pi = encode(OfMessage{2, packet_in});
  EXPECT_EQ(classify(FrameView(pi.data(), pi.size()),
                     ProxyDirection::kSwitchToController, 4),
            FrameClass::kPatch);

  FlowModMsg mod;
  mod.table_id = 1;
  mod.match.in_port = PortNo{1};
  mod.match.eth_type = 0x0800;
  mod.match.ipv4_src = Ipv4Address(10, 0, 0, 1);
  mod.instructions = Instructions::output(PortNo{2});
  const auto fm = encode(OfMessage{3, mod});
  EXPECT_EQ(classify(FrameView(fm.data(), fm.size()),
                     ProxyDirection::kControllerToSwitch, 4),
            FrameClass::kPatch);

  MultipartRequestMsg request;
  request.stats_type = kStatsTypeFlow;
  request.flow_request.table_id = 0xff;
  const auto mp = encode(OfMessage{4, request});
  EXPECT_EQ(classify(FrameView(mp.data(), mp.size()),
                     ProxyDirection::kControllerToSwitch, 4),
            FrameClass::kPassThrough);

  PacketOutMsg packet_out;
  packet_out.in_port = PortNo{1};
  packet_out.actions = {OutputAction{PortNo{2}}};
  packet_out.data = {9, 9};
  const auto po = encode(OfMessage{5, packet_out});
  EXPECT_EQ(classify(FrameView(po.data(), po.size()),
                     ProxyDirection::kControllerToSwitch, 4),
            FrameClass::kPassThrough);
}

}  // namespace
}  // namespace dfi
