// Unit tests for the enterprise service surrogates: DHCP, DNS, directory, SIEM.
#include <gtest/gtest.h>

#include "bus/message_bus.h"
#include "services/dhcp.h"
#include "services/directory.h"
#include "services/dns.h"
#include "services/siem.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

class ServicesTest : public ::testing::Test {
 protected:
  ServicesTest()
      : dhcp_(bus_, [this]() { return sim_.now(); }, Ipv4Address(10, 0, 0, 10), 16),
        dns_(bus_, [this]() { return sim_.now(); }),
        siem_(bus_, [this]() { return sim_.now(); }) {}

  Simulator sim_;
  MessageBus bus_;
  DhcpServer dhcp_;
  DnsServer dns_;
  SiemService siem_;
  DirectoryService directory_;
};

TEST_F(ServicesTest, DhcpLeaseAssignsSequentially) {
  const auto a = dhcp_.lease(MacAddress::from_u64(1));
  const auto b = dhcp_.lease(MacAddress::from_u64(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), Ipv4Address(10, 0, 0, 10));
  EXPECT_EQ(b.value(), Ipv4Address(10, 0, 0, 11));
  EXPECT_EQ(dhcp_.active_leases(), 2u);
}

TEST_F(ServicesTest, DhcpRenewalKeepsAddress) {
  const auto first = dhcp_.lease(MacAddress::from_u64(1));
  const auto again = dhcp_.lease(MacAddress::from_u64(1));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first.value(), again.value());
  EXPECT_EQ(dhcp_.active_leases(), 1u);
}

TEST_F(ServicesTest, DhcpReleaseRecyclesAddress) {
  const auto a = dhcp_.lease(MacAddress::from_u64(1));
  dhcp_.release(MacAddress::from_u64(1));
  EXPECT_EQ(dhcp_.active_leases(), 0u);
  EXPECT_FALSE(dhcp_.lookup(MacAddress::from_u64(1)).has_value());
  const auto b = dhcp_.lease(MacAddress::from_u64(2));
  EXPECT_EQ(b.value(), a.value());  // lowest free address reused
}

TEST_F(ServicesTest, DhcpPoolExhaustion) {
  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(dhcp_.lease(MacAddress::from_u64(i + 1)).ok());
  }
  EXPECT_FALSE(dhcp_.lease(MacAddress::from_u64(99)).ok());
}

TEST_F(ServicesTest, DhcpStaticReservation) {
  const auto reserved =
      dhcp_.lease(MacAddress::from_u64(7), Ipv4Address(10, 0, 0, 20));
  ASSERT_TRUE(reserved.ok());
  EXPECT_EQ(reserved.value(), Ipv4Address(10, 0, 0, 20));
  // Conflicting reservation fails; out-of-pool fails.
  EXPECT_FALSE(dhcp_.lease(MacAddress::from_u64(8), Ipv4Address(10, 0, 0, 20)).ok());
  EXPECT_FALSE(dhcp_.lease(MacAddress::from_u64(9), Ipv4Address(10, 0, 1, 5)).ok());
}

TEST_F(ServicesTest, DhcpPublishesLeaseEvents) {
  std::vector<DhcpLeaseEvent> events;
  auto sub = bus_.subscribe<DhcpLeaseEvent>(
      topics::kDhcpEvents, [&](const DhcpLeaseEvent& e) { events.push_back(e); });
  dhcp_.lease(MacAddress::from_u64(1));
  dhcp_.release(MacAddress::from_u64(1));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].released);
  EXPECT_TRUE(events[1].released);
  EXPECT_EQ(events[0].ip, events[1].ip);
}

TEST_F(ServicesTest, DnsForwardAndReverse) {
  dns_.register_record(Hostname{"h1"}, Ipv4Address(10, 0, 0, 10));
  dns_.register_record(Hostname{"h1"}, Ipv4Address(10, 0, 0, 11));  // second NIC
  EXPECT_EQ(dns_.resolve(Hostname{"h1"}).size(), 2u);
  EXPECT_EQ(dns_.reverse(Ipv4Address(10, 0, 0, 10)), Hostname{"h1"});
  EXPECT_EQ(dns_.record_count(), 2u);
}

TEST_F(ServicesTest, DnsAddressReassignment) {
  // DHCP churn: an address moves from h1 to h2.
  dns_.register_record(Hostname{"h1"}, Ipv4Address(10, 0, 0, 10));
  dns_.register_record(Hostname{"h2"}, Ipv4Address(10, 0, 0, 10));
  EXPECT_TRUE(dns_.resolve(Hostname{"h1"}).empty());
  EXPECT_EQ(dns_.reverse(Ipv4Address(10, 0, 0, 10)), Hostname{"h2"});
}

TEST_F(ServicesTest, DnsRemoveHost) {
  dns_.register_record(Hostname{"h1"}, Ipv4Address(10, 0, 0, 10));
  dns_.register_record(Hostname{"h1"}, Ipv4Address(10, 0, 0, 11));
  dns_.remove_host(Hostname{"h1"});
  EXPECT_TRUE(dns_.resolve(Hostname{"h1"}).empty());
  EXPECT_EQ(dns_.record_count(), 0u);
}

TEST_F(ServicesTest, DnsPublishesRecordEvents) {
  std::vector<DnsRecordEvent> events;
  auto sub = bus_.subscribe<DnsRecordEvent>(
      topics::kDnsEvents, [&](const DnsRecordEvent& e) { events.push_back(e); });
  dns_.register_record(Hostname{"h1"}, Ipv4Address(1, 1, 1, 1));
  dns_.register_record(Hostname{"h1"}, Ipv4Address(1, 1, 1, 1));  // duplicate: no event
  dns_.remove_record(Hostname{"h1"}, Ipv4Address(1, 1, 1, 1));
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[0].removed);
  EXPECT_TRUE(events[1].removed);
}

TEST_F(ServicesTest, DirectoryLocalAdminByEnclave) {
  ASSERT_TRUE(directory_.add_host(HostRecord{Hostname{"h1"}, "dept-1", false}).ok());
  ASSERT_TRUE(directory_.add_host(HostRecord{Hostname{"h2"}, "dept-1", false}).ok());
  ASSERT_TRUE(directory_.add_host(HostRecord{Hostname{"h3"}, "dept-2", false}).ok());
  ASSERT_TRUE(directory_.add_host(HostRecord{Hostname{"srv"}, "dept-1", true}).ok());
  ASSERT_TRUE(directory_.add_user(UserRecord{Username{"u1"}, "dept-1", Hostname{"h1"}}).ok());

  EXPECT_TRUE(directory_.is_local_admin(Username{"u1"}, Hostname{"h1"}));
  EXPECT_TRUE(directory_.is_local_admin(Username{"u1"}, Hostname{"h2"}));
  EXPECT_FALSE(directory_.is_local_admin(Username{"u1"}, Hostname{"h3"}));
  EXPECT_FALSE(directory_.is_local_admin(Username{"u1"}, Hostname{"srv"}));  // server
  EXPECT_FALSE(directory_.is_local_admin(Username{"ghost"}, Hostname{"h1"}));
}

TEST_F(ServicesTest, DirectoryCredentialCache) {
  ASSERT_TRUE(directory_.add_host(HostRecord{Hostname{"h1"}, "dept-1", false}).ok());
  ASSERT_TRUE(directory_.add_host(HostRecord{Hostname{"srv"}, "s", true}).ok());
  directory_.record_logon(Username{"u1"}, Hostname{"h1"});
  directory_.record_logon(Username{"u2"}, Hostname{"h1"});
  directory_.record_logon(Username{"u1"}, Hostname{"srv"});  // servers never cache

  EXPECT_EQ(directory_.cached_credentials(Hostname{"h1"}).size(), 2u);
  EXPECT_TRUE(directory_.cached_credentials(Hostname{"srv"}).empty());

  directory_.clear_credentials(Hostname{"h1"});
  EXPECT_TRUE(directory_.cached_credentials(Hostname{"h1"}).empty());
}

TEST_F(ServicesTest, DirectoryDuplicateRejected) {
  ASSERT_TRUE(directory_.add_host(HostRecord{Hostname{"h1"}, "d", false}).ok());
  EXPECT_FALSE(directory_.add_host(HostRecord{Hostname{"h1"}, "d", false}).ok());
  ASSERT_TRUE(directory_.add_user(UserRecord{Username{"u1"}, "d", {}}).ok());
  EXPECT_FALSE(directory_.add_user(UserRecord{Username{"u1"}, "d", {}}).ok());
}

TEST_F(ServicesTest, DirectoryEnclaveQueries) {
  ASSERT_TRUE(directory_.add_host(HostRecord{Hostname{"h1"}, "a", false}).ok());
  ASSERT_TRUE(directory_.add_host(HostRecord{Hostname{"h2"}, "b", false}).ok());
  ASSERT_TRUE(directory_.add_user(UserRecord{Username{"u1"}, "a", Hostname{"h1"}}).ok());
  EXPECT_EQ(directory_.hosts_in_enclave("a").size(), 1u);
  EXPECT_EQ(directory_.users_in_enclave("a").size(), 1u);
  EXPECT_EQ(directory_.enclaves().size(), 2u);
  EXPECT_EQ(directory_.all_hosts().size(), 2u);
  EXPECT_EQ(directory_.all_users().size(), 1u);
}

// --- SIEM process-count log-on logic (paper Section IV-A) ---

TEST_F(ServicesTest, SiemLogOnAtFirstProcess) {
  std::vector<SessionEvent> events;
  auto sub = bus_.subscribe<SessionEvent>(
      topics::kSiemSessions, [&](const SessionEvent& e) { events.push_back(e); });

  siem_.process_created(Username{"alice"}, Hostname{"h1"});
  siem_.process_created(Username{"alice"}, Hostname{"h1"});
  ASSERT_EQ(events.size(), 1u);  // only the 0 -> 1 transition publishes
  EXPECT_TRUE(events[0].logged_on);
  EXPECT_TRUE(siem_.is_logged_on(Username{"alice"}, Hostname{"h1"}));
  EXPECT_EQ(siem_.process_count(Username{"alice"}, Hostname{"h1"}), 2);
}

TEST_F(ServicesTest, SiemLogOffOnlyWhenCountReachesZero) {
  std::vector<SessionEvent> events;
  auto sub = bus_.subscribe<SessionEvent>(
      topics::kSiemSessions, [&](const SessionEvent& e) { events.push_back(e); });

  siem_.process_created(Username{"alice"}, Hostname{"h1"});
  siem_.process_created(Username{"alice"}, Hostname{"h1"});
  siem_.process_terminated(Username{"alice"}, Hostname{"h1"});
  EXPECT_EQ(events.size(), 1u);  // still logged on
  siem_.process_terminated(Username{"alice"}, Hostname{"h1"});
  ASSERT_EQ(events.size(), 2u);
  EXPECT_FALSE(events[1].logged_on);
  EXPECT_FALSE(siem_.is_logged_on(Username{"alice"}, Hostname{"h1"}));
}

TEST_F(ServicesTest, SiemSessionsPerUserAndHost) {
  siem_.process_created(Username{"alice"}, Hostname{"h1"});
  siem_.process_created(Username{"alice"}, Hostname{"h2"});
  siem_.process_created(Username{"bob"}, Hostname{"h1"});
  EXPECT_EQ(siem_.sessions_of(Username{"alice"}).size(), 2u);
  EXPECT_EQ(siem_.users_on(Hostname{"h1"}).size(), 2u);
}

TEST_F(ServicesTest, SiemSpuriousTerminationIgnored) {
  siem_.process_terminated(Username{"alice"}, Hostname{"h1"});  // no creation
  EXPECT_FALSE(siem_.is_logged_on(Username{"alice"}, Hostname{"h1"}));
}

}  // namespace
}  // namespace dfi
