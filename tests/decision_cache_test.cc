// Tests for the PCP decision cache and its epoch invalidation: repeated
// identical flows replay the cached decision; any policy insert/revoke or
// effective binding change forces a full re-decision (late binding, paper
// §III-B); spoof denials are cached like any other decision; capacity 0
// disables the cache and bulk eviction bounds its size.
#include <gtest/gtest.h>

#include <memory>

#include "bus/message_bus.h"
#include "core/decision_cache.h"
#include "core/pcp.h"
#include "core/persistence.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

// --------------------------------------------- DecisionCache unit tests

TEST(DecisionCacheUnit, StoreLookupAndEpochStaleness) {
  DecisionCache<int> cache(8);
  FlowKey key;
  key.src_mac = 0xa;
  EXPECT_EQ(cache.lookup(key, 1, 1), nullptr);  // cold miss
  cache.store(key, 42, /*policy_epoch=*/1, /*binding_epoch=*/1);
  const int* hit = cache.lookup(key, 1, 1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 42);
  // Policy epoch moved: stale, entry evicted eagerly.
  EXPECT_EQ(cache.lookup(key, 2, 1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  cache.store(key, 43, 2, 1);
  // Binding epoch moved: stale too.
  EXPECT_EQ(cache.lookup(key, 2, 2), nullptr);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().stale_policy, 1u);
  EXPECT_EQ(cache.stats().stale_binding, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);  // only the cold miss
}

TEST(DecisionCacheUnit, BulkEvictionBoundsSize) {
  DecisionCache<int> cache(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    FlowKey key;
    key.src_mac = i;
    cache.store(key, static_cast<int>(i), 1, 1);
    EXPECT_LE(cache.size(), 4u);
  }
  EXPECT_GT(cache.stats().evictions, 0u);
}

TEST(DecisionCacheUnit, ZeroCapacityDisables) {
  DecisionCache<int> cache(0);
  EXPECT_FALSE(cache.enabled());
  FlowKey key;
  cache.store(key, 7, 1, 1);
  EXPECT_EQ(cache.lookup(key, 1, 1), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

// ------------------------------------------------ PCP integration tests

class DecisionCacheTest : public ::testing::Test {
 protected:
  DecisionCacheTest() { rebuild({}); }

  void rebuild(PcpConfig config) {
    config.zero_latency = true;
    pcp_.reset();
    erm_ = std::make_unique<EntityResolutionManager>(bus_);
    manager_ = std::make_unique<PolicyManager>(bus_);
    pcp_ = std::make_unique<PolicyCompilationPoint>(sim_, bus_, *erm_, *manager_,
                                                    config, Rng(1));
    pcp_->register_switch(Dpid{1}, [](const OfMessage&) {});
  }

  PacketInMsg packet_in_for(const Packet& packet, PortNo port = PortNo{5}) {
    PacketInMsg msg;
    msg.in_port = port;
    msg.table_id = 0;
    msg.data = packet.serialize();
    return msg;
  }

  Packet sample_packet(std::uint16_t src_port = 1000) {
    return make_tcp_packet(MacAddress::from_u64(0xa), MacAddress::from_u64(0xb),
                           Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                           src_port, 445);
  }

  // alice@h1 reachable at 10.0.0.1: makes user-based rules apply to
  // sample_packet()'s source.
  void bind_alice() {
    BindingEvent host_ip;
    host_ip.kind = BindingKind::kHostIp;
    host_ip.host = Hostname{"h1"};
    host_ip.ip = Ipv4Address(10, 0, 0, 1);
    erm_->apply(host_ip);
    BindingEvent user_host;
    user_host.kind = BindingKind::kUserHost;
    user_host.user = Username{"alice"};
    user_host.host = Hostname{"h1"};
    erm_->apply(user_host);
  }

  PolicyRuleId insert_allow_alice() {
    PolicyRule allow;
    allow.action = PolicyAction::kAllow;
    allow.source.user = Username{"alice"};
    return manager_->insert(allow, PdpPriority{10}, "test");
  }

  Simulator sim_;
  MessageBus bus_;
  std::unique_ptr<EntityResolutionManager> erm_;
  std::unique_ptr<PolicyManager> manager_;
  std::unique_ptr<PolicyCompilationPoint> pcp_;
};

TEST_F(DecisionCacheTest, RepeatedIdenticalFlowReplaysDecision) {
  bind_alice();
  const PolicyRuleId id = insert_allow_alice();
  const PacketInMsg msg = packet_in_for(sample_packet());

  const PcpDecision first = pcp_->decide(Dpid{1}, msg);
  EXPECT_TRUE(first.allow);
  const std::uint64_t policy_queries = manager_->stats().queries;
  const std::uint64_t erm_queries = erm_->stats().queries;

  const PcpDecision second = pcp_->decide(Dpid{1}, msg);
  EXPECT_TRUE(second.allow);
  EXPECT_EQ(second.policy.rule_id, id);
  EXPECT_EQ(pcp_->stats().decision_cache_hits, 1u);
  EXPECT_EQ(pcp_->decision_cache_stats().hits, 1u);
  // The replay skipped enrichment and the policy query entirely.
  EXPECT_EQ(manager_->stats().queries, policy_queries);
  EXPECT_EQ(erm_->stats().queries, erm_queries);
  // The compiled rule is still (re)installed and counted.
  EXPECT_EQ(pcp_->stats().rules_installed, 2u);
  EXPECT_EQ(pcp_->stats().allowed, 2u);
}

TEST_F(DecisionCacheTest, DistinctFlowTuplesDoNotCollide) {
  const PcpDecision a = pcp_->decide(Dpid{1}, packet_in_for(sample_packet(1000)));
  const PcpDecision b = pcp_->decide(Dpid{1}, packet_in_for(sample_packet(1001)));
  EXPECT_FALSE(a.allow);
  EXPECT_FALSE(b.allow);
  EXPECT_EQ(pcp_->stats().decision_cache_hits, 0u);
  EXPECT_EQ(pcp_->decision_cache_size(), 2u);
}

TEST_F(DecisionCacheTest, PolicyInsertForcesRedecision) {
  bind_alice();
  const PacketInMsg msg = packet_in_for(sample_packet());
  EXPECT_FALSE(pcp_->decide(Dpid{1}, msg).allow);  // default deny, cached

  insert_allow_alice();  // bumps the policy epoch
  const PcpDecision after = pcp_->decide(Dpid{1}, msg);
  EXPECT_TRUE(after.allow) << "stale cached default-deny must not be replayed";
  EXPECT_EQ(pcp_->stats().decision_cache_hits, 0u);
  EXPECT_EQ(pcp_->decision_cache_stats().stale_policy, 1u);
}

TEST_F(DecisionCacheTest, PolicyRevokeForcesRedecision) {
  bind_alice();
  const PolicyRuleId id = insert_allow_alice();
  const PacketInMsg msg = packet_in_for(sample_packet());
  EXPECT_TRUE(pcp_->decide(Dpid{1}, msg).allow);

  ASSERT_TRUE(manager_->revoke(id));  // bumps the policy epoch
  const PcpDecision after = pcp_->decide(Dpid{1}, msg);
  EXPECT_FALSE(after.allow) << "stale cached allow must not outlive the rule";
  EXPECT_TRUE(after.policy.default_deny);
  EXPECT_EQ(pcp_->stats().decision_cache_hits, 0u);
}

TEST_F(DecisionCacheTest, BindingAssertionForcesRedecision) {
  insert_allow_alice();
  const PacketInMsg msg = packet_in_for(sample_packet());
  // No identity bindings yet: alice's rule cannot match.
  EXPECT_FALSE(pcp_->decide(Dpid{1}, msg).allow);

  bind_alice();  // bumps the binding epoch
  const PcpDecision after = pcp_->decide(Dpid{1}, msg);
  EXPECT_TRUE(after.allow) << "new bindings must reach the next decision (late binding)";
  EXPECT_EQ(pcp_->decision_cache_stats().stale_binding, 1u);
}

TEST_F(DecisionCacheTest, BindingRetractionForcesRedecision) {
  bind_alice();
  insert_allow_alice();
  const PacketInMsg msg = packet_in_for(sample_packet());
  EXPECT_TRUE(pcp_->decide(Dpid{1}, msg).allow);

  BindingEvent retract;  // alice logs off h1
  retract.kind = BindingKind::kUserHost;
  retract.retracted = true;
  retract.user = Username{"alice"};
  retract.host = Hostname{"h1"};
  erm_->apply(retract);

  const PcpDecision after = pcp_->decide(Dpid{1}, msg);
  EXPECT_FALSE(after.allow) << "retraction must invalidate the cached allow";
  EXPECT_EQ(pcp_->decision_cache_stats().stale_binding, 1u);
}

TEST_F(DecisionCacheTest, SpoofDenialIsCachedAndReplayed) {
  BindingEvent dhcp;  // 10.0.0.1 leased to a MAC != the packet's source
  dhcp.kind = BindingKind::kIpMac;
  dhcp.ip = Ipv4Address(10, 0, 0, 1);
  dhcp.mac = MacAddress::from_u64(0xdead);
  erm_->apply(dhcp);

  const PacketInMsg msg = packet_in_for(sample_packet());
  EXPECT_TRUE(pcp_->decide(Dpid{1}, msg).spoofed);
  EXPECT_TRUE(pcp_->decide(Dpid{1}, msg).spoofed);
  EXPECT_EQ(pcp_->stats().spoof_denied, 2u);
  EXPECT_EQ(pcp_->stats().decision_cache_hits, 1u);
}

TEST_F(DecisionCacheTest, FirstSightingOfOtherHostsDoesNotInvalidate) {
  const PacketInMsg msg_a = packet_in_for(sample_packet());
  pcp_->decide(Dpid{1}, msg_a);

  // A brand-new host shows up: its first MAC-location assertion must not
  // flush A's cached decision (deliberate epoch exception, ERM header).
  const Packet other =
      make_tcp_packet(MacAddress::from_u64(0xcc), MacAddress::from_u64(0xb),
                      Ipv4Address(10, 0, 0, 9), Ipv4Address(10, 0, 0, 2), 2000, 80);
  pcp_->decide(Dpid{1}, packet_in_for(other, PortNo{7}));

  pcp_->decide(Dpid{1}, msg_a);
  EXPECT_EQ(pcp_->stats().decision_cache_hits, 1u);
}

TEST_F(DecisionCacheTest, MacMoveBumpsBindingEpochAndRedecides) {
  const PacketInMsg at_port5 = packet_in_for(sample_packet(), PortNo{5});
  pcp_->decide(Dpid{1}, at_port5);
  const std::uint64_t epoch_before = erm_->epoch();

  // The same MAC appears at another port: the sensor retracts the old
  // location (an effective change — epoch bump) and asserts the new one.
  pcp_->decide(Dpid{1}, packet_in_for(sample_packet(), PortNo{6}));
  EXPECT_EQ(pcp_->stats().mac_moves, 1u);
  EXPECT_GT(erm_->epoch(), epoch_before);

  // The old entry is stale; the flow at port 5 is re-decided (and the move
  // back is itself observed as a MAC move).
  pcp_->decide(Dpid{1}, at_port5);
  EXPECT_EQ(pcp_->stats().decision_cache_hits, 0u);
}

TEST_F(DecisionCacheTest, ZeroCapacityDisablesCaching) {
  PcpConfig config;
  config.decision_cache_capacity = 0;
  rebuild(config);
  const PacketInMsg msg = packet_in_for(sample_packet());
  pcp_->decide(Dpid{1}, msg);
  pcp_->decide(Dpid{1}, msg);
  EXPECT_EQ(pcp_->stats().decision_cache_hits, 0u);
  EXPECT_EQ(pcp_->decision_cache_size(), 0u);
}

TEST_F(DecisionCacheTest, CapacityBoundsHeldUnderManyFlows) {
  PcpConfig config;
  config.decision_cache_capacity = 4;
  rebuild(config);
  for (std::uint16_t port = 1000; port < 1012; ++port) {
    pcp_->decide(Dpid{1}, packet_in_for(sample_packet(port)));
    EXPECT_LE(pcp_->decision_cache_size(), 4u);
  }
  EXPECT_GT(pcp_->decision_cache_stats().evictions, 0u);
}

// Regression for the reload epoch-aliasing hole: a decision cached before
// a crash is stamped with the pre-crash policy epoch. A plain reload
// replays only surviving rules and restarts the epoch counter *behind*
// that stamp; enough later inserts march it back onto the stamped value —
// against a different policy database — and the stale verdict replays.
// Reloading with epoch_floor (what Journal::recover does via
// advance_epoch_to) keeps every post-reload epoch strictly beyond any
// pre-crash stamp.
TEST(DecisionCacheUnit, ReloadEpochFloorKeepsPreCrashStampsStale) {
  MessageBus bus;
  PolicyManager manager(bus);
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  const PolicyRuleId doomed =
      manager.insert(allow, PdpPriority{10}, "pdp-a");  // epoch 1
  PolicyRule deny;
  deny.action = PolicyAction::kDeny;
  deny.destination.l4_port = 22;
  manager.insert(deny, PdpPriority{20}, "pdp-b");  // epoch 2
  manager.revoke(doomed);                          // epoch 3

  // A verdict cached pre-crash, stamped with the live epochs.
  DecisionCache<int> cache(8);
  FlowKey key;
  key.src_mac = 0xa11ce;
  cache.store(key, 42, manager.epoch(), /*binding_epoch=*/0);
  const std::string snapshot = save_policies(manager);

  // Restart without the floor: the replayed database sits at epoch 1; two
  // unrelated inserts later the counter reads 3 again and the pre-crash
  // stamp validates against a database it never saw.
  MessageBus bus2;
  PolicyManager plain(bus2);
  ASSERT_TRUE(load_policies(plain, snapshot).ok());
  ASSERT_LT(plain.epoch(), manager.epoch());
  plain.insert(allow, PdpPriority{30}, "pdp-c");
  plain.insert(deny, PdpPriority{40}, "pdp-d");
  ASSERT_EQ(plain.epoch(), manager.epoch());
  EXPECT_NE(cache.lookup(key, plain.epoch(), 0), nullptr);  // the bug

  // Restart with the floor: the same two inserts land at epochs 4 and 5 —
  // no post-reload epoch can ever equal a pre-crash stamp.
  MessageBus bus3;
  PolicyManager floored(bus3);
  ASSERT_TRUE(load_policies(floored, snapshot, manager.epoch()).ok());
  EXPECT_EQ(floored.epoch(), manager.epoch());
  floored.insert(allow, PdpPriority{30}, "pdp-c");
  floored.insert(deny, PdpPriority{40}, "pdp-d");
  EXPECT_GT(floored.epoch(), manager.epoch());
  EXPECT_EQ(cache.lookup(key, floored.epoch(), 0), nullptr);
}

TEST_F(DecisionCacheTest, UnparsableTrafficIsNotCached) {
  PacketInMsg msg;
  msg.in_port = PortNo{5};
  msg.table_id = 0;
  msg.data = {0x01, 0x02};  // too short for an Ethernet header
  pcp_->decide(Dpid{1}, msg);
  pcp_->decide(Dpid{1}, msg);
  EXPECT_EQ(pcp_->stats().unparsable, 2u);
  EXPECT_EQ(pcp_->decision_cache_size(), 0u);
  EXPECT_EQ(pcp_->stats().decision_cache_hits, 0u);
}

}  // namespace
}  // namespace dfi
