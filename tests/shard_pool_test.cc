// Randomized differential test for the sharded Packet-in plane (DESIGN.md
// §5): a PcpShardPool with N ∈ {1, 2, 4, 8} shards, in both the simulated
// and the std::thread backend, must produce verdicts and compiled Table-0
// rules byte-identical to the single-threaded PCP oracle (`decide()`), under
// interleaved policy inserts/revocations and identifier-binding churn.
//
// The workload is a deterministic script of batches. Each batch applies a
// few control-plane operations (policy insert/revoke, binding assert/
// retract) and then offers a burst of Packet-ins; the pool is drained
// (`sim.run()` / `wait_idle()`) before the next batch, matching the
// threaded backend's consistency contract: snapshots are captured at
// submission, so control-plane mutations take effect at drain boundaries.
// Within a batch everything is fair game — repeated flows (decision-cache
// replay), MAC moves across ports (epoch bumps mid-batch), spoofed sources,
// unparsable runts, and flows hashing to different shards and switches.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <variant>
#include <vector>

#include "bus/message_bus.h"
#include "core/pcp.h"
#include "openflow/wire.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

// ------------------------------------------------------------ the script

struct InsertOp {
  PolicyRule rule;
  PdpPriority priority{1};
};
struct RevokeOp {
  std::size_t ordinal = 0;  // index into the world's insertion-order id list
};
struct BindOp {
  BindingEvent event;
};
using ControlOp = std::variant<InsertOp, RevokeOp, BindOp>;

struct PacketOp {
  Dpid dpid{1};
  PortNo port{1};
  Packet packet;
  bool runt = false;  // offer a truncated, unparsable frame instead
};

struct Batch {
  std::vector<ControlOp> control;
  std::vector<PacketOp> packets;
};

constexpr std::size_t kEntities = 8;

MacAddress mac_of(std::size_t i) {
  // 0x00.. first octet: unicast. The location-spoof check is multicast-gated
  // (for unicast sources the sensor self-asserts the location first), so
  // unicast keeps oracle and snapshot paths on the same branch.
  return MacAddress::from_u64(0xa0 + i);
}
Ipv4Address ip_of(std::size_t i) {
  return Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(i + 1));
}
Hostname host_of(std::size_t i) { return Hostname{"h" + std::to_string(i)}; }
Username user_of(std::size_t i) { return Username{"u" + std::to_string(i)}; }

// Deterministic workload: ~6 control ops and 50 Packet-ins per batch drawn
// from a small entity pool so flows repeat (cache replay), collide across
// shards, and race the control-plane churn at batch boundaries.
std::vector<Batch> make_script(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto pick = [&rng](std::size_t n) {
    return static_cast<std::size_t>(rng() % n);
  };

  std::vector<Batch> script;
  std::size_t inserts_so_far = 0;
  for (int round = 0; round < 8; ++round) {
    Batch batch;
    const std::size_t n_control = 4 + pick(3);
    for (std::size_t c = 0; c < n_control; ++c) {
      const std::size_t kind = pick(10);
      if (kind < 4) {  // insert
        InsertOp op;
        op.rule.action = pick(3) != 0 ? PolicyAction::kAllow : PolicyAction::kDeny;
        switch (pick(5)) {
          case 0: op.rule.source.user = user_of(pick(kEntities / 2)); break;
          case 1: op.rule.source.ip = ip_of(pick(kEntities)); break;
          case 2: op.rule.destination.ip = ip_of(pick(kEntities)); break;
          case 3:
            op.rule.destination.l4_port =
                static_cast<std::uint16_t>(pick(2) ? 445 : 80);
            break;
          default: op.rule.properties.ip_proto = pick(2) ? 6 : 17; break;
        }
        op.priority = PdpPriority{static_cast<std::uint32_t>(1 + pick(5))};
        batch.control.push_back(op);
        ++inserts_so_far;
      } else if (kind < 6 && inserts_so_far > 0) {  // revoke (maybe repeated)
        batch.control.push_back(RevokeOp{pick(inserts_so_far)});
      } else {  // binding churn
        BindOp op;
        const std::size_t e = pick(kEntities);
        switch (pick(3)) {
          case 0:
            op.event.kind = BindingKind::kUserHost;
            op.event.user = user_of(e % (kEntities / 2));
            op.event.host = host_of(e);
            break;
          case 1:
            op.event.kind = BindingKind::kHostIp;
            op.event.host = host_of(e);
            op.event.ip = ip_of(e);
            break;
          default:
            op.event.kind = BindingKind::kIpMac;
            op.event.ip = ip_of(e);
            // Sometimes bind the ip to the "wrong" MAC: subsequent packets
            // from the canonical MAC become spoofs until rebound.
            op.event.mac = mac_of(pick(4) == 0 ? (e + 1) % kEntities : e);
            break;
        }
        op.event.retracted = pick(4) == 0;
        batch.control.push_back(op);
      }
    }

    for (int p = 0; p < 50; ++p) {
      PacketOp op;
      op.dpid = Dpid{1 + rng() % 2};
      op.port = PortNo{static_cast<std::uint32_t>(1 + pick(4))};
      const std::size_t s = pick(kEntities);
      const std::size_t d = pick(kEntities);
      // 1 in 5 packets claims an IP whose DHCP binding may name another MAC.
      const MacAddress src_mac = mac_of(pick(5) == 0 ? (s + 1) % kEntities : s);
      const std::uint16_t sport = static_cast<std::uint16_t>(1000 + 1000 * pick(3));
      const std::uint16_t dport = pick(2) ? 445 : 80;
      op.packet = pick(4) == 0
                      ? make_udp_packet(src_mac, mac_of(d), ip_of(s), ip_of(d),
                                        sport, dport)
                      : make_tcp_packet(src_mac, mac_of(d), ip_of(s), ip_of(d),
                                        sport, dport);
      op.runt = pick(25) == 0;
      batch.packets.push_back(op);
    }
    script.push_back(std::move(batch));
  }
  return script;
}

// ------------------------------------------------------------- the worlds

struct Verdict {
  bool allow = false;
  bool spoofed = false;
  bool default_deny = false;
  std::uint64_t rule_id = 0;

  friend bool operator==(const Verdict&, const Verdict&) = default;
  friend std::ostream& operator<<(std::ostream& os, const Verdict& v) {
    return os << "{allow=" << v.allow << " spoofed=" << v.spoofed
              << " default_deny=" << v.default_deny << " rule=" << v.rule_id << "}";
  }
};

// What one Packet-in produced, keyed by submission index: the verdict and
// the compiled Table-0 rule's exact wire encoding.
struct PacketResult {
  Verdict verdict;
  std::vector<std::uint8_t> rule_bytes;

  friend bool operator==(const PacketResult&, const PacketResult&) = default;
};

PacketResult result_of(const PcpDecision& decision) {
  PacketResult result;
  result.verdict = Verdict{decision.allow, decision.spoofed,
                           decision.policy.default_deny,
                           decision.policy.rule_id.value};
  result.rule_bytes = encode(OfMessage{0, decision.installed_rule});
  return result;
}

// One complete DFI control plane (bus, ERM, Policy Manager, PCP) plus the
// wire-level record of everything the PCP wrote to its two switches.
struct World {
  explicit World(const PcpConfig& config)
      : erm(bus), policy(bus), pcp(sim, bus, erm, policy, config, Rng(7)) {
    for (std::uint64_t d : {std::uint64_t{1}, std::uint64_t{2}}) {
      pcp.register_switch(Dpid{d}, [this, d](const OfMessage& message) {
        // Tag with the receiving switch so the byte records only compare
        // equal when every message also went to the same switch.
        std::vector<std::uint8_t> tagged{static_cast<std::uint8_t>(d)};
        const std::vector<std::uint8_t> bytes = encode(message);
        tagged.insert(tagged.end(), bytes.begin(), bytes.end());
        const auto* mod = std::get_if<FlowModMsg>(&message.payload);
        if (mod != nullptr && mod->command == FlowModCommand::kDelete) {
          // Flush DELETEs are issued during control ops, outside the pool:
          // their order is submission order in every configuration.
          delete_wire.insert(delete_wire.end(), tagged.begin(), tagged.end());
        } else {
          add_writes.push_back(std::move(tagged));
        }
      });
    }
  }

  void apply(const ControlOp& op) {
    if (const auto* insert = std::get_if<InsertOp>(&op)) {
      inserted.push_back(policy.insert(insert->rule, insert->priority, "difftest"));
    } else if (const auto* revoke = std::get_if<RevokeOp>(&op)) {
      policy.revoke(inserted.at(revoke->ordinal));
    } else {
      erm.apply(std::get<BindOp>(op).event);
    }
  }

  PacketInMsg packet_in_for(const PacketOp& op) const {
    PacketInMsg msg;
    msg.in_port = op.port;
    msg.table_id = 0;
    msg.data = op.packet.serialize();
    if (op.runt) msg.data.resize(4);  // truncated frame: unparsable
    return msg;
  }

  Simulator sim;
  MessageBus bus;
  EntityResolutionManager erm;
  PolicyManager policy;
  PolicyCompilationPoint pcp;
  std::vector<std::vector<std::uint8_t>> add_writes;  // switch-tagged ADD mods
  std::vector<std::uint8_t> delete_wire;              // concatenated flush DELETEs
  std::vector<PacketResult> results;                  // by submission index
  std::vector<PolicyRuleId> inserted;
};

// Oracle: the synchronous single-threaded decision path.
void run_oracle(World& world, const std::vector<Batch>& script) {
  for (const Batch& batch : script) {
    for (const ControlOp& op : batch.control) world.apply(op);
    for (const PacketOp& packet : batch.packets) {
      world.results.push_back(
          result_of(world.pcp.decide(packet.dpid, world.packet_in_for(packet))));
    }
  }
}

// Candidate: the same script through handle_packet_in + the shard pool,
// drained at every batch boundary. Results are recorded under the packet's
// submission index: with several simulated shards, service completions may
// legitimately interleave across shards out of submission order, but each
// packet's verdict and compiled rule must still match the oracle's.
void run_pool(World& world, const std::vector<Batch>& script, PcpBackend backend) {
  for (const Batch& batch : script) {
    for (const ControlOp& op : batch.control) world.apply(op);
    for (const PacketOp& packet : batch.packets) {
      const std::size_t index = world.results.size();
      world.results.emplace_back();
      const bool accepted = world.pcp.handle_packet_in(
          packet.dpid, world.packet_in_for(packet),
          [&world, index](const PcpDecision& decision) {
            world.results[index] = result_of(decision);
          });
      ASSERT_TRUE(accepted) << "queue sized to never drop in this test";
    }
    if (backend == PcpBackend::kSimulated) {
      world.sim.run();
    } else {
      world.pcp.wait_idle();
    }
  }
}

PcpConfig base_config() {
  PcpConfig config;
  config.zero_latency = true;
  config.queue_capacity = 512;  // > batch size: no overload drops
  return config;
}

// Candidate: the same script through handle_packet_in_batch, chopping each
// round's 50 Packet-ins into submission bursts of `burst` (the last burst is
// a remainder). One burst = one snapshot capture in the threaded backend, so
// this is the path that proves "snapshot once per batch" is observationally
// identical to "snapshot per packet": control-plane mutations only happen at
// round boundaries, where the pool is drained.
void run_pool_batched(World& world, const std::vector<Batch>& script,
                      PcpBackend backend, std::size_t burst) {
  for (const Batch& batch : script) {
    for (const ControlOp& op : batch.control) world.apply(op);
    std::size_t offset = 0;
    while (offset < batch.packets.size()) {
      const std::size_t n = std::min(burst, batch.packets.size() - offset);
      std::vector<PolicyCompilationPoint::BatchItem> items(n);
      for (std::size_t i = 0; i < n; ++i) {
        const PacketOp& packet = batch.packets[offset + i];
        const std::size_t index = world.results.size();
        world.results.emplace_back();
        items[i].dpid = packet.dpid;
        items[i].msg = world.packet_in_for(packet);
        items[i].done = [&world, index](const PcpDecision& decision) {
          world.results[index] = result_of(decision);
        };
      }
      const std::size_t accepted = world.pcp.handle_packet_in_batch(items);
      ASSERT_EQ(accepted, n) << "queue sized to never drop in this test";
      for (const auto& item : items) ASSERT_TRUE(item.accepted);
      offset += n;
    }
    if (backend == PcpBackend::kSimulated) {
      world.sim.run();
    } else {
      world.pcp.wait_idle();
    }
  }
}

// ---------------------------------------------------------------- the test

TEST(ShardPoolDifferential, AllShardCountsAndBackendsMatchOracleByteForByte) {
  const std::vector<Batch> script = make_script(0xD1FF5EEDull);

  World oracle(base_config());
  run_oracle(oracle, script);
  ASSERT_FALSE(oracle.add_writes.empty());
  ASSERT_FALSE(oracle.delete_wire.empty());
  ASSERT_EQ(oracle.results.size(), 8u * 50u);

  for (const PcpBackend backend : {PcpBackend::kSimulated, PcpBackend::kThreads}) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{4}, std::size_t{8}}) {
      std::ostringstream label;
      label << (backend == PcpBackend::kSimulated ? "simulated" : "threads")
            << "/shards=" << shards;
      SCOPED_TRACE(label.str());

      PcpConfig config = base_config();
      config.backend = backend;
      config.shards = shards;
      World world(config);
      run_pool(world, script, backend);

      // Same insert sequence -> same rule-id sequence in every world.
      ASSERT_EQ(world.inserted.size(), oracle.inserted.size());
      for (std::size_t i = 0; i < world.inserted.size(); ++i) {
        EXPECT_EQ(world.inserted[i].value, oracle.inserted[i].value) << "insert " << i;
      }

      // Per-packet: verdict and compiled Table-0 rule byte-identical.
      ASSERT_EQ(world.results.size(), oracle.results.size());
      for (std::size_t i = 0; i < world.results.size(); ++i) {
        EXPECT_EQ(world.results[i].verdict, oracle.results[i].verdict)
            << "packet " << i;
        EXPECT_EQ(world.results[i].rule_bytes, oracle.results[i].rule_bytes)
            << "packet " << i;
      }

      // Flush DELETEs are emitted on the control path: byte-identical, in
      // order, in every configuration.
      EXPECT_EQ(world.delete_wire, oracle.delete_wire);

      // Installed ADDs: several simulated shards complete out of submission
      // order (distinct service stations), so install *order* is pinned only
      // where the pool preserves it — the threaded backend (submission-order
      // reorder buffer) and the single-shard simulator. Content — which rule
      // bytes reached which switch — must match everywhere.
      const bool order_preserving = backend == PcpBackend::kThreads || shards == 1;
      std::vector<std::vector<std::uint8_t>> got_adds = world.add_writes;
      std::vector<std::vector<std::uint8_t>> want_adds = oracle.add_writes;
      if (!order_preserving) {
        std::sort(got_adds.begin(), got_adds.end());
        std::sort(want_adds.begin(), want_adds.end());
      }
      EXPECT_EQ(got_adds, want_adds);

      // Outcome counters are part of the observable contract too. (Cache
      // hit/miss tallies are deliberately excluded: the threaded backend
      // may legitimately classify a replay differently, never a verdict.
      // packet_ins is a handle_packet_in counter the oracle's synchronous
      // decide() does not touch; mac_moves and the ERM epoch depend on
      // observation order, pinned only in order-preserving configurations.)
      const PcpStats& got = world.pcp.stats();
      const PcpStats& want = oracle.pcp.stats();
      EXPECT_EQ(got.packet_ins, 8u * 50u);
      EXPECT_EQ(got.allowed, want.allowed);
      EXPECT_EQ(got.denied, want.denied);
      EXPECT_EQ(got.default_denied, want.default_denied);
      EXPECT_EQ(got.spoof_denied, want.spoof_denied);
      EXPECT_EQ(got.unparsable, want.unparsable);
      EXPECT_EQ(got.rules_installed, want.rules_installed);
      EXPECT_EQ(got.dropped_overload, 0u);
      if (order_preserving) {
        EXPECT_EQ(got.mac_moves, want.mac_moves);
        EXPECT_EQ(world.erm.epoch(), oracle.erm.epoch());
      }

      // Final policy state converged to the oracle's.
      EXPECT_EQ(world.policy.size(), oracle.policy.size());
    }
  }
}

TEST(ShardPoolDifferential, MultipleShardsActuallyShareTheLoad) {
  const std::vector<Batch> script = make_script(0xBEEFull);
  PcpConfig config = base_config();
  config.shards = 8;
  World world(config);
  run_pool(world, script, PcpBackend::kSimulated);

  std::size_t shards_used = 0;
  for (std::size_t s = 0; s < world.pcp.shard_count(); ++s) {
    if (world.pcp.decision_cache_stats(s).lookups() > 0) ++shards_used;
  }
  EXPECT_GE(shards_used, 2u) << "flow-tuple hash must spread flows over shards";
}

TEST(ShardPoolDifferential, ThreadedEffectsAreDeferredUntilPolled) {
  PcpConfig config = base_config();
  config.backend = PcpBackend::kThreads;
  config.shards = 2;
  World world(config);

  const Packet packet = make_tcp_packet(mac_of(0), mac_of(1), ip_of(0), ip_of(1),
                                        1000, 445);
  PacketOp op;
  op.packet = packet;
  int done_calls = 0;
  ASSERT_TRUE(world.pcp.handle_packet_in(
      Dpid{1}, world.packet_in_for(op),
      [&done_calls](const PcpDecision&) { ++done_calls; }));
  // The worker may already have decided, but effects (rule install, done
  // callback) only run on the control thread during poll/wait.
  EXPECT_EQ(done_calls, 0);
  EXPECT_TRUE(world.add_writes.empty());
  world.pcp.wait_idle();
  EXPECT_EQ(done_calls, 1);
  EXPECT_FALSE(world.add_writes.empty());
  EXPECT_EQ(world.pcp.stats().rules_installed, 1u);
}

// ------------------------------------------------------- batched submission
//
// ISSUE 6 satellite: batch submission (handle_packet_in_batch, one snapshot
// pair per burst, coalesced completion retirement) must be byte-identical to
// per-packet submission at every burst size, on both backends. Burst sizes
// cover the degenerate batch (1), a remainder-producing odd size (7), a
// typical chunk (64), and the full ring capacity (512) — one burst fills the
// ingress rings to the exact configured bound.

TEST(ShardPoolBatch, BatchSizesAreByteIdenticalToPerPacket) {
  const std::vector<Batch> script = make_script(0xBA7C4ull);

  // The per-packet candidate is the reference here (itself pinned to the
  // oracle by ShardPoolDifferential above): batching must not perturb any
  // observable relative to it — including install order and ERM epoch, which
  // the threaded reorder buffer pins exactly.
  PcpConfig reference_config = base_config();
  reference_config.backend = PcpBackend::kThreads;
  reference_config.shards = 4;
  World reference(reference_config);
  run_pool(reference, script, PcpBackend::kThreads);
  ASSERT_FALSE(reference.add_writes.empty());

  for (const PcpBackend backend : {PcpBackend::kSimulated, PcpBackend::kThreads}) {
    for (const std::size_t burst : {std::size_t{1}, std::size_t{7},
                                    std::size_t{64}, std::size_t{512}}) {
      std::ostringstream label;
      label << (backend == PcpBackend::kSimulated ? "simulated" : "threads")
            << "/burst=" << burst;
      SCOPED_TRACE(label.str());

      PcpConfig config = base_config();
      config.backend = backend;
      config.shards = 4;
      World world(config);
      run_pool_batched(world, script, backend, burst);

      ASSERT_EQ(world.results.size(), reference.results.size());
      for (std::size_t i = 0; i < world.results.size(); ++i) {
        EXPECT_EQ(world.results[i].verdict, reference.results[i].verdict)
            << "packet " << i;
        EXPECT_EQ(world.results[i].rule_bytes, reference.results[i].rule_bytes)
            << "packet " << i;
      }
      EXPECT_EQ(world.delete_wire, reference.delete_wire);

      // Several simulated shards legitimately reorder installs (distinct
      // service stations); the threaded reorder buffer pins exact order.
      std::vector<std::vector<std::uint8_t>> got_adds = world.add_writes;
      std::vector<std::vector<std::uint8_t>> want_adds = reference.add_writes;
      if (backend != PcpBackend::kThreads) {
        std::sort(got_adds.begin(), got_adds.end());
        std::sort(want_adds.begin(), want_adds.end());
      }
      EXPECT_EQ(got_adds, want_adds);

      const PcpStats& got = world.pcp.stats();
      const PcpStats& want = reference.pcp.stats();
      EXPECT_EQ(got.packet_ins, want.packet_ins);
      EXPECT_EQ(got.allowed, want.allowed);
      EXPECT_EQ(got.denied, want.denied);
      EXPECT_EQ(got.default_denied, want.default_denied);
      EXPECT_EQ(got.spoof_denied, want.spoof_denied);
      EXPECT_EQ(got.unparsable, want.unparsable);
      EXPECT_EQ(got.rules_installed, want.rules_installed);
      EXPECT_EQ(got.dropped_overload, 0u);
      if (backend == PcpBackend::kThreads) {
        EXPECT_EQ(got.mac_moves, want.mac_moves);
        EXPECT_EQ(world.erm.epoch(), reference.erm.epoch());
      }
      EXPECT_EQ(world.policy.size(), reference.policy.size());
    }
  }
}

TEST(ShardPoolBatch, PartialAcceptanceMarksItemsIndividually) {
  // A burst larger than the remaining ring space must accept a prefix-per-
  // shard, flag exactly the accepted items, and count the rest as overload
  // drops — the proxy uses the per-item flag to suppress only rejected pins.
  PcpConfig config;
  config.zero_latency = true;
  config.backend = PcpBackend::kThreads;
  config.shards = 1;
  config.queue_capacity = 4;
  World world(config);
  // Stall the lone worker so nothing drains while the burst lands.
  world.pcp.set_worker_fault_probe(
      [](std::size_t, std::uint64_t) { return WorkerFault::kStall; });

  // 50 items against a 4-deep ring: every acceptance past 4 costs the
  // stalling worker 200us, so the burst always overruns by a wide margin.
  std::vector<PolicyCompilationPoint::BatchItem> items(50);
  std::atomic<int> done_calls{0};
  for (std::size_t i = 0; i < items.size(); ++i) {
    PacketOp op;
    op.packet = make_tcp_packet(mac_of(0), mac_of(1), ip_of(0), ip_of(1),
                                static_cast<std::uint16_t>(1000 + i), 445);
    items[i].dpid = Dpid{1};
    items[i].msg = world.packet_in_for(op);
    items[i].done = [&done_calls](const PcpDecision&) { ++done_calls; };
  }
  const std::size_t accepted = world.pcp.handle_packet_in_batch(items);
  // The ring holds exactly queue_capacity; the worker may have popped a few
  // before stalling, so "at least capacity, less than all" is the bound.
  EXPECT_GE(accepted, 4u);
  EXPECT_LT(accepted, items.size());
  // The per-item flag is the contract: the proxy counts a suppression for
  // exactly the items the batch could not place. (Which items land is
  // timing-dependent — the stalling worker may free a slot mid-burst — so
  // the flags, not their positions, are asserted.)
  std::size_t flagged = 0;
  for (const auto& item : items) flagged += item.accepted ? 1u : 0u;
  EXPECT_EQ(flagged, accepted);
  EXPECT_EQ(world.pcp.stats().dropped_overload, items.size() - accepted);

  world.pcp.set_worker_fault_probe(nullptr);
  world.pcp.wait_idle();
  EXPECT_EQ(done_calls.load(), static_cast<int>(accepted));
}

// ------------------------------------------- fault-injection regressions
//
// Pinned-probe regressions for behavior the invariant fuzzer exercises
// randomly (tests/support/fuzz_harness.cc, invariant I5): wait_idle must
// never wedge on a killed worker, abandoned jobs leave no effects, stranded
// queues are recovered inline in submission order, and dead shards reject
// work until respawned.

PcpConfig fault_pool_config(std::size_t shards) {
  PcpConfig config;
  config.backend = PcpBackend::kThreads;
  config.shards = shards;
  config.queue_capacity = 64;
  config.zero_latency = true;
  return config;
}

TEST(ShardPoolFaults, WaitIdleSurvivesWorkerKill) {
  Simulator sim;
  PcpShardPool pool(sim, fault_pool_config(1));
  // Kill the worker on the last submitted job. Deterministic: the FIFO
  // worker cannot probe seq 3 before it is submitted, so seqs 0-2 are
  // always accepted and executed first.
  pool.set_worker_fault_probe([](std::size_t, std::uint64_t seq) {
    return seq == 3 ? WorkerFault::kKill : WorkerFault::kNone;
  });
  std::vector<std::uint64_t> applied;
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(pool.submit_threaded(0, [i, &applied]() {
      return [i, &applied]() { applied.push_back(i); };
    }));
  }
  // Pre-fix this wedged forever: the abandoned seq never completed and
  // nothing woke the waiter on worker death.
  pool.wait_idle();
  EXPECT_EQ(applied, (std::vector<std::uint64_t>{0, 1, 2}));
  EXPECT_EQ(pool.jobs_abandoned(), 1u);
  EXPECT_EQ(pool.dead_workers(), 1u);
}

TEST(ShardPoolFaults, KilledShardRejectsSubmissionsUntilRespawn) {
  Simulator sim;
  PcpShardPool pool(sim, fault_pool_config(2));
  pool.set_worker_fault_probe([](std::size_t shard, std::uint64_t seq) {
    return (shard == 0 && seq == 0) ? WorkerFault::kKill : WorkerFault::kNone;
  });
  bool killed_job_ran = false;
  ASSERT_TRUE(pool.submit_threaded(0, [&killed_job_ran]() {
    return [&killed_job_ran]() { killed_job_ran = true; };
  }));
  pool.wait_idle();
  EXPECT_FALSE(killed_job_ran);  // killed mid-decision: effects never existed
  ASSERT_EQ(pool.dead_workers(), 1u);

  // The dead shard drops work like a full queue; healthy shards are
  // unaffected.
  EXPECT_FALSE(pool.submit_threaded(0, []() { return []() {}; }));
  bool healthy_ran = false;
  ASSERT_TRUE(pool.submit_threaded(1, [&healthy_ran]() {
    return [&healthy_ran]() { healthy_ran = true; };
  }));
  pool.wait_idle();
  EXPECT_TRUE(healthy_ran);

  EXPECT_EQ(pool.respawn_dead_workers(), 1u);
  EXPECT_EQ(pool.dead_workers(), 0u);
  bool revived_ran = false;
  ASSERT_TRUE(pool.submit_threaded(0, [&revived_ran]() {
    return [&revived_ran]() { revived_ran = true; };
  }));
  pool.wait_idle();
  EXPECT_TRUE(revived_ran);
}

TEST(ShardPoolFaults, StrandedJobsRecoverInlineInSubmissionOrder) {
  Simulator sim;
  PcpShardPool pool(sim, fault_pool_config(1));
  // Kill on the first job: everything still queued behind it is stranded on
  // the dead shard and must run inline on the control thread. How many of
  // the later submissions the dying shard still accepts races the kill, so
  // the assertions are conservation and order, not exact counts.
  pool.set_worker_fault_probe([](std::size_t, std::uint64_t seq) {
    return seq == 0 ? WorkerFault::kKill : WorkerFault::kNone;
  });
  std::vector<std::uint64_t> applied;
  std::uint64_t accepted = 0;
  for (std::uint64_t i = 0; i < 8; ++i) {
    if (pool.submit_threaded(0, [i, &applied]() {
          return [i, &applied]() { applied.push_back(i); };
        })) {
      ++accepted;
    }
  }
  pool.wait_idle();
  ASSERT_GE(accepted, 1u);
  EXPECT_EQ(pool.jobs_abandoned(), 1u);
  EXPECT_EQ(applied.size(), static_cast<std::size_t>(accepted - 1));
  for (std::size_t i = 1; i < applied.size(); ++i) {
    EXPECT_LT(applied[i - 1], applied[i]);
  }
}

TEST(ShardPoolFaults, StallsDelayButPreserveSubmissionOrder) {
  Simulator sim;
  PcpShardPool pool(sim, fault_pool_config(2));
  // Shard 0 stalls on every job while shard 1 races ahead; the reorder
  // buffer must still release effects in global submission order.
  pool.set_worker_fault_probe([](std::size_t shard, std::uint64_t) {
    return shard == 0 ? WorkerFault::kStall : WorkerFault::kNone;
  });
  std::vector<std::uint64_t> applied;
  for (std::uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(pool.submit_threaded(i % 2, [i, &applied]() {
      return [i, &applied]() { applied.push_back(i); };
    }));
  }
  pool.wait_idle();
  ASSERT_EQ(applied.size(), 16u);
  for (std::uint64_t i = 0; i < 16; ++i) EXPECT_EQ(applied[i], i);
}

}  // namespace
}  // namespace dfi
