// Tests for the testbed: host TCP model, network wiring, activity scripts,
// and the enterprise builder's shape (paper Section V-B).
#include <gtest/gtest.h>

#include "testbed/activity.h"
#include "testbed/enterprise.h"
#include "testbed/network.h"

namespace dfi {
namespace {

// ---------------------------------------------------------------- activity

class ActivityScriptProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ActivityScriptProperty, PaperConstraintsHold) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const ActivityScript script = generate_activity_script(rng);
    ASSERT_FALSE(script.empty());
    // Sorted and disjoint.
    for (std::size_t k = 0; k < script.size(); ++k) {
      EXPECT_LT(script[k].on, script[k].off);
      if (k > 0) {
        EXPECT_GT(script[k].on, script[k - 1].off);
      }
    }
    // Paper: at least two hours logged on within 09:00-13:00.
    const SimDuration morning =
        logged_on_within(script, clock_time(9), clock_time(13));
    EXPECT_GE(morning.us, hours(2).us);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ActivityScriptProperty,
                         ::testing::Values(1ull, 17ull, 99ull, 12345ull));

TEST(ActivityScript, LoggedOnAtQueriesIntervals) {
  ActivityScript script{{clock_time(9), clock_time(11)}};
  EXPECT_FALSE(logged_on_at(script, clock_time(8, 59)));
  EXPECT_TRUE(logged_on_at(script, clock_time(9)));
  EXPECT_TRUE(logged_on_at(script, clock_time(10, 30)));
  EXPECT_FALSE(logged_on_at(script, clock_time(11)));
}

TEST(ActivityScript, ScheduleDrivesSiemAndCredentialCache) {
  Simulator sim;
  MessageBus bus;
  SiemService siem(bus, [&sim]() { return sim.now(); });
  DirectoryService directory;
  ASSERT_TRUE(directory.add_host(HostRecord{Hostname{"h1"}, "d", false}).ok());

  const ActivityScript script{{clock_time(9), clock_time(11)},
                              {clock_time(14), clock_time(15)}};
  schedule_script(sim, siem, directory, Username{"u1"}, Hostname{"h1"}, script);

  sim.run_until(clock_time(10));
  EXPECT_TRUE(siem.is_logged_on(Username{"u1"}, Hostname{"h1"}));
  EXPECT_EQ(directory.cached_credentials(Hostname{"h1"}).size(), 1u);

  sim.run_until(clock_time(12));
  EXPECT_FALSE(siem.is_logged_on(Username{"u1"}, Hostname{"h1"}));
  // Credentials stay cached after log-off — that is the attack surface.
  EXPECT_EQ(directory.cached_credentials(Hostname{"h1"}).size(), 1u);

  sim.run_until(clock_time(14, 30));
  EXPECT_TRUE(siem.is_logged_on(Username{"u1"}, Hostname{"h1"}));
}

// ------------------------------------------------------------------- hosts

TEST(HostTcp, ConnectSucceedsAcrossDirectWire) {
  Simulator sim;
  auto arp = std::make_shared<ArpTable>();
  Host client(sim, Hostname{"c"}, MacAddress::from_u64(1), arp);
  Host server(sim, Hostname{"s"}, MacAddress::from_u64(2), arp);
  client.set_ip(Ipv4Address(10, 0, 0, 1));
  server.set_ip(Ipv4Address(10, 0, 0, 2));
  (*arp)[client.ip()] = client.mac();
  (*arp)[server.ip()] = server.mac();
  // Wire the two hosts back to back with 1 ms latency.
  client.set_transmit([&](const std::vector<std::uint8_t>& bytes) {
    sim.schedule_after(milliseconds(1.0), [&, bytes]() { server.receive(bytes); });
  });
  server.set_transmit([&](const std::vector<std::uint8_t>& bytes) {
    sim.schedule_after(milliseconds(1.0), [&, bytes]() { client.receive(bytes); });
  });
  server.open_port(445);

  ConnectResult outcome;
  client.connect(server.ip(), 445, [&](const ConnectResult& r) { outcome = r; });
  sim.run();
  EXPECT_TRUE(outcome.connected);
  EXPECT_FALSE(outcome.refused);
  EXPECT_EQ(outcome.time_to_first_byte, milliseconds(2.0));
  EXPECT_EQ(outcome.syn_transmissions, 1);
}

TEST(HostTcp, ClosedPortRefused) {
  Simulator sim;
  auto arp = std::make_shared<ArpTable>();
  Host client(sim, Hostname{"c"}, MacAddress::from_u64(1), arp);
  Host server(sim, Hostname{"s"}, MacAddress::from_u64(2), arp);
  client.set_ip(Ipv4Address(10, 0, 0, 1));
  server.set_ip(Ipv4Address(10, 0, 0, 2));
  (*arp)[client.ip()] = client.mac();
  (*arp)[server.ip()] = server.mac();
  client.set_transmit([&](const std::vector<std::uint8_t>& bytes) {
    server.receive(bytes);
  });
  server.set_transmit([&](const std::vector<std::uint8_t>& bytes) {
    client.receive(bytes);
  });

  ConnectResult outcome;
  client.connect(server.ip(), 22, [&](const ConnectResult& r) { outcome = r; });
  sim.run();
  EXPECT_FALSE(outcome.connected);
  EXPECT_TRUE(outcome.refused);
}

TEST(HostTcp, TimeoutWithRetransmissions) {
  Simulator sim;
  auto arp = std::make_shared<ArpTable>();
  Host client(sim, Hostname{"c"}, MacAddress::from_u64(1), arp);
  client.set_ip(Ipv4Address(10, 0, 0, 1));
  (*arp)[Ipv4Address(10, 0, 0, 2)] = MacAddress::from_u64(2);
  int packets_sent = 0;
  client.set_transmit([&](const std::vector<std::uint8_t>&) { ++packets_sent; });

  ConnectResult outcome;
  ConnectOptions options;
  options.timeout = seconds(1.0);
  options.rto = milliseconds(300);
  options.max_syn_retries = 2;
  client.connect(Ipv4Address(10, 0, 0, 2), 445,
                 [&](const ConnectResult& r) { outcome = r; }, options);
  sim.run();
  EXPECT_FALSE(outcome.connected);
  EXPECT_FALSE(outcome.refused);
  EXPECT_EQ(packets_sent, 3);  // initial + 2 retries within the deadline
}

TEST(HostTcp, UnresolvableDestinationFailsImmediately) {
  Simulator sim;
  auto arp = std::make_shared<ArpTable>();
  Host client(sim, Hostname{"c"}, MacAddress::from_u64(1), arp);
  bool called = false;
  client.connect(Ipv4Address(9, 9, 9, 9), 80, [&](const ConnectResult& r) {
    called = true;
    EXPECT_FALSE(r.connected);
  });
  EXPECT_TRUE(called);
}

// A direct-wired two-host fixture for ARP behaviours.
class ArpTest : public ::testing::Test {
 protected:
  ArpTest()
      : table_(std::make_shared<ArpTable>()),
        client_(sim_, Hostname{"c"}, MacAddress::from_u64(1), table_),
        server_(sim_, Hostname{"s"}, MacAddress::from_u64(2), table_) {
    client_.set_ip(Ipv4Address(10, 0, 0, 1));
    server_.set_ip(Ipv4Address(10, 0, 0, 2));
    client_.set_transmit([this](const std::vector<std::uint8_t>& bytes) {
      sim_.schedule_after(milliseconds(1.0), [this, bytes]() { server_.receive(bytes); });
    });
    server_.set_transmit([this](const std::vector<std::uint8_t>& bytes) {
      sim_.schedule_after(milliseconds(1.0), [this, bytes]() { client_.receive(bytes); });
    });
    server_.open_port(445);
  }

  Simulator sim_;
  std::shared_ptr<ArpTable> table_;
  Host client_;
  Host server_;
};

TEST_F(ArpTest, DynamicResolutionThenConnect) {
  client_.enable_arp();
  server_.enable_arp();
  // Note: the shared table is empty — resolution must go over the wire.
  ConnectResult outcome;
  client_.connect(server_.ip(), 445, [&](const ConnectResult& r) { outcome = r; });
  sim_.run();
  EXPECT_TRUE(outcome.connected);
  EXPECT_GE(client_.arp_cache_size(), 1u);   // learned server from the reply
  EXPECT_GE(server_.arp_cache_size(), 1u);   // gleaned client from the request
  // TTFB is SYN -> SYN-ACK (as the paper measures it); the preceding ARP
  // exchange is not part of it. Two one-way hops at 1 ms each.
  EXPECT_EQ(outcome.time_to_first_byte, milliseconds(2.0));
}

TEST_F(ArpTest, ResolutionFailureAfterRetries) {
  client_.enable_arp();
  // The server does not answer ARP (not enabled, and not in the table).
  ConnectResult outcome;
  bool done = false;
  client_.connect(Ipv4Address(10, 0, 0, 99), 445, [&](const ConnectResult& r) {
    outcome = r;
    done = true;
  });
  sim_.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(outcome.connected);
  // 3 requests at 500 ms spacing -> gave up by 1.5 s.
  EXPECT_GE(sim_.now().us, milliseconds(1500).us);
}

TEST_F(ArpTest, ConcurrentResolutionsShareOneExchange) {
  client_.enable_arp();
  server_.enable_arp();
  int connected = 0;
  std::uint64_t packets_before = client_.packets_sent();
  for (int i = 0; i < 3; ++i) {
    client_.connect(server_.ip(), 445, [&](const ConnectResult& r) {
      connected += r.connected ? 1 : 0;
    });
  }
  sim_.run();
  EXPECT_EQ(connected, 3);
  // One ARP request serves all three waiters: 1 ARP + 3 SYNs.
  EXPECT_EQ(client_.packets_sent() - packets_before, 4u);
}

TEST_F(ArpTest, StaticTableBypassesArp) {
  (*table_)[server_.ip()] = server_.mac();
  ConnectResult outcome;
  client_.connect(server_.ip(), 445, [&](const ConnectResult& r) { outcome = r; });
  sim_.run();
  EXPECT_TRUE(outcome.connected);
  EXPECT_EQ(client_.arp_cache_size(), 0u);  // no dynamic resolution needed
}

// ------------------------------------------------------------ enterprise

TEST(Enterprise, PaperTestbedShape) {
  EnterpriseConfig config;
  config.condition = PolicyCondition::kBaseline;
  EnterpriseTestbed testbed(config);

  // 86 end hosts + 6 servers = 92 endpoints; 14 switches.
  EXPECT_EQ(testbed.endpoints().size(), 92u);
  EXPECT_EQ(testbed.servers().size(), 6u);
  EXPECT_EQ(testbed.network().switches().size(), 14u);

  // 10 vulnerable end hosts (one per department enclave) + 6 servers.
  int vulnerable_hosts = 0, vulnerable_servers = 0;
  for (const auto& endpoint : testbed.endpoints()) {
    if (!testbed.is_vulnerable(endpoint)) continue;
    const HostRecord* record = testbed.directory().find_host(endpoint);
    ASSERT_NE(record, nullptr);
    (record->is_server ? vulnerable_servers : vulnerable_hosts)++;
  }
  EXPECT_EQ(vulnerable_hosts, 10);
  EXPECT_EQ(vulnerable_servers, 6);

  // Every end host has a unique primary user with a cached credential.
  int primary_users = 0;
  for (const auto& endpoint : testbed.endpoints()) {
    const auto user = testbed.primary_user(endpoint);
    if (user.has_value()) {
      ++primary_users;
      const auto creds = testbed.directory().cached_credentials(endpoint);
      EXPECT_FALSE(creds.empty());
    }
  }
  EXPECT_EQ(primary_users, 86);

  // Department enclave sizes: 9x9 + 1x5.
  EXPECT_EQ(testbed.directory().hosts_in_enclave("dept-1").size(), 9u);
  EXPECT_EQ(testbed.directory().hosts_in_enclave("dept-10").size(), 5u);
}

TEST(Enterprise, BaselineConnectivityEndToEnd) {
  EnterpriseConfig config;
  config.condition = PolicyCondition::kBaseline;
  EnterpriseTestbed testbed(config);

  // Cross-enclave connection succeeds with no access control.
  Host* source = testbed.host(Hostname{"host-d1-2"});
  Host* target = testbed.host(Hostname{"host-d2-3"});
  ASSERT_NE(source, nullptr);
  ASSERT_NE(target, nullptr);

  ConnectResult outcome;
  source->connect(target->ip(), 445, [&](const ConnectResult& r) { outcome = r; });
  testbed.sim().run_until(testbed.sim().now() + seconds(10.0));
  EXPECT_TRUE(outcome.connected);
}

TEST(Enterprise, ActivityScheduledForAllUsers) {
  EnterpriseConfig config;
  config.condition = PolicyCondition::kBaseline;
  EnterpriseTestbed testbed(config);
  testbed.schedule_all_activity();
  EXPECT_EQ(testbed.scripts().size(), 86u);

  // By 10:30 every script's guaranteed morning block has started... not
  // necessarily; but at least one user must be on by then, and by 11:00
  // the majority.
  testbed.sim().run_until(clock_time(11));
  int logged_on = 0;
  for (const auto& endpoint : testbed.endpoints()) {
    const auto user = testbed.primary_user(endpoint);
    if (user.has_value() && testbed.siem().is_logged_on(*user, endpoint)) ++logged_on;
  }
  EXPECT_GT(logged_on, 43);  // majority of 86
}

}  // namespace
}  // namespace dfi
