// Unit and property tests for the OpenFlow match subset.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "openflow/match.h"

namespace dfi {
namespace {

Packet sample_tcp() {
  return make_tcp_packet(MacAddress::from_u64(0xa1), MacAddress::from_u64(0xb2),
                         Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 49152, 445);
}

TEST(Match, WildcardMatchesEverything) {
  const Match match;
  EXPECT_TRUE(match.matches(sample_tcp(), PortNo{1}));
  Packet arp = make_arp_request(MacAddress::from_u64(1), Ipv4Address(1, 1, 1, 1),
                                Ipv4Address(2, 2, 2, 2));
  EXPECT_TRUE(match.matches(arp, PortNo{9}));
  EXPECT_TRUE(match.is_wildcard_all());
  EXPECT_EQ(match.specified_fields(), 0);
}

TEST(Match, InPortFiltering) {
  Match match;
  match.in_port = PortNo{3};
  EXPECT_TRUE(match.matches(sample_tcp(), PortNo{3}));
  EXPECT_FALSE(match.matches(sample_tcp(), PortNo{4}));
}

TEST(Match, EthernetFields) {
  Match match;
  match.eth_src = MacAddress::from_u64(0xa1);
  match.eth_dst = MacAddress::from_u64(0xb2);
  match.eth_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  EXPECT_TRUE(match.matches(sample_tcp(), PortNo{1}));
  match.eth_src = MacAddress::from_u64(0xff);
  EXPECT_FALSE(match.matches(sample_tcp(), PortNo{1}));
}

TEST(Match, IpPrerequisite) {
  // An IP-field match must not match non-IP packets (OpenFlow prereqs).
  Match match;
  match.ipv4_src = Ipv4Address(1, 1, 1, 1);
  const Packet arp = make_arp_request(MacAddress::from_u64(1), Ipv4Address(1, 1, 1, 1),
                                      Ipv4Address(2, 2, 2, 2));
  EXPECT_FALSE(match.matches(arp, PortNo{1}));
}

TEST(Match, TcpPortPrerequisite) {
  Match match;
  match.tcp_dst = 53;
  const Packet udp = make_udp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                                     Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2),
                                     1000, 53);
  EXPECT_FALSE(match.matches(udp, PortNo{1}));  // TCP match vs UDP packet
  Match udp_match;
  udp_match.udp_dst = 53;
  EXPECT_TRUE(udp_match.matches(udp, PortNo{1}));
}

TEST(Match, ExactFromPacketMatchesOnlyThatFlow) {
  const Packet packet = sample_tcp();
  const Match exact = Match::exact_from_packet(packet, PortNo{7});
  EXPECT_TRUE(exact.matches(packet, PortNo{7}));
  EXPECT_FALSE(exact.matches(packet, PortNo{8}));

  Packet other = sample_tcp();
  other.tcp->src_port = 49153;
  EXPECT_FALSE(exact.matches(other, PortNo{7}));
  EXPECT_EQ(exact.specified_fields(), 9);  // all TCP-flow identifiers
}

TEST(Match, ExactFromArpPacket) {
  const Packet arp = make_arp_request(MacAddress::from_u64(1), Ipv4Address(1, 1, 1, 1),
                                      Ipv4Address(2, 2, 2, 2));
  const Match exact = Match::exact_from_packet(arp, PortNo{2});
  EXPECT_TRUE(exact.matches(arp, PortNo{2}));
  EXPECT_FALSE(exact.ip_proto.has_value());
  EXPECT_EQ(exact.specified_fields(), 4);  // in_port + macs + ethertype
}

TEST(Match, CoversReflexiveAndWildcard) {
  const Packet packet = sample_tcp();
  const Match exact = Match::exact_from_packet(packet, PortNo{1});
  const Match wildcard;
  EXPECT_TRUE(wildcard.covers(exact));
  EXPECT_TRUE(wildcard.covers(wildcard));
  EXPECT_TRUE(exact.covers(exact));
  EXPECT_FALSE(exact.covers(wildcard));
}

TEST(Match, CoversPartialHierarchy) {
  Match ip_only;
  ip_only.ipv4_src = Ipv4Address(10, 0, 0, 1);
  Match ip_and_port = ip_only;
  ip_and_port.tcp_dst = 445;
  EXPECT_TRUE(ip_only.covers(ip_and_port));
  EXPECT_FALSE(ip_and_port.covers(ip_only));
  Match other_ip;
  other_ip.ipv4_src = Ipv4Address(10, 0, 0, 2);
  EXPECT_FALSE(ip_only.covers(other_ip));
}

TEST(Match, ToStringListsFields) {
  Match match;
  match.ipv4_dst = Ipv4Address(10, 0, 0, 2);
  match.tcp_dst = 445;
  const std::string text = match.to_string();
  EXPECT_NE(text.find("ipv4_dst=10.0.0.2"), std::string::npos);
  EXPECT_NE(text.find("tcp_dst=445"), std::string::npos);
  EXPECT_EQ(Match{}.to_string(), "*");
}

// Property: covers() is consistent with matches() — if A covers B, then any
// packet matching B's exact pattern also matches A.
class MatchCoverProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchCoverProperty, CoverImpliesMatchSubsumption) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const Packet packet = make_tcp_packet(
        MacAddress::from_u64(rng.uniform_int(1, 4)),
        MacAddress::from_u64(rng.uniform_int(1, 4)),
        Ipv4Address(static_cast<std::uint32_t>(rng.uniform_int(1, 4))),
        Ipv4Address(static_cast<std::uint32_t>(rng.uniform_int(1, 4))),
        static_cast<std::uint16_t>(rng.uniform_int(1, 3)),
        static_cast<std::uint16_t>(rng.uniform_int(1, 3)));
    const PortNo port{static_cast<std::uint32_t>(rng.uniform_int(1, 3))};
    Match narrow = Match::exact_from_packet(packet, port);
    // Widen a random subset of fields.
    Match wide = narrow;
    if (rng.chance(0.5)) wide.in_port.reset();
    if (rng.chance(0.5)) wide.eth_src.reset();
    if (rng.chance(0.5)) wide.eth_dst.reset();
    if (rng.chance(0.5)) wide.ipv4_src.reset();
    if (rng.chance(0.5)) wide.ipv4_dst.reset();
    if (rng.chance(0.5)) wide.tcp_src.reset();
    if (rng.chance(0.5)) wide.tcp_dst.reset();
    ASSERT_TRUE(wide.covers(narrow));
    ASSERT_TRUE(narrow.matches(packet, port));
    ASSERT_TRUE(wide.matches(packet, port));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchCoverProperty,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));

}  // namespace
}  // namespace dfi
