// Differential/property tests for the posting-list policy index: the
// indexed PolicyManager::query must be semantically equivalent to the
// retained linear-scan oracle query_linear over randomized rule sets and
// flows, including equal-priority Deny-wins and wildcard-only rules, and
// the index-driven insert-time conflict sweep must flush exactly the rules
// the brute-force overlap definition names (paper §III-B).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "bus/message_bus.h"
#include "core/policy_manager.h"

namespace dfi {
namespace {

// Small identifier pools: draws collide often enough that rules match
// flows, overlap each other, and tie on priority.
const std::vector<Username> kUsers = {Username{"alice"}, Username{"bob"},
                                      Username{"carol"}};
const std::vector<Hostname> kHosts = {Hostname{"h1"}, Hostname{"h2"},
                                      Hostname{"h3"}};
const std::vector<Ipv4Address> kIps = {
    Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), Ipv4Address(10, 0, 0, 3),
    Ipv4Address(10, 0, 0, 4)};
const std::vector<std::uint16_t> kPorts = {22, 80, 445};
const std::vector<std::uint16_t> kEtherTypes = {0x0800, 0x0806};
const std::vector<std::uint8_t> kProtos = {6, 17};

class RandomModel {
 public:
  explicit RandomModel(std::uint32_t seed) : rng_(seed) {}

  bool chance(double p) { return std::uniform_real_distribution<>(0, 1)(rng_) < p; }

  template <typename T>
  const T& pick(const std::vector<T>& pool) {
    return pool[std::uniform_int_distribution<std::size_t>(0, pool.size() - 1)(rng_)];
  }

  EndpointSpec random_spec() {
    EndpointSpec spec;
    if (chance(0.3)) spec.user = pick(kUsers);
    if (chance(0.3)) spec.host = pick(kHosts);
    if (chance(0.4)) spec.ip = pick(kIps);
    if (chance(0.3)) spec.l4_port = pick(kPorts);
    if (chance(0.2)) spec.mac = MacAddress::from_u64(1 + pick(kPorts) % 4);
    if (chance(0.15)) spec.dpid = Dpid{std::uint64_t{1} + pick(kPorts) % 2};
    return spec;
  }

  PolicyRule random_rule() {
    PolicyRule rule;
    rule.action = chance(0.5) ? PolicyAction::kAllow : PolicyAction::kDeny;
    if (chance(0.3)) rule.properties.ether_type = pick(kEtherTypes);
    if (chance(0.25)) rule.properties.ip_proto = pick(kProtos);
    // ~10% of rules stay fully wildcard on both endpoints (wildcard-list
    // coverage); the rest draw random specs, which may still come out
    // wildcard-only on the pivot fields (port-only rules).
    if (!chance(0.1)) {
      rule.source = random_spec();
      rule.destination = random_spec();
    }
    return rule;
  }

  EndpointView random_view() {
    EndpointView view;
    if (chance(0.9)) view.ip = pick(kIps);
    if (chance(0.9)) view.mac = MacAddress::from_u64(1 + pick(kPorts) % 4);
    if (chance(0.8)) view.l4_port = pick(kPorts);
    if (chance(0.3)) view.dpid = Dpid{std::uint64_t{1} + pick(kPorts) % 2};
    while (chance(0.4)) view.hostnames.push_back(pick(kHosts));
    while (chance(0.4)) view.usernames.push_back(pick(kUsers));
    return view;
  }

  FlowView random_flow() {
    FlowView flow;
    flow.ether_type = pick(kEtherTypes);
    if (chance(0.7)) flow.ip_proto = pick(kProtos);
    flow.src = random_view();
    flow.dst = random_view();
    return flow;
  }

  PdpPriority random_priority() {
    return PdpPriority{static_cast<std::uint32_t>(
        std::uniform_int_distribution<>(1, 4)(rng_) * 10)};
  }

 private:
  std::mt19937 rng_;
};

// The differential contract (mirrors tests/differential_test.cc): both
// implementations must agree on default-deny and action. The deciding rule
// id may differ among equally-ranked same-action rules.
void expect_equivalent(const PolicyManager& manager, const FlowView& flow) {
  const PolicyDecision indexed = manager.query(flow);
  const PolicyDecision linear = manager.query_linear(flow);
  ASSERT_EQ(indexed.default_deny, linear.default_deny)
      << "index and linear scan disagree on whether any rule matches";
  ASSERT_EQ(indexed.action, linear.action);
  if (indexed.default_deny || indexed.rule_id == linear.rule_id) return;
  const auto a = manager.find(indexed.rule_id);
  const auto b = manager.find(linear.rule_id);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->priority, b->priority);
  EXPECT_EQ(a->rule.action, b->rule.action);
  EXPECT_TRUE(a->rule.matches(flow));
  EXPECT_TRUE(b->rule.matches(flow));
}

class PolicyIndexDifferentialTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PolicyIndexDifferentialTest, IndexedQueryMatchesLinearScan) {
  MessageBus bus;
  PolicyManager manager(bus);
  RandomModel model(GetParam());
  for (int i = 0; i < 120; ++i) {
    manager.insert(model.random_rule(), model.random_priority(), "fuzz");
  }
  for (int i = 0; i < 300; ++i) {
    expect_equivalent(manager, model.random_flow());
  }
}

TEST_P(PolicyIndexDifferentialTest, EquivalenceHoldsAcrossInsertRevokeChurn) {
  MessageBus bus;
  PolicyManager manager(bus);
  RandomModel model(GetParam() ^ 0x5a5a5a5au);
  std::vector<PolicyRuleId> live;
  for (int round = 0; round < 200; ++round) {
    if (live.empty() || model.chance(0.6)) {
      live.push_back(manager.insert(model.random_rule(), model.random_priority(), "churn"));
    } else {
      std::swap(live[live.size() / 2], live.back());
      ASSERT_TRUE(manager.revoke(live.back()));
      live.pop_back();
    }
    expect_equivalent(manager, model.random_flow());
  }
  // Drain completely: the index must end empty and default-deny everything.
  for (const PolicyRuleId id : live) ASSERT_TRUE(manager.revoke(id));
  EXPECT_EQ(manager.size(), 0u);
  EXPECT_TRUE(manager.query(model.random_flow()).default_deny);
}

TEST_P(PolicyIndexDifferentialTest, ConflictFlushSetMatchesBruteForce) {
  MessageBus bus;
  RandomModel model(GetParam() ^ 0xc0ffee11u);
  std::vector<PolicyRuleId> flushes;
  PolicyManager manager(bus);
  const Subscription sub = bus.subscribe<FlushDirective>(
      topics::kRuleFlush,
      [&flushes](const FlushDirective& d) { flushes.push_back(d.policy); });

  for (int round = 0; round < 80; ++round) {
    const PolicyRule rule = model.random_rule();
    const PdpPriority priority = model.random_priority();
    // Brute-force reference: strictly lower priority, opposite action,
    // field-wise overlap (paper §III-B consistency conditions).
    std::vector<PolicyRuleId> expected;
    for (const StoredPolicyRule& stored : manager.rules()) {
      if (stored.priority < priority && stored.rule.action != rule.action &&
          stored.rule.overlaps(rule)) {
        expected.push_back(stored.id);
      }
    }
    flushes.clear();
    manager.insert(rule, priority, "sweep");
    std::vector<PolicyRuleId> actual;
    for (const PolicyRuleId id : flushes) {
      if (id.value != kDefaultDenyCookie.value) actual.push_back(id);
    }
    auto by_value = [](PolicyRuleId a, PolicyRuleId b) { return a.value < b.value; };
    std::sort(expected.begin(), expected.end(), by_value);
    std::sort(actual.begin(), actual.end(), by_value);
    ASSERT_EQ(actual, expected) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolicyIndexDifferentialTest,
                         ::testing::Range(0u, 6u));

// ------------------------------------------------- deterministic corners

FlowView flow_for_user(const char* user) {
  FlowView flow;
  flow.ether_type = 0x0800;
  flow.src.ip = Ipv4Address(10, 0, 0, 1);
  flow.src.usernames = {Username{user}};
  flow.dst.ip = Ipv4Address(10, 0, 0, 2);
  return flow;
}

TEST(PolicyIndexTest, EqualPriorityDenyWinsWithinPostingList) {
  MessageBus bus;
  PolicyManager manager(bus);
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  allow.source.user = Username{"alice"};
  PolicyRule deny = allow;
  deny.action = PolicyAction::kDeny;
  manager.insert(allow, PdpPriority{10}, "a");
  manager.insert(deny, PdpPriority{10}, "b");
  EXPECT_EQ(manager.query(flow_for_user("alice")).action, PolicyAction::kDeny);
  EXPECT_EQ(manager.query_linear(flow_for_user("alice")).action, PolicyAction::kDeny);
}

TEST(PolicyIndexTest, EqualPriorityDenyWinsAcrossWildcardAndPostingList) {
  // The Allow names a pivot field (posting list); the Deny is wildcard-only
  // (wildcard list). Equal priority: Deny must still win, which requires
  // the bucket walk to consider both lists before deciding.
  MessageBus bus;
  PolicyManager manager(bus);
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  allow.source.user = Username{"alice"};
  PolicyRule deny;  // fully wildcard
  deny.action = PolicyAction::kDeny;
  manager.insert(allow, PdpPriority{10}, "a");
  manager.insert(deny, PdpPriority{10}, "b");
  EXPECT_EQ(manager.query(flow_for_user("alice")).action, PolicyAction::kDeny);
}

TEST(PolicyIndexTest, WildcardOnlyRuleMatchesViaWildcardList) {
  MessageBus bus;
  PolicyManager manager(bus);
  PolicyRule port_only;  // no pivot field concrete: lives on the wildcard list
  port_only.action = PolicyAction::kAllow;
  port_only.destination.l4_port = 445;
  const PolicyRuleId id = manager.insert(port_only, PdpPriority{10}, "t");
  FlowView flow = flow_for_user("alice");
  flow.dst.l4_port = 445;
  const PolicyDecision decision = manager.query(flow);
  EXPECT_EQ(decision.action, PolicyAction::kAllow);
  EXPECT_EQ(decision.rule_id, id);
}

TEST(PolicyIndexTest, HigherPriorityBucketDecidesBeforeLowerIsVisited) {
  MessageBus bus;
  PolicyManager manager(bus);
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  allow.source.user = Username{"alice"};
  PolicyRule deny = allow;
  deny.action = PolicyAction::kDeny;
  const PolicyRuleId high = manager.insert(allow, PdpPriority{30}, "high");
  manager.insert(deny, PdpPriority{10}, "low");
  const PolicyDecision decision = manager.query(flow_for_user("alice"));
  EXPECT_EQ(decision.action, PolicyAction::kAllow);
  EXPECT_EQ(decision.rule_id, high);
}

TEST(PolicyIndexTest, PolicyEpochBumpsOnInsertAndRevokeOnly) {
  MessageBus bus;
  PolicyManager manager(bus);
  const std::uint64_t e0 = manager.epoch();
  const PolicyRuleId id = manager.insert(PolicyRule{}, PdpPriority{10}, "t");
  EXPECT_GT(manager.epoch(), e0);
  const std::uint64_t e1 = manager.epoch();
  manager.query(flow_for_user("alice"));  // queries never bump
  EXPECT_EQ(manager.epoch(), e1);
  EXPECT_TRUE(manager.revoke(id));
  EXPECT_GT(manager.epoch(), e1);
  const std::uint64_t e2 = manager.epoch();
  EXPECT_FALSE(manager.revoke(id));  // failed revoke: no state change
  EXPECT_EQ(manager.epoch(), e2);
}

}  // namespace
}  // namespace dfi
