// Port status / port statistics tests across the stack: wire codec,
// switch behaviour, proxy passthrough, and controller unlearning.
#include <gtest/gtest.h>

#include "bus/message_bus.h"
#include "controller/learning_controller.h"
#include "core/proxy.h"
#include "openflow/switch_device.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

TEST(PortStatusWire, RoundTrip) {
  PortStatusMsg status;
  status.reason = PortStatusReason::kModify;
  status.desc.port_no = PortNo{7};
  status.desc.hw_addr = MacAddress::from_u64(0x02000000aaull);
  status.desc.name = "uplink";
  status.desc.state = kPortStateLinkDown;

  const auto bytes = encode(OfMessage{3, status});
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  const auto& out = std::get<PortStatusMsg>(decoded.value().payload);
  EXPECT_EQ(out.reason, PortStatusReason::kModify);
  EXPECT_EQ(out.desc.port_no, PortNo{7});
  EXPECT_EQ(out.desc.hw_addr, status.desc.hw_addr);
  EXPECT_EQ(out.desc.name, "uplink");
  EXPECT_TRUE(out.desc.link_down());
  EXPECT_EQ(encode(decoded.value()), bytes);
}

TEST(PortStatusWire, PortStatsRoundTrip) {
  MultipartRequestMsg request;
  request.stats_type = kStatsTypePort;
  request.port_no = PortNo{2};
  const auto request_decoded = decode(encode(OfMessage{4, request}));
  ASSERT_TRUE(request_decoded.ok());
  EXPECT_EQ(std::get<MultipartRequestMsg>(request_decoded.value().payload).port_no,
            PortNo{2});

  MultipartReplyMsg reply;
  reply.stats_type = kStatsTypePort;
  PortStatsEntry entry;
  entry.port_no = PortNo{2};
  entry.rx_packets = 100;
  entry.tx_packets = 200;
  entry.rx_bytes = 6400;
  entry.tx_bytes = 12800;
  entry.tx_dropped = 5;
  entry.duration_sec = 42;
  reply.port_stats.push_back(entry);
  const auto reply_decoded = decode(encode(OfMessage{5, reply}));
  ASSERT_TRUE(reply_decoded.ok()) << reply_decoded.error().message;
  const auto& out = std::get<MultipartReplyMsg>(reply_decoded.value().payload);
  ASSERT_EQ(out.port_stats.size(), 1u);
  EXPECT_EQ(out.port_stats[0].rx_packets, 100u);
  EXPECT_EQ(out.port_stats[0].tx_dropped, 5u);
  EXPECT_EQ(out.port_stats[0].duration_sec, 42u);
}

class PortSwitchTest : public ::testing::Test {
 protected:
  PortSwitchTest()
      : device_(SwitchConfig{Dpid{1}, 4, 1024}, [this]() { return sim_.now(); }) {
    device_.add_port(PortNo{1},
                     [this](PortNo, const std::vector<std::uint8_t>&) { ++out1_; });
    device_.add_port(PortNo{2},
                     [this](PortNo, const std::vector<std::uint8_t>&) { ++out2_; },
                     "access2");
    device_.connect_control([this](const std::vector<std::uint8_t>& bytes) {
      FrameDecoder decoder;
      decoder.feed(bytes);
      for (auto& result : decoder.drain()) {
        ASSERT_TRUE(result.ok());
        control_.push_back(std::move(result).value());
      }
    });
    // Wildcard forward-to-port-2 rule.
    FlowModMsg mod;
    mod.command = FlowModCommand::kAdd;
    mod.instructions = Instructions::output(PortNo{2});
    device_.receive_control(encode(OfMessage{1, mod}));
  }

  Packet sample() const {
    return make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                           Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1, 2);
  }

  Simulator sim_;
  SwitchDevice device_;
  int out1_ = 0;
  int out2_ = 0;
  std::vector<OfMessage> control_;
};

TEST_F(PortSwitchTest, CountersTrackTraffic) {
  device_.receive_packet(PortNo{1}, sample().serialize());
  const PortStatsEntry in_stats = device_.port_stats(PortNo{1});
  const PortStatsEntry out_stats = device_.port_stats(PortNo{2});
  EXPECT_EQ(in_stats.rx_packets, 1u);
  EXPECT_GT(in_stats.rx_bytes, 0u);
  EXPECT_EQ(out_stats.tx_packets, 1u);
  EXPECT_EQ(out2_, 1);
}

TEST_F(PortSwitchTest, DownPortDropsEgressAndRaisesStatus) {
  device_.set_port_down(PortNo{2}, true);
  // PORT_STATUS raised to the control plane.
  bool saw_status = false;
  for (const auto& message : control_) {
    if (const auto* status = std::get_if<PortStatusMsg>(&message.payload)) {
      saw_status = true;
      EXPECT_EQ(status->desc.port_no, PortNo{2});
      EXPECT_TRUE(status->desc.link_down());
      EXPECT_EQ(status->desc.name, "access2");
    }
  }
  EXPECT_TRUE(saw_status);

  device_.receive_packet(PortNo{1}, sample().serialize());
  EXPECT_EQ(out2_, 0);  // egress dropped
  EXPECT_EQ(device_.port_stats(PortNo{2}).tx_dropped, 1u);

  // Ingress on a down port is ignored entirely.
  device_.receive_packet(PortNo{2}, sample().serialize());
  EXPECT_EQ(device_.port_stats(PortNo{2}).rx_packets, 0u);
  EXPECT_EQ(device_.port_stats(PortNo{2}).rx_dropped, 1u);

  // Bring it back: traffic flows again, and only state *changes* notify.
  const std::size_t messages_before = control_.size();
  device_.set_port_down(PortNo{2}, false);
  device_.set_port_down(PortNo{2}, false);  // no-op, no second status
  EXPECT_EQ(control_.size(), messages_before + 1);
  device_.receive_packet(PortNo{1}, sample().serialize());
  EXPECT_EQ(out2_, 1);
}

TEST_F(PortSwitchTest, PortStatsMultipartReply) {
  device_.receive_packet(PortNo{1}, sample().serialize());
  MultipartRequestMsg request;
  request.stats_type = kStatsTypePort;
  request.port_no = kPortAny;
  device_.receive_control(encode(OfMessage{9, request}));

  const MultipartReplyMsg* reply = nullptr;
  for (const auto& message : control_) {
    if (const auto* r = std::get_if<MultipartReplyMsg>(&message.payload)) reply = r;
  }
  ASSERT_NE(reply, nullptr);
  ASSERT_EQ(reply->port_stats.size(), 2u);

  // Single-port query.
  control_.clear();
  request.port_no = PortNo{2};
  device_.receive_control(encode(OfMessage{10, request}));
  for (const auto& message : control_) {
    if (const auto* r = std::get_if<MultipartReplyMsg>(&message.payload)) {
      ASSERT_EQ(r->port_stats.size(), 1u);
      EXPECT_EQ(r->port_stats[0].port_no, PortNo{2});
    }
  }
}

TEST(PortStatusController, UnlearnsMacsOnLinkDown) {
  Simulator sim;
  ControllerConfig config;
  config.zero_latency = true;
  config.exact_match_rules = false;
  LearningController controller(sim, config, Rng(1));
  std::vector<OfMessage> sent;
  auto& session = controller.accept_connection([&](const std::vector<std::uint8_t>& bytes) {
    FrameDecoder decoder;
    decoder.feed(bytes);
    for (auto& result : decoder.drain()) sent.push_back(std::move(result).value());
  });
  session.receive(encode(OfMessage{1, HelloMsg{}}));
  FeaturesReplyMsg features;
  features.datapath_id = Dpid{5};
  session.receive(encode(OfMessage{2, features}));

  const auto packet_in = [](MacAddress src, MacAddress dst, PortNo port) {
    PacketInMsg msg;
    msg.in_port = port;
    msg.data = make_tcp_packet(src, dst, Ipv4Address(1, 1, 1, 1),
                               Ipv4Address(2, 2, 2, 2), 1, 2)
                   .serialize();
    return msg;
  };
  // Learn MAC 1 at port 1, then fail port 1.
  session.receive(encode(OfMessage{3, packet_in(MacAddress::from_u64(1),
                                                MacAddress::from_u64(2), PortNo{1})}));
  sim.run();
  PortStatusMsg status;
  status.desc.port_no = PortNo{1};
  status.desc.state = kPortStateLinkDown;
  session.receive(encode(OfMessage{4, status}));
  EXPECT_EQ(controller.stats().port_status_received, 1u);

  // Traffic to MAC 1 floods again instead of using the dead port.
  const std::uint64_t floods_before = controller.stats().floods;
  session.receive(encode(OfMessage{5, packet_in(MacAddress::from_u64(2),
                                                MacAddress::from_u64(1), PortNo{2})}));
  sim.run();
  EXPECT_EQ(controller.stats().floods, floods_before + 1);
}

TEST(PortStatusProxy, PassthroughBothWays) {
  Simulator sim;
  MessageBus bus;
  EntityResolutionManager erm(bus);
  PolicyManager manager(bus);
  PcpConfig pcp_config;
  pcp_config.zero_latency = true;
  PolicyCompilationPoint pcp(sim, bus, erm, manager, pcp_config, Rng(1));
  DfiProxy proxy(sim, pcp, ProxyConfig{0, 0, true}, Rng(2));

  std::vector<OfMessage> to_switch, to_controller;
  const auto collect = [](std::vector<OfMessage>& sink) {
    return [&sink](const std::vector<std::uint8_t>& bytes) {
      FrameDecoder decoder;
      decoder.feed(bytes);
      for (auto& result : decoder.drain()) {
        ASSERT_TRUE(result.ok());
        sink.push_back(std::move(result).value());
      }
    };
  };
  DfiProxy::Session& session =
      proxy.create_session(collect(to_switch), collect(to_controller));

  // PORT_STATUS switch -> controller passes unchanged.
  PortStatusMsg status;
  status.desc.port_no = PortNo{4};
  status.desc.state = kPortStateLinkDown;
  session.from_switch(encode(OfMessage{1, status}));
  sim.run();
  ASSERT_EQ(to_controller.size(), 1u);
  EXPECT_EQ(std::get<PortStatusMsg>(to_controller[0].payload).desc.port_no, PortNo{4});

  // Port-stats request controller -> switch passes without table shifting.
  MultipartRequestMsg request;
  request.stats_type = kStatsTypePort;
  request.port_no = PortNo{4};
  session.from_controller(encode(OfMessage{2, request}));
  sim.run();
  ASSERT_EQ(to_switch.size(), 1u);
  EXPECT_EQ(std::get<MultipartRequestMsg>(to_switch[0].payload).port_no, PortNo{4});

  // Port-stats reply switch -> controller keeps its entries.
  MultipartReplyMsg reply;
  reply.stats_type = kStatsTypePort;
  PortStatsEntry entry;
  entry.port_no = PortNo{4};
  entry.rx_packets = 9;
  reply.port_stats.push_back(entry);
  session.from_switch(encode(OfMessage{3, reply}));
  sim.run();
  ASSERT_EQ(to_controller.size(), 2u);
  const auto& forwarded = std::get<MultipartReplyMsg>(to_controller[1].payload);
  ASSERT_EQ(forwarded.port_stats.size(), 1u);
  EXPECT_EQ(forwarded.port_stats[0].rx_packets, 9u);
}

}  // namespace
}  // namespace dfi
