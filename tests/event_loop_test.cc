// EventLoop reactor tests (DESIGN.md §9): fd readiness dispatch under both
// backends (edge-triggered epoll and the level-triggered poll fallback),
// the hashed timer wheel, and the cross-thread post()/wakeup path.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/asyncio/event_loop.h"
#include "net/asyncio/socket_ops.h"

namespace dfi::net {
namespace {

EventLoopConfig config_for(EventLoopConfig::Backend backend) {
  EventLoopConfig config;
  config.backend = backend;
  return config;
}

struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
  Pipe() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::pipe(fds), 0);
    read_fd = fds[0];
    write_fd = fds[1];
    make_nonblocking(read_fd);
    make_nonblocking(write_fd);
  }
  ~Pipe() {
    if (read_fd >= 0) ::close(read_fd);
    if (write_fd >= 0) ::close(write_fd);
  }
};

// Pump until `cond` holds or ~2s of wall clock elapse.
template <typename Cond>
bool pump_until(EventLoop& loop, Cond cond, int slice_ms = 5) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    loop.run_once(slice_ms);
  }
  return true;
}

class EventLoopBackendTest
    : public ::testing::TestWithParam<EventLoopConfig::Backend> {};

TEST_P(EventLoopBackendTest, DispatchesReadableFd) {
  EventLoop loop(config_for(GetParam()));
  Pipe pipe;
  std::string received;
  ASSERT_TRUE(loop.add_fd(pipe.read_fd, /*want_read=*/true, /*want_write=*/false,
                          [&](bool readable, bool, bool) {
                            if (!readable) return;
                            char buf[64];
                            ssize_t n;
                            // Loop to EAGAIN: required under edge triggering.
                            while ((n = ::read(pipe.read_fd, buf, sizeof buf)) > 0) {
                              received.append(buf, static_cast<std::size_t>(n));
                            }
                          }));
  ASSERT_EQ(::write(pipe.write_fd, "hello", 5), 5);
  EXPECT_TRUE(pump_until(loop, [&] { return received == "hello"; }));

  // Edge re-arm: a second burst after the first drain must also dispatch.
  ASSERT_EQ(::write(pipe.write_fd, "again", 5), 5);
  EXPECT_TRUE(pump_until(loop, [&] { return received == "helloagain"; }));
  loop.remove_fd(pipe.read_fd);
  EXPECT_EQ(loop.fd_count(), 0u);
}

TEST_P(EventLoopBackendTest, SetInterestTogglesWritability) {
  EventLoop loop(config_for(GetParam()));
  Pipe pipe;
  int write_events = 0;
  ASSERT_TRUE(loop.add_fd(pipe.write_fd, /*want_read=*/false,
                          /*want_write=*/false,
                          [&](bool, bool writable, bool) {
                            if (writable) ++write_events;
                          }));
  // No write interest: an empty pipe must not spin writability events.
  for (int i = 0; i < 5; ++i) loop.run_once(1);
  EXPECT_EQ(write_events, 0);

  ASSERT_TRUE(loop.set_interest(pipe.write_fd, false, true));
  EXPECT_TRUE(pump_until(loop, [&] { return write_events > 0; }));
  loop.remove_fd(pipe.write_fd);
}

TEST_P(EventLoopBackendTest, RemoveFdDuringDispatchIsSafe) {
  // A handler that removes its own fd (the close path) must not leave a
  // dangling dispatch for the same poll round.
  EventLoop loop(config_for(GetParam()));
  Pipe a;
  Pipe b;
  int a_events = 0;
  int b_events = 0;
  ASSERT_TRUE(loop.add_fd(a.read_fd, true, false, [&](bool, bool, bool) {
    ++a_events;
    char buf[16];
    while (::read(a.read_fd, buf, sizeof buf) > 0) {
    }
    // Remove the *other* fd mid-dispatch: any event queued for it in this
    // same batch must be dropped via the generation check, not delivered to
    // a dead entry (delivery order within a batch is backend-defined, so b
    // may legally have fired once already — but never after removal).
    loop.remove_fd(b.read_fd);
  }));
  ASSERT_TRUE(loop.add_fd(b.read_fd, true, false, [&](bool, bool, bool) {
    ++b_events;
    char buf[16];
    while (::read(b.read_fd, buf, sizeof buf) > 0) {
    }
  }));
  ASSERT_EQ(::write(a.write_fd, "x", 1), 1);
  ASSERT_EQ(::write(b.write_fd, "x", 1), 1);
  EXPECT_TRUE(pump_until(loop, [&] { return a_events > 0; }));
  const int b_events_at_removal = b_events;
  EXPECT_LE(b_events_at_removal, 1);
  ASSERT_EQ(::write(b.write_fd, "x", 1), 1);  // readiness after removal
  for (int i = 0; i < 5; ++i) loop.run_once(1);
  EXPECT_EQ(b_events, b_events_at_removal);
  EXPECT_EQ(loop.fd_count(), 1u);
  loop.remove_fd(a.read_fd);
}

TEST_P(EventLoopBackendTest, TimerWheelFiresInDeadlineOrder) {
  EventLoop loop(config_for(GetParam()));
  std::vector<int> fired;
  loop.schedule_after_ms(30, [&] { fired.push_back(3); });
  loop.schedule_after_ms(1, [&] { fired.push_back(1); });
  loop.schedule_after_ms(10, [&] { fired.push_back(2); });
  EXPECT_EQ(loop.timer_count(), 3u);
  EXPECT_TRUE(pump_until(loop, [&] { return fired.size() == 3u; }));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.timer_count(), 0u);
  EXPECT_GE(loop.stats().timers_fired, 3u);
}

TEST_P(EventLoopBackendTest, CancelTimerPreventsFire) {
  EventLoop loop(config_for(GetParam()));
  bool fired = false;
  const auto id = loop.schedule_after_ms(1, [&] { fired = true; });
  loop.cancel_timer(id);
  EXPECT_EQ(loop.timer_count(), 0u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(30);
  while (std::chrono::steady_clock::now() < deadline) loop.run_once(5);
  EXPECT_FALSE(fired);
  loop.cancel_timer(id);  // cancelling twice is a no-op
}

TEST_P(EventLoopBackendTest, WheelHandlesCollidingSlots) {
  // Deadlines 256 ms apart hash to the same wheel slot; both must fire at
  // their own deadline, not together.
  EventLoop loop(config_for(GetParam()));
  std::vector<std::uint64_t> fire_times;
  const std::uint64_t start = loop.now_ms();
  loop.schedule_after_ms(2, [&] { fire_times.push_back(loop.now_ms() - start); });
  loop.schedule_after_ms(2 + 256, [&] { fire_times.push_back(loop.now_ms() - start); });
  EXPECT_TRUE(pump_until(loop, [&] { return fire_times.size() == 1u; }));
  // The far timer (same slot) must still be pending.
  EXPECT_EQ(loop.timer_count(), 1u);
  EXPECT_LT(fire_times[0], 200u);
  loop.cancel_timer(0);  // unknown id: no-op
}

TEST_P(EventLoopBackendTest, DeadlineBeyondWheelHorizonDoesNotFireEarly) {
  // A deadline further out than the 256-slot horizon wraps onto a slot
  // that comes due many rotations earlier; the wheel must compare absolute
  // deadlines, not slot membership.
  EventLoop loop(config_for(GetParam()));
  const std::uint64_t start = loop.now_ms();
  bool near_fired = false;
  bool far_fired = false;
  std::uint64_t far_fire_at = 0;
  loop.schedule_after_ms(5, [&] { near_fired = true; });
  loop.schedule_after_ms(300, [&] {
    far_fired = true;
    far_fire_at = loop.now_ms() - start;
  });
  EXPECT_TRUE(pump_until(loop, [&] { return near_fired; }));
  // The far timer survived the rotation that fired the near one.
  EXPECT_FALSE(far_fired);
  EXPECT_EQ(loop.timer_count(), 1u);
  EXPECT_TRUE(pump_until(loop, [&] { return far_fired; }));
  EXPECT_GE(far_fire_at, 300u);
  EXPECT_EQ(loop.timer_count(), 0u);
}

TEST_P(EventLoopBackendTest, CancelTimerFromInsideFiringCallback) {
  // Cancelling a pending timer from within another timer's callback must
  // take effect (and cancelling yourself mid-fire must be a safe no-op).
  EventLoop loop(config_for(GetParam()));
  bool victim_fired = false;
  bool canceller_fired = false;
  EventLoop::TimerId victim = 0;
  EventLoop::TimerId canceller = 0;
  victim = loop.schedule_after_ms(60, [&] { victim_fired = true; });
  canceller = loop.schedule_after_ms(1, [&] {
    canceller_fired = true;
    loop.cancel_timer(victim);     // not yet due: must never fire
    loop.cancel_timer(canceller);  // self, already extracted: safe no-op
  });
  EXPECT_TRUE(pump_until(loop, [&] { return canceller_fired; }));
  EXPECT_EQ(loop.timer_count(), 0u);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(120);
  while (std::chrono::steady_clock::now() < deadline) loop.run_once(5);
  EXPECT_FALSE(victim_fired);
}

TEST_P(EventLoopBackendTest, ManyTimersInOneSlotAllFire) {
  // Pile deadlines that hash to one wheel slot (multiples of 256 ms apart
  // plus a shared base) alongside a burst at the same near deadline: every
  // one must fire exactly once, in deadline order for distinct deadlines.
  EventLoop loop(config_for(GetParam()));
  int same_deadline_fires = 0;
  for (int i = 0; i < 32; ++i) {
    loop.schedule_after_ms(2, [&] { ++same_deadline_fires; });
  }
  std::vector<int> order;
  loop.schedule_after_ms(2 + 256, [&] { order.push_back(1); });
  loop.schedule_after_ms(2 + 512, [&] { order.push_back(2); });
  EXPECT_EQ(loop.timer_count(), 34u);
  EXPECT_TRUE(pump_until(loop, [&] { return same_deadline_fires == 32; }));
  EXPECT_TRUE(order.empty());  // far colliders still pending
  EXPECT_EQ(loop.timer_count(), 2u);
  EXPECT_TRUE(pump_until(loop, [&] { return order.size() == 2u; }));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(same_deadline_fires, 32);
  EXPECT_EQ(loop.timer_count(), 0u);
}

TEST_P(EventLoopBackendTest, PostFromAnotherThreadWakesBlockedLoop) {
  EventLoop loop(config_for(GetParam()));
  std::atomic<bool> ran{false};
  std::thread poster([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.post([&] { ran.store(true); });
  });
  // Block with no timeout: only the cross-thread wakeup can unblock this.
  const auto start = std::chrono::steady_clock::now();
  while (!ran.load() &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(2)) {
    loop.run_once(-1);
  }
  poster.join();
  EXPECT_TRUE(ran.load());
  EXPECT_GE(loop.stats().tasks_posted, 1u);
}

TEST_P(EventLoopBackendTest, StopFromAnotherThreadUnblocksRun) {
  EventLoop loop(config_for(GetParam()));
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.stop();
  });
  loop.run();  // must return once stop() lands
  stopper.join();
  SUCCEED();
}

TEST_P(EventLoopBackendTest, PostedTaskMayPostAgain) {
  EventLoop loop(config_for(GetParam()));
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) loop.post(chain);
  };
  loop.post(chain);
  EXPECT_TRUE(pump_until(loop, [&] { return depth == 5; }));
}

INSTANTIATE_TEST_SUITE_P(Backends, EventLoopBackendTest,
                         ::testing::Values(EventLoopConfig::Backend::kEpoll,
                                           EventLoopConfig::Backend::kPoll),
                         [](const auto& info) {
                           return info.param == EventLoopConfig::Backend::kEpoll
                                      ? "epoll"
                                      : "poll";
                         });

}  // namespace
}  // namespace dfi::net
