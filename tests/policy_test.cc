// Unit tests for the policy model: endpoint specs, rule matching, overlap.
#include <gtest/gtest.h>

#include "core/policy.h"
#include "net/packet.h"

namespace dfi {
namespace {

FlowView tcp_flow_between(const char* src_user, const char* dst_user) {
  FlowView flow;
  flow.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  flow.ip_proto = static_cast<std::uint8_t>(IpProto::kTcp);
  flow.src.ip = Ipv4Address(10, 0, 0, 1);
  flow.src.mac = MacAddress::from_u64(1);
  flow.src.l4_port = 50000;
  flow.src.hostnames = {Hostname{"src-host"}};
  if (src_user != nullptr) flow.src.usernames = {Username{src_user}};
  flow.dst.ip = Ipv4Address(10, 0, 0, 2);
  flow.dst.mac = MacAddress::from_u64(2);
  flow.dst.l4_port = 445;
  flow.dst.hostnames = {Hostname{"dst-host"}};
  if (dst_user != nullptr) flow.dst.usernames = {Username{dst_user}};
  return flow;
}

TEST(PolicyRule, WildcardRuleMatchesAnything) {
  PolicyRule rule;
  rule.action = PolicyAction::kAllow;
  EXPECT_TRUE(rule.matches(tcp_flow_between("alice", "bob")));
  EXPECT_TRUE(rule.matches(tcp_flow_between(nullptr, nullptr)));
}

TEST(PolicyRule, AlicesMachinesToBobsMachines) {
  // The paper's example: (Allow, (*, *), (Alice, *...), (Bob, *...)).
  PolicyRule rule;
  rule.action = PolicyAction::kAllow;
  rule.source.user = Username{"alice"};
  rule.destination.user = Username{"bob"};

  EXPECT_TRUE(rule.matches(tcp_flow_between("alice", "bob")));
  EXPECT_FALSE(rule.matches(tcp_flow_between("alice", "carol")));
  EXPECT_FALSE(rule.matches(tcp_flow_between("carol", "bob")));
  // Alice logged off: no username enrichment -> rule cannot match.
  EXPECT_FALSE(rule.matches(tcp_flow_between(nullptr, "bob")));
}

TEST(PolicyRule, MatchesAnyOfMultipleBoundUsers) {
  PolicyRule rule;
  rule.source.user = Username{"alice"};
  FlowView flow = tcp_flow_between("bob", nullptr);
  flow.src.usernames.push_back(Username{"alice"});  // shared machine
  EXPECT_TRUE(rule.matches(flow));
}

TEST(PolicyRule, HostnameMatching) {
  PolicyRule rule;
  rule.source.host = Hostname{"src-host"};
  rule.destination.host = Hostname{"other"};
  EXPECT_FALSE(rule.matches(tcp_flow_between("a", "b")));
  rule.destination.host = Hostname{"dst-host"};
  EXPECT_TRUE(rule.matches(tcp_flow_between("a", "b")));
}

TEST(PolicyRule, LowLevelFieldMatching) {
  PolicyRule rule;
  rule.source.ip = Ipv4Address(10, 0, 0, 1);
  rule.destination.l4_port = 445;
  rule.destination.mac = MacAddress::from_u64(2);
  EXPECT_TRUE(rule.matches(tcp_flow_between("a", "b")));
  rule.destination.l4_port = 22;
  EXPECT_FALSE(rule.matches(tcp_flow_between("a", "b")));
}

TEST(PolicyRule, FlowPropertiesFilter) {
  PolicyRule rule;
  rule.properties.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  rule.properties.ip_proto = static_cast<std::uint8_t>(IpProto::kTcp);
  EXPECT_TRUE(rule.matches(tcp_flow_between("a", "b")));

  FlowView arp_flow;
  arp_flow.ether_type = static_cast<std::uint16_t>(EtherType::kArp);
  EXPECT_FALSE(rule.matches(arp_flow));

  FlowView udp_flow = tcp_flow_between("a", "b");
  udp_flow.ip_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  EXPECT_FALSE(rule.matches(udp_flow));
}

TEST(PolicyRule, ConcretePortFieldCannotMatchPortlessFlow) {
  PolicyRule rule;
  rule.destination.l4_port = 445;
  FlowView flow = tcp_flow_between("a", "b");
  flow.dst.l4_port.reset();  // e.g. ICMP
  EXPECT_FALSE(rule.matches(flow));
}

TEST(PolicyRule, SwitchLevelFields) {
  PolicyRule rule;
  rule.source.dpid = Dpid{3};
  rule.source.switch_port = PortNo{9};
  FlowView flow = tcp_flow_between("a", "b");
  flow.src.dpid = Dpid{3};
  flow.src.switch_port = PortNo{9};
  EXPECT_TRUE(rule.matches(flow));
  flow.src.switch_port = PortNo{2};
  EXPECT_FALSE(rule.matches(flow));
}

TEST(PolicyRule, OverlapWildcardsAlwaysOverlap) {
  PolicyRule a, b;
  a.action = PolicyAction::kAllow;
  b.action = PolicyAction::kDeny;
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
}

TEST(PolicyRule, OverlapConcreteFields) {
  PolicyRule alice_out, bob_out;
  alice_out.source.user = Username{"alice"};
  bob_out.source.user = Username{"bob"};
  EXPECT_FALSE(alice_out.overlaps(bob_out));

  PolicyRule anyone_to_445;
  anyone_to_445.destination.l4_port = 445;
  EXPECT_TRUE(alice_out.overlaps(anyone_to_445));  // alice to 445 fits both
}

TEST(PolicyRule, OverlapOnProperties) {
  PolicyRule tcp_rule, udp_rule;
  tcp_rule.properties.ip_proto = static_cast<std::uint8_t>(IpProto::kTcp);
  udp_rule.properties.ip_proto = static_cast<std::uint8_t>(IpProto::kUdp);
  EXPECT_FALSE(tcp_rule.overlaps(udp_rule));
  PolicyRule any;
  EXPECT_TRUE(tcp_rule.overlaps(any));
}

TEST(PolicyRule, ToStringPaperTupleShape) {
  PolicyRule rule;
  rule.action = PolicyAction::kAllow;
  rule.source.user = Username{"Alice"};
  rule.destination.user = Username{"Bob"};
  const std::string text = rule.to_string();
  EXPECT_NE(text.find("Allow"), std::string::npos);
  EXPECT_NE(text.find("Alice"), std::string::npos);
  EXPECT_NE(text.find("Bob"), std::string::npos);
  EXPECT_NE(text.find("*"), std::string::npos);
}

TEST(EndpointSpec, WildcardDetection) {
  EndpointSpec spec;
  EXPECT_TRUE(spec.is_wildcard());
  spec.ip = Ipv4Address(1, 2, 3, 4);
  EXPECT_FALSE(spec.is_wildcard());
}

}  // namespace
}  // namespace dfi
