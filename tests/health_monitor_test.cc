// Tests for the HealthMonitor degradation state machine, supervised
// reconnect backoff, and the proxy's fail-secure/fail-open degraded gate
// (DESIGN.md §6).
#include <gtest/gtest.h>

#include <algorithm>

#include "bus/message_bus.h"
#include "core/dfi_system.h"
#include "core/health_monitor.h"
#include "core/journal.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

HealthConfig enabled_config() {
  HealthConfig config;
  config.enabled = true;
  return config;
}

class HealthMonitorTest : public ::testing::Test {
 protected:
  HealthMonitorTest() : monitor_(sim_, bus_, enabled_config(), Rng(7)) {}

  Simulator sim_;
  MessageBus bus_;
  HealthMonitor monitor_;
};

TEST_F(HealthMonitorTest, StartsHealthyAndGatesOnlyWhenEnabled) {
  EXPECT_EQ(monitor_.state(), HealthState::kHealthy);
  EXPECT_FALSE(monitor_.gating());

  HealthConfig disabled;  // enabled = false
  HealthMonitor off(sim_, bus_, disabled, Rng(7));
  off.enter_degraded("test");
  EXPECT_FALSE(off.gating());  // disabled monitoring never gates
  EXPECT_EQ(off.state(), HealthState::kDegraded);  // but still tracks state
}

TEST_F(HealthMonitorTest, DegradedWindowsAreRefCounted) {
  monitor_.enter_degraded("a");
  monitor_.enter_degraded("b");
  EXPECT_EQ(monitor_.state(), HealthState::kDegraded);
  EXPECT_TRUE(monitor_.gating());
  monitor_.exit_degraded("a");
  EXPECT_EQ(monitor_.state(), HealthState::kDegraded);  // "b" still open
  monitor_.exit_degraded("b");
  EXPECT_EQ(monitor_.state(), HealthState::kRecovering);
  EXPECT_TRUE(monitor_.gating());  // recovering still gates (dwell)
  EXPECT_EQ(monitor_.stats().degraded_entries, 1u);
  EXPECT_EQ(monitor_.stats().degraded_exits, 0u);
}

TEST_F(HealthMonitorTest, RecoveringHoldsBeforeHealthy) {
  monitor_.enter_degraded("x");
  monitor_.exit_degraded("x");
  ASSERT_EQ(monitor_.state(), HealthState::kRecovering);

  // Before the hold elapses: still recovering.
  sim_.schedule_after(milliseconds(500), [] {});
  sim_.run();
  monitor_.poll();
  EXPECT_EQ(monitor_.state(), HealthState::kRecovering);

  // Past the hold: healthy, and the exit is counted.
  sim_.schedule_after(seconds(1.0), [] {});
  sim_.run();
  monitor_.poll();
  EXPECT_EQ(monitor_.state(), HealthState::kHealthy);
  EXPECT_FALSE(monitor_.gating());
  EXPECT_EQ(monitor_.stats().degraded_exits, 1u);
}

TEST_F(HealthMonitorTest, RelapseDuringRecoveringReturnsToDegraded) {
  monitor_.enter_degraded("x");
  monitor_.exit_degraded("x");
  ASSERT_EQ(monitor_.state(), HealthState::kRecovering);
  monitor_.enter_degraded("y");
  EXPECT_EQ(monitor_.state(), HealthState::kDegraded);
  EXPECT_EQ(monitor_.stats().degraded_entries, 2u);
}

TEST_F(HealthMonitorTest, MissedHeartbeatDegradesAndResumeRecovers) {
  monitor_.watch("sensor.dhcp");
  EXPECT_EQ(monitor_.state(), HealthState::kHealthy);

  // Silence past the 3 s deadline.
  sim_.schedule_after(seconds(4.0), [] {});
  sim_.run();
  monitor_.poll();
  EXPECT_EQ(monitor_.state(), HealthState::kDegraded);
  EXPECT_GE(monitor_.stats().deadline_misses, 1u);

  // A beat over the bus clears the condition.
  bus_.publish(topics::kHealthHeartbeats, HeartbeatEvent{"sensor.dhcp", sim_.now()});
  EXPECT_EQ(monitor_.state(), HealthState::kRecovering);
  EXPECT_GE(monitor_.stats().heartbeats, 1u);

  sim_.schedule_after(seconds(1.5), [] {});
  sim_.run();
  // Keep beating so the deadline stays met through the dwell.
  bus_.publish(topics::kHealthHeartbeats, HeartbeatEvent{"sensor.dhcp", sim_.now()});
  EXPECT_EQ(monitor_.state(), HealthState::kHealthy);
}

TEST_F(HealthMonitorTest, UnwatchedComponentCannotDegrade) {
  monitor_.watch("sensor.dns");
  monitor_.unwatch("sensor.dns");
  sim_.schedule_after(seconds(10.0), [] {});
  sim_.run();
  monitor_.poll();
  EXPECT_EQ(monitor_.state(), HealthState::kHealthy);
}

TEST_F(HealthMonitorTest, DeadShardsDegradeThenRespawn) {
  std::size_t dead = 1;
  std::size_t respawned = 0;
  monitor_.watch_shards([&dead] { return dead; },
                        [&dead, &respawned] {
                          respawned += dead;
                          const std::size_t n = dead;
                          dead = 0;
                          return n;
                        });
  // watch_shards polls: the dead worker degrades the plane for that
  // evaluation, then the supervisor respawns it.
  EXPECT_EQ(monitor_.state(), HealthState::kDegraded);
  EXPECT_EQ(respawned, 1u);
  EXPECT_EQ(monitor_.stats().shard_respawns, 1u);
  monitor_.poll();
  EXPECT_EQ(monitor_.state(), HealthState::kRecovering);
}

TEST_F(HealthMonitorTest, StandbyPromotesWhenPeerGoesStale) {
  int promoted = 0;
  std::vector<std::pair<HealthState, HealthState>> transitions;
  monitor_.on_transition([&](HealthState from, HealthState to) {
    transitions.emplace_back(from, to);
  });
  monitor_.enable_failover(ReplicaRole::kStandby, [&] {
    ++promoted;
    // The handover runs inside the promotion's degraded window.
    EXPECT_EQ(monitor_.role(), ReplicaRole::kPromoting);
    EXPECT_TRUE(monitor_.degraded_refs() > 0 ||
                monitor_.state() == HealthState::kDegraded);
  });
  EXPECT_EQ(monitor_.role(), ReplicaRole::kStandby);

  // Peer beats keep the failover clock fed: no promotion.
  sim_.schedule_after(seconds(1.5), [] {});
  sim_.run();
  monitor_.peer_heartbeat();
  EXPECT_EQ(monitor_.role(), ReplicaRole::kStandby);
  EXPECT_EQ(promoted, 0);

  // Silence past the failover deadline: the next evaluation promotes.
  sim_.schedule_after(seconds(2.5), [] {});
  sim_.run();
  monitor_.poll();
  EXPECT_EQ(promoted, 1);
  EXPECT_EQ(monitor_.role(), ReplicaRole::kPrimary);
  EXPECT_EQ(monitor_.stats().promotions, 1u);
  // The handover degraded the plane (resync discipline applies on the way
  // back to healthy).
  ASSERT_FALSE(transitions.empty());
  EXPECT_EQ(transitions.front().second, HealthState::kDegraded);

  // A promoted primary never re-promotes, however long it runs.
  sim_.schedule_after(seconds(60.0), [] {});
  sim_.run();
  monitor_.poll();
  EXPECT_EQ(promoted, 1);
  EXPECT_EQ(monitor_.stats().promotions, 1u);
}

TEST_F(HealthMonitorTest, PromoteNowRunsHandoverImmediately) {
  int promoted = 0;
  monitor_.enable_failover(ReplicaRole::kStandby, [&] { ++promoted; });
  monitor_.promote_now();
  EXPECT_EQ(promoted, 1);
  EXPECT_EQ(monitor_.role(), ReplicaRole::kPrimary);

  // Idempotent: only a standby can promote.
  monitor_.promote_now();
  EXPECT_EQ(promoted, 1);
}

TEST_F(HealthMonitorTest, PrimaryNeverPromotesAndDemotionIsCounted) {
  int promoted = 0;
  monitor_.enable_failover(ReplicaRole::kPrimary, [&] { ++promoted; });
  sim_.schedule_after(seconds(30.0), [] {});
  sim_.run();
  monitor_.poll();
  EXPECT_EQ(promoted, 0);
  EXPECT_EQ(monitor_.role(), ReplicaRole::kPrimary);

  // Deposed: standing down counts and re-arms the peer clock.
  monitor_.set_role(ReplicaRole::kStandby);
  EXPECT_EQ(monitor_.stats().demotions, 1u);
  EXPECT_EQ(monitor_.role(), ReplicaRole::kStandby);
  // Freshly re-armed clock: no instant promotion despite the 30 s gap.
  monitor_.poll();
  EXPECT_EQ(promoted, 0);
  // But continued silence promotes the demoted node like any standby.
  sim_.schedule_after(seconds(3.0), [] {});
  sim_.run();
  monitor_.poll();
  EXPECT_EQ(promoted, 1);
}

TEST_F(HealthMonitorTest, FailoverDisabledMonitorIgnoresPeerMachinery) {
  monitor_.peer_heartbeat();
  monitor_.promote_now();
  sim_.schedule_after(seconds(30.0), [] {});
  sim_.run();
  monitor_.poll();
  EXPECT_EQ(monitor_.role(), ReplicaRole::kNone);
  EXPECT_EQ(monitor_.stats().promotions, 0u);
  EXPECT_EQ(monitor_.state(), HealthState::kHealthy);
}

TEST_F(HealthMonitorTest, BackoffIsCappedExponentialWithBoundedJitter) {
  const HealthConfig& config = monitor_.config();
  for (int attempt = 0; attempt < 40; ++attempt) {
    const SimDuration delay = monitor_.backoff_delay(attempt);
    const double unjittered = static_cast<double>(
        std::min(config.backoff_cap.us,
                 attempt < 30 ? config.backoff_base.us << std::min(attempt, 30)
                              : config.backoff_cap.us));
    EXPECT_GE(delay.us, 1);
    EXPECT_GE(static_cast<double>(delay.us),
              unjittered * (1.0 - config.backoff_jitter) - 1.0)
        << "attempt " << attempt;
    EXPECT_LE(static_cast<double>(delay.us),
              unjittered * (1.0 + config.backoff_jitter) + 1.0)
        << "attempt " << attempt;
  }
}

TEST_F(HealthMonitorTest, SupervisedReconnectRetriesUntilSuccess) {
  int calls = 0;
  monitor_.supervise_reconnect("controller", [&calls] {
    ++calls;
    return calls >= 4;  // immediate try + 3 scheduled retries
  });
  EXPECT_EQ(monitor_.state(), HealthState::kDegraded);  // window open
  sim_.run();
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(monitor_.stats().backoff_retries, 3u);
  EXPECT_EQ(monitor_.degraded_refs(), 0u);  // window closed on success
  EXPECT_EQ(monitor_.stats().reconnects_abandoned, 0u);
}

TEST_F(HealthMonitorTest, SupervisedReconnectImmediateSuccessNeverDegrades) {
  monitor_.supervise_reconnect("controller", [] { return true; });
  EXPECT_EQ(monitor_.state(), HealthState::kHealthy);
  EXPECT_EQ(monitor_.stats().backoff_retries, 0u);
}

TEST_F(HealthMonitorTest, SupervisedReconnectAbandonsAfterMaxAttempts) {
  HealthConfig config = enabled_config();
  config.max_reconnect_attempts = 3;
  HealthMonitor monitor(sim_, bus_, config, Rng(11));
  int calls = 0;
  monitor.supervise_reconnect("siem", [&calls] {
    ++calls;
    return false;
  });
  sim_.run();
  EXPECT_EQ(calls, 4);  // immediate + 3 retries
  EXPECT_EQ(monitor.stats().backoff_retries, 3u);
  EXPECT_EQ(monitor.stats().reconnects_abandoned, 1u);
  EXPECT_EQ(monitor.degraded_refs(), 0u);  // window released on abandonment
}

TEST_F(HealthMonitorTest, PeriodicTickPollsUntilStopped) {
  monitor_.watch("feed");
  monitor_.start();
  // The tick chain re-evaluates without any explicit poll(); the feed goes
  // silent, so a later tick must catch the deadline miss.
  sim_.run_until(sim_.now() + seconds(5.0));
  EXPECT_EQ(monitor_.state(), HealthState::kDegraded);
  monitor_.stop();
  const SimTime stopped_at = sim_.now();
  sim_.run();
  // No self-rescheduling after stop(): the DES drains.
  EXPECT_LE((sim_.now() - stopped_at).us, seconds(2.0).us);
}

// ----------------------------------------------------- proxy degraded gate

class DegradedProxyTest : public ::testing::Test {
 protected:
  explicit DegradedProxyTest(DegradedMode mode = DegradedMode::kFailSecure)
      : system_(sim_, bus_, config_for(mode)),
        session_(system_.proxy().create_session(
            [this](const std::vector<std::uint8_t>& bytes) { collect(bytes, to_switch_); },
            [this](const std::vector<std::uint8_t>& bytes) {
              collect(bytes, to_controller_);
            })) {}

  static DfiConfig config_for(DegradedMode mode) {
    DfiConfig config = DfiConfig::functional();
    config.health.enabled = true;
    config.health.degraded_mode = mode;
    config.health.recovering_hold = seconds(0.0);  // exit resyncs immediately
    return config;
  }

  void collect(const std::vector<std::uint8_t>& bytes, std::vector<OfMessage>& sink) {
    FrameDecoder decoder;
    decoder.feed(bytes);
    for (auto& result : decoder.drain()) {
      ASSERT_TRUE(result.ok());
      sink.push_back(std::move(result).value());
    }
  }

  void complete_handshake() {
    FeaturesReplyMsg features;
    features.datapath_id = Dpid{9};
    features.n_tables = 4;
    session_.from_switch(encode(OfMessage{1, features}));
    sim_.run();
  }

  void send_table0_miss(std::uint16_t src_port) {
    PacketInMsg msg;
    msg.table_id = 0;
    msg.in_port = PortNo{3};
    msg.data = make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                               Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                               src_port, 80)
                   .serialize();
    session_.from_switch(encode(OfMessage{2, msg}));
    sim_.run();
  }

  template <typename T>
  std::vector<T> of_type(const std::vector<OfMessage>& sink) const {
    std::vector<T> out;
    for (const auto& message : sink) {
      if (const T* typed = std::get_if<T>(&message.payload)) out.push_back(*typed);
    }
    return out;
  }

  Simulator sim_;
  MessageBus bus_;
  DfiSystem system_;
  DfiProxy::Session& session_;
  std::vector<OfMessage> to_switch_;
  std::vector<OfMessage> to_controller_;
};

TEST_F(DegradedProxyTest, FailSecureSuppressesPacketInsWhileDegraded) {
  complete_handshake();
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  system_.policy_manager().insert(allow, PdpPriority{1}, "allow-all");

  // Healthy: an allowed flow's Packet-in reaches the controller.
  send_table0_miss(1000);
  EXPECT_EQ(of_type<PacketInMsg>(to_controller_).size(), 1u);

  // Degraded, fail-secure: invariant I1 by construction — the Packet-in is
  // suppressed outright; nothing reaches controller or PCP.
  system_.health().enter_degraded("test-window");
  const std::uint64_t pcp_before = system_.pcp().stats().packet_ins;
  send_table0_miss(1001);
  send_table0_miss(1002);
  EXPECT_EQ(of_type<PacketInMsg>(to_controller_).size(), 1u);  // unchanged
  EXPECT_EQ(system_.pcp().stats().packet_ins, pcp_before);
  EXPECT_EQ(system_.proxy().stats().degraded_suppressed, 2u);
  EXPECT_EQ(system_.proxy().stats().degraded_forwarded, 0u);
}

TEST_F(DegradedProxyTest, ExitingDegradedResyncsTableZero) {
  complete_handshake();
  system_.health().enter_degraded("test-window");
  const auto mods_before = of_type<FlowModMsg>(to_switch_).size();
  system_.health().exit_degraded("test-window");
  sim_.run();
  // recovering_hold is zero: the exit transitions straight to healthy and
  // the DfiSystem clears Table 0 on every registered switch.
  EXPECT_EQ(system_.health().state(), HealthState::kHealthy);
  const auto mods = of_type<FlowModMsg>(to_switch_);
  ASSERT_EQ(mods.size(), mods_before + 1);
  EXPECT_EQ(mods.back().command, FlowModCommand::kDelete);
  EXPECT_EQ(mods.back().table_id, 0);
  EXPECT_EQ(mods.back().cookie_mask.value, 0u);
  EXPECT_GE(system_.proxy().stats().resync_clears, 1u);
  EXPECT_EQ(system_.proxy().stats().degraded_entries, 1u);
  EXPECT_EQ(system_.proxy().stats().degraded_exits, 1u);
}

class FailOpenProxyTest : public DegradedProxyTest {
 protected:
  FailOpenProxyTest() : DegradedProxyTest(DegradedMode::kFailOpen) {}
};

TEST_F(FailOpenProxyTest, FailOpenForwardsUndecidedPacketIns) {
  complete_handshake();
  system_.health().enter_degraded("test-window");
  const std::uint64_t pcp_before = system_.pcp().stats().packet_ins;
  send_table0_miss(2000);
  // The Packet-in bypasses the PCP and reaches the controller undecided.
  EXPECT_EQ(of_type<PacketInMsg>(to_controller_).size(), 1u);
  EXPECT_EQ(system_.pcp().stats().packet_ins, pcp_before);
  EXPECT_EQ(system_.proxy().stats().degraded_forwarded, 1u);
  EXPECT_EQ(system_.proxy().stats().degraded_suppressed, 0u);
}

TEST(DfiSystemRecovery, RecoverFromJournalInsideDegradedWindow) {
  InMemoryJournalStore store;
  {
    // A prior process journals one policy and one binding, then "crashes".
    Simulator sim;
    MessageBus bus;
    DfiSystem writer(sim, bus, DfiConfig::functional());
    Journal journal(store);
    writer.enable_durability(journal);
    PolicyRule allow;
    allow.action = PolicyAction::kAllow;
    allow.source.user = Username{"alice"};
    writer.policy_manager().insert(allow, PdpPriority{10}, "pdp-a");
    BindingEvent event;
    event.kind = BindingKind::kUserHost;
    event.user = Username{"alice"};
    event.host = Hostname{"h1"};
    writer.erm().apply(event);
  }

  Simulator sim;
  MessageBus bus;
  DfiConfig config = DfiConfig::functional();
  config.health.enabled = true;
  DfiSystem system(sim, bus, config);
  Journal journal(store);
  const auto recovery = system.recover_from(journal);
  ASSERT_TRUE(recovery.ok()) << recovery.error().message;
  EXPECT_EQ(recovery.value().records_replayed, 2u);

  // The replay ran inside an explicit degraded window...
  EXPECT_EQ(system.proxy().stats().degraded_entries, 1u);
  // ...and the recovered state answers queries.
  EXPECT_EQ(system.policy_manager().size(), 1u);
  EXPECT_EQ(system.erm().users_of_host(Hostname{"h1"}).size(), 1u);

  // Post-recovery mutations are journaled (durability stays attached).
  PolicyRule deny;
  deny.action = PolicyAction::kDeny;
  system.policy_manager().insert(deny, PdpPriority{20}, "pdp-b");
  EXPECT_EQ(journal.stats().appends, 1u);
}

TEST(DfiSystemRecovery, SensorsHeartbeatWhenEnabled) {
  Simulator sim;
  MessageBus bus;
  DfiConfig config = DfiConfig::functional();
  config.health.enabled = true;
  DfiSystem system(sim, bus, config);
  system.sensors().enable_heartbeats();
  system.health().watch("sensor.dhcp");

  DhcpLeaseEvent lease;
  lease.mac = MacAddress::from_u64(0xa1);
  lease.ip = Ipv4Address(10, 0, 0, 1);
  lease.at = sim.now();
  bus.publish(topics::kDhcpEvents, lease);
  EXPECT_GE(system.health().stats().heartbeats, 1u);
  EXPECT_EQ(system.health().state(), HealthState::kHealthy);
}

}  // namespace
}  // namespace dfi
