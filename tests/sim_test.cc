// Unit tests for the discrete-event simulator and the service station.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/service_station.h"
#include "sim/simulator.h"
#include "sim/stats.h"

namespace dfi {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(SimTime{} + seconds(3), [&]() { order.push_back(3); });
  sim.schedule_at(SimTime{} + seconds(1), [&]() { order.push_back(1); });
  sim.schedule_at(SimTime{} + seconds(2), [&]() { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime{} + seconds(3));
}

TEST(Simulator, FifoAmongSimultaneousEvents) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(SimTime{} + seconds(1), [&, i]() { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, HandlersScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&]() {
    ++fired;
    if (fired < 5) sim.schedule_after(seconds(1), chain);
  };
  sim.schedule_after(seconds(1), chain);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(sim.now(), SimTime{} + seconds(5));
}

TEST(Simulator, RunUntilStopsAtHorizonAndAdvancesClock) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(SimTime{} + seconds(1), [&]() { ++fired; });
  sim.schedule_at(SimTime{} + seconds(10), [&]() { ++fired; });
  sim.run_until(SimTime{} + seconds(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), SimTime{} + seconds(5));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, PastScheduleClampsToNow) {
  Simulator sim;
  sim.schedule_at(SimTime{} + seconds(2), [&]() {
    sim.schedule_at(SimTime{} + seconds(1), []() {});  // in the past
  });
  sim.run();  // must terminate without time going backwards
  EXPECT_EQ(sim.now(), SimTime{} + seconds(2));
}

TEST(Simulator, NegativeDelayTreatedAsZero) {
  Simulator sim;
  bool fired = false;
  sim.schedule_after(SimDuration{-100}, [&]() { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), SimTime{});
}

TEST(ServiceStation, ServesSequentiallyWithOneWorker) {
  Simulator sim;
  ServiceStation station(sim, 1, 10);
  std::vector<double> completions;
  for (int i = 0; i < 3; ++i) {
    station.submit([]() { return seconds(1.0); },
                   [&](SimTime, SimTime done) { completions.push_back(done.us / 1e6); });
  }
  sim.run();
  EXPECT_EQ(completions, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(station.stats().completed, 3u);
}

TEST(ServiceStation, ParallelWorkers) {
  Simulator sim;
  ServiceStation station(sim, 3, 10);
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    station.submit([]() { return seconds(1.0); }, [&](SimTime, SimTime) { ++done; });
  }
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(sim.now(), SimTime{} + seconds(1.0));  // all in parallel
}

TEST(ServiceStation, DropsWhenQueueFull) {
  Simulator sim;
  ServiceStation station(sim, 1, 2);
  int done = 0, dropped = 0;
  for (int i = 0; i < 5; ++i) {
    const bool accepted = station.submit(
        []() { return seconds(1.0); }, [&](SimTime, SimTime) { ++done; },
        [&](SimTime) { ++dropped; });
    // 1 in service + 2 queued accepted; the rest dropped.
    EXPECT_EQ(accepted, i < 3);
  }
  sim.run();
  EXPECT_EQ(done, 3);
  EXPECT_EQ(dropped, 2);
  EXPECT_EQ(station.stats().dropped, 2u);
}

TEST(ServiceStation, QueueDrainsThenAcceptsAgain) {
  Simulator sim;
  ServiceStation station(sim, 1, 1);
  int done = 0;
  station.submit([]() { return seconds(1.0); }, [&](SimTime, SimTime) { ++done; });
  station.submit([]() { return seconds(1.0); }, [&](SimTime, SimTime) { ++done; });
  EXPECT_FALSE(station.submit([]() { return seconds(1.0); },
                              [&](SimTime, SimTime) { ++done; }));
  sim.run();
  EXPECT_TRUE(station.submit([]() { return seconds(1.0); },
                             [&](SimTime, SimTime) { ++done; }));
  sim.run();
  EXPECT_EQ(done, 3);
}

TEST(ServiceStation, WaitTimeObservableFromTimestamps) {
  Simulator sim;
  ServiceStation station(sim, 1, 10);
  SimDuration waited{};
  station.submit([]() { return seconds(2.0); }, [](SimTime, SimTime) {});
  station.submit([]() { return seconds(1.0); },
                 [&](SimTime enqueued, SimTime completed) {
                   waited = completed - enqueued;
                 });
  sim.run();
  EXPECT_EQ(waited, seconds(3.0));  // 2s wait + 1s service
}

TEST(SampleStats, MeanStdDevPercentiles) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) stats.add(i);
  EXPECT_DOUBLE_EQ(stats.mean(), 50.5);
  EXPECT_NEAR(stats.stddev(), 29.011, 0.01);
  EXPECT_EQ(stats.min(), 1.0);
  EXPECT_EQ(stats.max(), 100.0);
  EXPECT_NEAR(stats.percentile(50), 50.5, 0.01);
  EXPECT_NEAR(stats.percentile(99), 99.01, 0.01);
  EXPECT_EQ(stats.count(), 100u);
}

TEST(SampleStats, EmptyIsSafe) {
  SampleStats stats;
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.stddev(), 0.0);
  EXPECT_EQ(stats.percentile(50), 0.0);
}

TEST(TimeSeries, StepFunctionValueAt) {
  TimeSeries series;
  series.add(0.0, 0.0);
  series.add(10.0, 3.0);
  series.add(20.0, 7.0);
  EXPECT_EQ(series.value_at(5.0), 0.0);
  EXPECT_EQ(series.value_at(10.0), 3.0);
  EXPECT_EQ(series.value_at(15.0), 3.0);
  EXPECT_EQ(series.value_at(100.0), 7.0);
}

}  // namespace
}  // namespace dfi
