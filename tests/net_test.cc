// Unit and property tests for src/net: addresses and packet codec.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/ipv4.h"
#include "net/mac.h"
#include "net/packet.h"

namespace dfi {
namespace {

TEST(MacAddress, ParseFormatRoundTrip) {
  const auto parsed = MacAddress::parse("02:0a:ff:00:12:34");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().to_string(), "02:0a:ff:00:12:34");
}

TEST(MacAddress, ParseRejectsGarbage) {
  EXPECT_FALSE(MacAddress::parse("not-a-mac").ok());
  EXPECT_FALSE(MacAddress::parse("02:0a:ff:00:12").ok());
  EXPECT_FALSE(MacAddress::parse("02:0a:ff:00:12:34:56").ok());
  EXPECT_FALSE(MacAddress::parse("").ok());
}

TEST(MacAddress, U64RoundTrip) {
  const MacAddress mac = MacAddress::from_u64(0x0123456789abull);
  EXPECT_EQ(mac.to_u64(), 0x0123456789abull);
  EXPECT_EQ(mac.to_string(), "01:23:45:67:89:ab");
}

TEST(MacAddress, BroadcastAndMulticast) {
  EXPECT_TRUE(MacAddress::broadcast().is_broadcast());
  EXPECT_TRUE(MacAddress::broadcast().is_multicast());
  EXPECT_TRUE(MacAddress::from_u64(0x010000000000ull).is_multicast());
  EXPECT_FALSE(MacAddress::from_u64(0x020000000001ull).is_multicast());
}

TEST(Ipv4Address, ParseFormatRoundTrip) {
  const auto parsed = Ipv4Address::parse("10.1.2.3");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().to_string(), "10.1.2.3");
  EXPECT_EQ(parsed.value(), Ipv4Address(10, 1, 2, 3));
}

TEST(Ipv4Address, ParseRejectsGarbage) {
  EXPECT_FALSE(Ipv4Address::parse("10.1.2").ok());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.999").ok());
  EXPECT_FALSE(Ipv4Address::parse("10.1.2.3.4").ok());
  EXPECT_FALSE(Ipv4Address::parse("abc").ok());
}

TEST(Ipv4Address, SubnetMembership) {
  const Ipv4Address ip(10, 0, 3, 7);
  EXPECT_TRUE(ip.in_subnet(Ipv4Address(10, 0, 0, 0), 16));
  EXPECT_FALSE(ip.in_subnet(Ipv4Address(10, 1, 0, 0), 16));
  EXPECT_TRUE(ip.in_subnet(Ipv4Address(0, 0, 0, 0), 0));
  EXPECT_TRUE(ip.in_subnet(ip, 32));
  EXPECT_FALSE(Ipv4Address(10, 0, 3, 8).in_subnet(ip, 32));
}

TEST(Packet, TcpSerializeParseRoundTrip) {
  const Packet packet =
      make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                      Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 49152, 445,
                      kTcpSyn);
  const auto parsed = Packet::parse(packet.serialize());
  ASSERT_TRUE(parsed.ok());
  const Packet& out = parsed.value();
  EXPECT_EQ(out.eth.src, packet.eth.src);
  EXPECT_EQ(out.eth.dst, packet.eth.dst);
  ASSERT_TRUE(out.ipv4.has_value());
  EXPECT_EQ(out.ipv4->src, Ipv4Address(10, 0, 0, 1));
  EXPECT_EQ(out.ipv4->dst, Ipv4Address(10, 0, 0, 2));
  ASSERT_TRUE(out.tcp.has_value());
  EXPECT_EQ(out.tcp->src_port, 49152);
  EXPECT_EQ(out.tcp->dst_port, 445);
  EXPECT_EQ(out.tcp->flags, kTcpSyn);
  EXPECT_FALSE(out.udp.has_value());
  EXPECT_FALSE(out.arp.has_value());
}

TEST(Packet, UdpSerializeParseRoundTrip) {
  Packet packet = make_udp_packet(MacAddress::from_u64(3), MacAddress::from_u64(4),
                                  Ipv4Address(192, 168, 1, 1), Ipv4Address(192, 168, 1, 2),
                                  5353, 53);
  packet.payload = {0xde, 0xad, 0xbe, 0xef};
  const auto parsed = Packet::parse(packet.serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.value().udp.has_value());
  EXPECT_EQ(parsed.value().udp->src_port, 5353);
  EXPECT_EQ(parsed.value().udp->dst_port, 53);
  EXPECT_EQ(parsed.value().payload, packet.payload);
}

TEST(Packet, ArpRoundTrip) {
  const Packet request = make_arp_request(MacAddress::from_u64(5),
                                          Ipv4Address(10, 0, 0, 5), Ipv4Address(10, 0, 0, 9));
  const auto parsed = Packet::parse(request.serialize());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed.value().arp.has_value());
  EXPECT_EQ(parsed.value().arp->op, ArpOp::kRequest);
  EXPECT_EQ(parsed.value().arp->sender_ip, Ipv4Address(10, 0, 0, 5));
  EXPECT_EQ(parsed.value().arp->target_ip, Ipv4Address(10, 0, 0, 9));
  EXPECT_TRUE(parsed.value().eth.dst.is_broadcast());

  const Packet reply = make_arp_reply(MacAddress::from_u64(9), Ipv4Address(10, 0, 0, 9),
                                      MacAddress::from_u64(5), Ipv4Address(10, 0, 0, 5));
  const auto parsed_reply = Packet::parse(reply.serialize());
  ASSERT_TRUE(parsed_reply.ok());
  EXPECT_EQ(parsed_reply.value().arp->op, ArpOp::kReply);
}

TEST(Packet, UnknownEtherTypeKeptAsPayload) {
  Packet packet;
  packet.eth = {MacAddress::from_u64(1), MacAddress::from_u64(2), 0x88b5};
  packet.payload = {1, 2, 3};
  const auto parsed = Packet::parse(packet.serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed.value().ipv4.has_value());
  EXPECT_EQ(parsed.value().payload, packet.payload);
}

TEST(Packet, TruncatedInputsFailCleanly) {
  const Packet packet =
      make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                      Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1, 2);
  const auto bytes = packet.serialize();
  // Every prefix short of a full TCP frame must fail, never crash.
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    const auto parsed = Packet::parse(prefix);
    if (len < 14) {
      EXPECT_FALSE(parsed.ok()) << "len=" << len;
    }
    // 14..full: either a clean error or a parse of fewer layers; both fine.
  }
}

// Property sweep: random packets round-trip for all flag/protocol variants.
class PacketRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketRoundTrip, RandomTcpUdpPacketsRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const MacAddress src = MacAddress::from_u64(rng.next_u64() & 0xfeffffffffffull);
    const MacAddress dst = MacAddress::from_u64(rng.next_u64() & 0xfeffffffffffull);
    const Ipv4Address sip(static_cast<std::uint32_t>(rng.next_u64()));
    const Ipv4Address dip(static_cast<std::uint32_t>(rng.next_u64()));
    const auto sport = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    const auto dport = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    Packet packet;
    if (rng.chance(0.5)) {
      packet = make_tcp_packet(src, dst, sip, dip, sport, dport,
                               static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    } else {
      packet = make_udp_packet(src, dst, sip, dip, sport, dport);
    }
    const auto payload_len = static_cast<std::size_t>(rng.uniform_int(0, 64));
    for (std::size_t b = 0; b < payload_len; ++b) {
      packet.payload.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    const auto parsed = Packet::parse(packet.serialize());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().serialize(), packet.serialize());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketRoundTrip,
                         ::testing::Values(1ull, 2ull, 3ull, 4ull, 5ull));

TEST(Packet, SummaryMentionsEndpoints) {
  const Packet packet =
      make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                      Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1000, 445);
  const std::string summary = packet.summary();
  EXPECT_NE(summary.find("10.0.0.1"), std::string::npos);
  EXPECT_NE(summary.find("445"), std::string::npos);
}

}  // namespace
}  // namespace dfi
