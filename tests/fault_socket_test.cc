// FaultSocket shim tests (DESIGN.md §9): the seeded in-memory SocketOps
// endpoint the fuzz harness drives the production Connection machinery
// with. Verifies the fault repertoire (short reads/writes, EAGAIN storms,
// slow drain, mid-frame RST), seed determinism, and that a manual-mode
// Connection reassembles and emits byte-identical frame streams through
// arbitrary fault schedules.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/fault_socket.h"
#include "net/asyncio/connection.h"
#include "openflow/messages.h"
#include "openflow/wire.h"

namespace dfi {
namespace {

using net::Connection;
using net::ConstByteSpan;
using net::IoStatus;

std::vector<std::uint8_t> frame_of(std::uint32_t xid, std::size_t body) {
  return encode(OfMessage{xid, EchoRequestMsg{std::vector<std::uint8_t>(body, 0x3c)}});
}

// Manual-mode Connection over a FaultSocket; the owner pumps handle_io.
struct ManualConn {
  FaultSocket* socket = nullptr;  // borrowed view into the connection
  std::unique_ptr<Connection> conn;
  std::vector<std::vector<std::uint8_t>> frames;
  int batches = 0;
  int corrupt = 0;
  std::string closed_reason;

  ManualConn(FaultSocketSpec spec, std::uint64_t seed,
             Connection::Config config = {}) {
    auto sock = std::make_unique<FaultSocket>(spec, seed);
    socket = sock.get();
    conn = std::make_unique<Connection>(nullptr, std::move(sock), config);
    conn->on_frame([this](const FrameView& view) {
      frames.emplace_back(view.data(), view.data() + view.size());
    });
    conn->on_batch_end([this] { ++batches; });
    conn->on_corrupt([this] { ++corrupt; });
    conn->on_closed([this](const char* reason) { closed_reason = reason; });
    conn->start();
  }

  // Pump reads until the shim has no buffered input (or the conn died).
  void pump_reads(int max_rounds = 10000) {
    for (int i = 0; i < max_rounds && conn->open() && socket->pending_in() > 0;
         ++i) {
      conn->handle_io(/*readable=*/true, /*writable=*/false);
    }
    if (conn->open()) conn->handle_io(true, false);  // observe EOF/RST
  }
  // Pump writes until the egress queue drains (or the conn died).
  void pump_writes(int max_rounds = 10000) {
    for (int i = 0;
         i < max_rounds && conn->open() && conn->pending_egress_bytes() > 0;
         ++i) {
      conn->flush();
    }
  }
};

TEST(FaultSocketTest, ShortReadsSplitFramesMidHeaderAndMidBody) {
  FaultSocketSpec spec;
  spec.short_read = 1.0;  // every read is a random prefix
  ManualConn mc(spec, /*seed=*/42);

  std::vector<std::vector<std::uint8_t>> sent;
  for (std::uint32_t xid = 0; xid < 50; ++xid) {
    sent.push_back(frame_of(xid, xid % 7));
    mc.socket->peer_write(sent.back());
  }
  mc.pump_reads();
  ASSERT_EQ(mc.frames.size(), sent.size());
  EXPECT_EQ(mc.frames, sent);
  EXPECT_EQ(mc.corrupt, 0);
  // The burst arrived as many random prefixes, so frames were split at
  // arbitrary points (including mid-header and mid-body).
  EXPECT_GT(mc.conn->stats().reads, 1u);
}

TEST(FaultSocketTest, EagainStormsTerminateViaForcedProgress) {
  FaultSocketSpec spec;
  spec.eagain_read = 0.95;
  spec.eagain_write = 0.95;
  spec.max_eagain_run = 4;
  ManualConn mc(spec, /*seed=*/7);

  const auto in_frame = frame_of(1, 32);
  mc.socket->peer_write(in_frame);
  mc.pump_reads();
  ASSERT_EQ(mc.frames.size(), 1u);
  EXPECT_EQ(mc.frames[0], in_frame);
  EXPECT_GE(mc.conn->stats().would_block_reads, 1u);

  std::vector<std::uint8_t> expect_out;
  for (std::uint32_t xid = 2; xid < 22; ++xid) {
    auto out_frame = frame_of(xid, 64);
    expect_out.insert(expect_out.end(), out_frame.begin(), out_frame.end());
    ASSERT_TRUE(mc.conn->send(std::move(out_frame)));
    mc.pump_writes();
  }
  EXPECT_EQ(mc.socket->peer_drain(), expect_out);
  EXPECT_GE(mc.conn->stats().would_block_writes, 1u);
}

TEST(FaultSocketTest, SlowDrainDribblesEgressAndPreservesBytes) {
  FaultSocketSpec spec;
  spec.slow_drain_cap = 3;  // peer accepts at most 3 bytes per write
  ManualConn mc(spec, /*seed=*/9);

  std::vector<std::uint8_t> all;
  for (std::uint32_t xid = 0; xid < 10; ++xid) {
    auto frame = frame_of(xid, 16);
    all.insert(all.end(), frame.begin(), frame.end());
    ASSERT_TRUE(mc.conn->send(std::move(frame)));
  }
  mc.pump_writes();
  EXPECT_EQ(mc.socket->peer_drain(), all);
  // Every writev accepted at most the cap.
  EXPECT_GE(mc.conn->stats().writes, all.size() / 3);
}

TEST(FaultSocketTest, RstMidFrameClosesWithReset) {
  FaultSocketSpec spec;
  const auto first = frame_of(1, 32);
  // Land the reset strictly inside the second frame.
  spec.rst_after_bytes = first.size() + 4;
  ManualConn mc(spec, /*seed=*/3);

  mc.socket->peer_write(first);
  mc.socket->peer_write(frame_of(2, 32));
  mc.pump_reads();
  // The first frame (and the readable prefix) arrived; then the stream
  // reset mid-frame and the connection closed.
  ASSERT_EQ(mc.frames.size(), 1u);
  EXPECT_EQ(mc.frames[0], first);
  EXPECT_FALSE(mc.conn->open());
  EXPECT_EQ(mc.closed_reason, "connection reset");
  EXPECT_TRUE(mc.socket->reset());
}

TEST(FaultSocketTest, PeerShutdownDeliversEofAfterDrain) {
  ManualConn mc(FaultSocketSpec{}, /*seed=*/11);
  const auto frame = frame_of(5, 8);
  mc.socket->peer_write(frame);
  mc.socket->peer_shutdown();
  mc.pump_reads();
  ASSERT_EQ(mc.frames.size(), 1u);
  EXPECT_EQ(mc.frames[0], frame);
  EXPECT_FALSE(mc.conn->open());
  EXPECT_EQ(mc.closed_reason, "peer closed");
}

TEST(FaultSocketTest, SameSeedSameSchedule) {
  // The shim's fault decisions must replay byte-identically from the seed:
  // same inputs, same seed -> same per-call read sizes and the same trace.
  FaultSocketSpec spec;
  spec.short_read = 0.5;
  spec.eagain_read = 0.3;
  spec.short_write = 0.5;

  auto run = [&](std::uint64_t seed) {
    FaultPlan plan(seed);
    FaultSocket sock(spec, seed, &plan);
    std::vector<std::size_t> read_sizes;
    std::vector<std::uint8_t> out;
    sock.peer_write(std::vector<std::uint8_t>(257, 0xee));
    std::uint8_t buf[64];
    MutableByteSpan span{buf, sizeof buf};
    while (sock.pending_in() > 0) {
      const auto r = sock.read_vec(&span, 1);
      read_sizes.push_back(r.status == net::IoStatus::kOk ? r.bytes : 0);
    }
    const std::uint8_t payload[16] = {1, 2, 3, 4};
    for (int i = 0; i < 8; ++i) {
      ConstByteSpan wspan{payload, sizeof payload};
      sock.write_vec(&wspan, 1);
    }
    auto drained = sock.peer_drain();
    return std::make_tuple(read_sizes, drained, plan.trace());
  };

  EXPECT_EQ(run(0xabc), run(0xabc));
  EXPECT_NE(std::get<0>(run(0xabc)), std::get<0>(run(0xdef)));
}

TEST(FaultSocketTest, FuzzManyScheduleSeedsRoundTrip) {
  // Sweep seeds: under any combination of short reads, EAGAIN storms and
  // slow drain, the production Connection must reassemble the exact input
  // frame sequence and emit the exact output byte stream.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    FaultSocketSpec spec;
    spec.short_read = 0.6;
    spec.eagain_read = 0.25;
    spec.short_write = 0.6;
    spec.eagain_write = 0.25;
    spec.slow_drain_cap = (seed % 3 == 0) ? 5 : 0;
    ManualConn mc(spec, seed);

    std::vector<std::vector<std::uint8_t>> sent;
    std::vector<std::uint8_t> expect_out;
    Rng rng(seed ^ 0x5eed);
    for (std::uint32_t i = 0; i < 30; ++i) {
      sent.push_back(frame_of(i, static_cast<std::size_t>(rng.uniform_int(0, 100))));
      mc.socket->peer_write(sent.back());
      auto out = frame_of(1000 + i, static_cast<std::size_t>(rng.uniform_int(0, 100)));
      expect_out.insert(expect_out.end(), out.begin(), out.end());
      ASSERT_TRUE(mc.conn->send(std::move(out)));
      mc.pump_reads();
      mc.pump_writes();
    }
    ASSERT_EQ(mc.frames, sent) << "seed " << seed;
    ASSERT_EQ(mc.socket->peer_drain(), expect_out) << "seed " << seed;
    ASSERT_EQ(mc.corrupt, 0) << "seed " << seed;
    ASSERT_TRUE(mc.conn->open()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dfi
