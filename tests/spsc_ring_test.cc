// SpscRing (common/spsc_ring.h) properties: the logical capacity is
// enforced exactly (not rounded up with the slot array), FIFO order
// survives arbitrary wraparound, a full ring backpressures without
// touching the rejected value, move-only payloads move cleanly, and a
// two-thread producer/consumer stress loop transfers every element in
// order — the loop the tsan stage runs to prove the cursor protocol race-
// free.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "common/spsc_ring.h"

namespace dfi {
namespace {

TEST(SpscRing, LogicalCapacityIsExact) {
  // 5 is not a power of two: the slot array rounds up to 8 internally, but
  // try_push must fail at exactly 5 in flight — the shard pool's
  // queue-full drop behavior depends on the configured bound, not the
  // implementation's.
  SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ring.try_push(int(i))) << i;
  }
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.size(), 5u);
  int rejected = 41;
  EXPECT_FALSE(ring.try_push(rejected + 1));
  // Backpressure frees exactly one slot per pop.
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_FALSE(ring.full());
  EXPECT_TRUE(ring.try_push(99));
  EXPECT_FALSE(ring.try_push(100));
}

TEST(SpscRing, ZeroCapacityClampsToOne) {
  SpscRing<int> ring(0);
  EXPECT_EQ(ring.capacity(), 1u);
  EXPECT_TRUE(ring.try_push(7));
  EXPECT_FALSE(ring.try_push(8));
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FifoOrderAcrossWraparound) {
  // Capacity 4 with 10k transfers: the cursors lap the slot array
  // thousands of times; order and content must be exact.
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  while (next_pop < 10000) {
    while (next_push < 10000 && ring.try_push(std::uint64_t(next_push))) {
      ++next_push;
    }
    std::uint64_t out = 0;
    while (ring.try_pop(out)) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRing, FailedPushLeavesValueIntact) {
  SpscRing<std::vector<int>> ring(1);
  EXPECT_TRUE(ring.try_push(std::vector<int>{1}));
  std::vector<int> value{2, 3, 4};
  EXPECT_FALSE(ring.try_push(std::move(value)));
  // The rejected value must be untouched so the caller can retry or drop.
  EXPECT_EQ(value.size(), 3u);
  std::vector<int> out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(ring.try_push(std::move(value)));
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out.size(), 3u);
}

TEST(SpscRing, MoveOnlyPayloads) {
  // unique_ptr payloads: transfer is by move, and nothing leaks (the ASan
  // stage re-runs this).
  SpscRing<std::unique_ptr<int>> ring(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.try_push(std::make_unique<int>(i)));
  }
  std::unique_ptr<int> extra = std::make_unique<int>(99);
  EXPECT_FALSE(ring.try_push(std::move(extra)));
  ASSERT_NE(extra, nullptr);  // rejected, not consumed
  for (int i = 0; i < 8; ++i) {
    std::unique_ptr<int> out;
    ASSERT_TRUE(ring.try_pop(out));
    ASSERT_NE(out, nullptr);
    EXPECT_EQ(*out, i);
  }
}

TEST(SpscRing, TwoThreadStressPreservesOrder) {
  // One real producer thread against this (consumer) thread, small ring so
  // both sides constantly hit the full/empty edges. Every element must
  // arrive exactly once, in order — under TSan this doubles as the data-
  // race proof for the cursor protocol.
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> ring(16);
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(std::uint64_t(i))) {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::uint64_t out = 0;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, StressWithHeavyPayload) {
  // Same stress with an allocating payload: moves must not duplicate or
  // drop buffers (ASan catches double-free/leak, TSan the transfer race).
  constexpr std::uint64_t kCount = 20000;
  SpscRing<std::vector<std::uint64_t>> ring(8);
  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      std::vector<std::uint64_t> payload{i, i * 2, i * 3};
      while (!ring.try_push(std::move(payload))) {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::vector<std::uint64_t> out;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out.size(), 3u);
      ASSERT_EQ(out[0], expected);
      ASSERT_EQ(out[1], expected * 2);
      ASSERT_EQ(out[2], expected * 3);
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace dfi
