// Crash-recovery fuzz campaign (DESIGN.md §6).
//
// Hundreds of seeded kill/restart schedules against the journaled control
// plane: each schedule runs several "process lifetimes" of random policy
// inserts/revokes, binding events and compactions against a journal whose
// store is armed with a FaultPlan crash point, kills the process mid-durable
// -operation, restarts, and recovers. After every recovery the restored
// state must be byte-identical to a never-crashed oracle:
//
//   * save_policies/save_bindings text equal (rule ids, PDP ownership,
//     priorities, binding sets),
//   * policy and binding epochs and next_id equal,
//   * random policy queries, enrichments and spoof validations equal
//     (differential check through the public query API),
//   * compiled Table-0 rules byte-identical on the wire for a shared
//     packet workload (cookies cite rule ids, so this pins id recovery).
//
// The WAL boundary op is genuinely ambiguous: a crash during append can
// leave the record fully durable (tear == 1.0, or the kill landed on the
// sync after the append) even though the dying process never applied it in
// memory. Recovery then correctly replays an operation the crashed process
// never saw complete. The oracle accepts either world — the recovered state
// must match the oracle *without* the boundary op or the oracle *with* it,
// and the campaign continues from whichever matched. Anything else is a
// violation.
//
// Every fourth schedule additionally drives a degraded window through a
// full DfiSystem proxy session and asserts invariant I1: with fail-secure
// gating, no Packet-in reaches the controller (or the PCP) while the window
// is open, and Table 0 is resynced wholesale on recovery.
//
// Reproduction mirrors the invariant fuzzer: DFI_FUZZ_SEED=<seed> (or
// --seed=<seed>) replays one schedule; DFI_FUZZ_SCHEDULES=<n> (or
// --schedules=<n>) bounds the campaign (CI's sanitizer stages use this).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "common/logging.h"
#include "core/dfi_system.h"
#include "core/journal.h"
#include "core/pcp.h"
#include "core/persistence.h"
#include "fault/fault_plan.h"
#include "openflow/wire.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

std::optional<std::uint64_t> g_seed_override;
std::size_t g_total_schedules = 600;

// ----------------------------------------------------------- op vocabulary

// One logical control-plane mutation. Schedules record every *committed* op
// so the oracle can be reconstructed at any process boundary by replaying
// the list into a fresh plane.
struct CrashOp {
  enum class Kind { kInsert, kRevoke, kBinding, kCompact };
  Kind kind = Kind::kInsert;
  PolicyRule rule;           // kInsert
  std::uint32_t priority = 0;
  std::string pdp;
  PolicyRuleId revoke_id{};  // kRevoke
  BindingEvent event;        // kBinding
};

struct Plane {
  Plane() : manager(bus), erm(bus) {}
  MessageBus bus;
  PolicyManager manager;
  EntityResolutionManager erm;
};

PolicyRule random_rule(Rng& rng) {
  PolicyRule rule;
  rule.action = rng.chance(0.5) ? PolicyAction::kAllow : PolicyAction::kDeny;
  if (rng.chance(0.6)) rule.properties.ether_type = 0x0800;
  if (rng.chance(0.4)) rule.properties.ip_proto = rng.chance(0.5) ? 6 : 17;
  const auto endpoint = [&rng](EndpointSpec& spec) {
    if (rng.chance(0.3)) spec.user = Username{"user" + std::to_string(rng.uniform_int(0, 5))};
    if (rng.chance(0.3)) spec.host = Hostname{"host" + std::to_string(rng.uniform_int(0, 5))};
    if (rng.chance(0.4)) {
      spec.ip = Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 30)));
    }
    if (rng.chance(0.3)) spec.l4_port = static_cast<std::uint16_t>(rng.uniform_int(1, 2000));
  };
  endpoint(rule.source);
  endpoint(rule.destination);
  return rule;
}

BindingEvent random_binding(Rng& rng) {
  BindingEvent event;
  event.kind = static_cast<BindingKind>(rng.uniform_int(0, 3));
  event.retracted = rng.chance(0.25);
  event.user = Username{"user" + std::to_string(rng.uniform_int(0, 5))};
  event.host = Hostname{"host" + std::to_string(rng.uniform_int(0, 5))};
  event.ip = Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 30)));
  event.mac = MacAddress::from_u64(static_cast<std::uint64_t>(rng.uniform_int(1, 40)));
  event.dpid = Dpid{static_cast<std::uint64_t>(rng.uniform_int(1, 3))};
  event.port = PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 24))};
  return event;
}

CrashOp draw_op(Rng& rng, const PolicyManager& manager) {
  CrashOp op;
  const double roll = rng.uniform_real(0.0, 1.0);
  if (roll < 0.35) {
    op.kind = CrashOp::Kind::kInsert;
    op.rule = random_rule(rng);
    op.priority = static_cast<std::uint32_t>(rng.uniform_int(1, 5));
    op.pdp = "pdp" + std::to_string(rng.uniform_int(0, 2));
  } else if (roll < 0.55) {
    const auto rules = manager.rules();
    if (rules.empty()) {
      op.kind = CrashOp::Kind::kInsert;
      op.rule = random_rule(rng);
      op.priority = static_cast<std::uint32_t>(rng.uniform_int(1, 5));
      op.pdp = "pdp" + std::to_string(rng.uniform_int(0, 2));
    } else {
      op.kind = CrashOp::Kind::kRevoke;
      op.revoke_id =
          rules[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(rules.size()) - 1))]
              .id;
    }
  } else if (roll < 0.92) {
    op.kind = CrashOp::Kind::kBinding;
    op.event = random_binding(rng);
  } else {
    op.kind = CrashOp::Kind::kCompact;
  }
  return op;
}

// Apply one op to a plane. `journal` is only consulted for compaction (the
// oracle replays with journal == nullptr, where compaction is a no-op — it
// never changes logical state). May throw CrashException when the plane's
// journal store has an armed crash point.
void apply_op(Plane& plane, Journal* journal, const CrashOp& op) {
  switch (op.kind) {
    case CrashOp::Kind::kInsert:
      plane.manager.insert(op.rule, PdpPriority{op.priority}, op.pdp);
      break;
    case CrashOp::Kind::kRevoke:
      plane.manager.revoke(op.revoke_id);
      break;
    case CrashOp::Kind::kBinding:
      plane.erm.apply(op.event);
      break;
    case CrashOp::Kind::kCompact:
      if (journal != nullptr) {
        const Status status = journal->compact(plane.manager, plane.erm);
        ASSERT_TRUE(status.ok()) << status.error().message;
      }
      break;
  }
}

std::unique_ptr<Plane> replay_oracle(const std::vector<CrashOp>& ops) {
  auto plane = std::make_unique<Plane>();
  for (const CrashOp& op : ops) apply_op(*plane, nullptr, op);
  return plane;
}

// ------------------------------------------------------------- comparisons

std::string describe_mismatch(const Plane& a, const Plane& b) {
  std::string out;
  if (save_policies(a.manager) != save_policies(b.manager)) out += " policies";
  if (save_bindings(a.erm) != save_bindings(b.erm)) out += " bindings";
  if (a.manager.epoch() != b.manager.epoch()) out += " policy-epoch";
  if (a.erm.epoch() != b.erm.epoch()) out += " binding-epoch";
  if (a.manager.next_id() != b.manager.next_id()) out += " next-id";
  return out;
}

bool state_equal(const Plane& a, const Plane& b) {
  return describe_mismatch(a, b).empty();
}

// Interned-state oracle: a recovered ERM rebuilt its interner and paged
// tables from WAL text, so every binding its canonical export names must
// resolve through the interned lookup path and answer identically via the
// live query APIs. Catches recovery bugs where the text state is right but
// the id-keyed tables (or the interner itself) diverged.
void check_interned_state(const Plane& recovered,
                          std::vector<std::string>& violations) {
  const EntityInterner& interner = recovered.erm.interner();
  for (const BindingEvent& event : recovered.erm.snapshot()) {
    switch (event.kind) {
      case BindingKind::kUserHost: {
        if (!interner.users().find(event.user.value).valid() ||
            !interner.hosts().find(event.host.value).valid()) {
          violations.push_back("interned oracle: un-interned user/host " +
                               event.user.value + "/" + event.host.value);
          return;
        }
        const auto hosts = recovered.erm.hosts_of_user(event.user);
        if (std::find(hosts.begin(), hosts.end(), event.host) == hosts.end()) {
          violations.push_back("interned oracle: hosts_of_user(" +
                               event.user.value + ") lacks " + event.host.value);
          return;
        }
        break;
      }
      case BindingKind::kHostIp: {
        const auto hosts = recovered.erm.hosts_of_ip(event.ip);
        if (std::find(hosts.begin(), hosts.end(), event.host) == hosts.end()) {
          violations.push_back("interned oracle: hosts_of_ip(" +
                               event.ip.to_string() + ") lacks " +
                               event.host.value);
          return;
        }
        break;
      }
      case BindingKind::kIpMac: {
        if (recovered.erm.mac_of_ip(event.ip) != event.mac) {
          violations.push_back("interned oracle: mac_of_ip(" +
                               event.ip.to_string() + ") != " +
                               event.mac.to_string());
          return;
        }
        break;
      }
      case BindingKind::kMacLocation: {
        const auto port = recovered.erm.location_of_mac(event.dpid, event.mac);
        if (!port.has_value() || *port != event.port) {
          violations.push_back("interned oracle: location_of_mac mismatch for " +
                               event.mac.to_string());
          return;
        }
        break;
      }
    }
  }
}

// Differential check through the query APIs: recovered and oracle planes
// must answer identically, not just serialize identically.
void check_queries(Rng& rng, const Plane& recovered, const Plane& oracle,
                   std::vector<std::string>& violations) {
  for (int i = 0; i < 6; ++i) {
    FlowView flow;
    flow.ether_type = rng.chance(0.7) ? 0x0800 : 0x0806;
    if (rng.chance(0.5)) flow.ip_proto = rng.chance(0.5) ? 6 : 17;
    const auto endpoint = [&rng](EndpointView& view) {
      if (rng.chance(0.6)) {
        view.ip = Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 30)));
      }
      if (rng.chance(0.5)) view.l4_port = static_cast<std::uint16_t>(rng.uniform_int(1, 2000));
      if (rng.chance(0.4)) view.hostnames.push_back(Hostname{"host" + std::to_string(rng.uniform_int(0, 5))});
      if (rng.chance(0.4)) view.usernames.push_back(Username{"user" + std::to_string(rng.uniform_int(0, 5))});
    };
    endpoint(flow.src);
    endpoint(flow.dst);
    const PolicyDecision got = recovered.manager.query(flow);
    const PolicyDecision want = oracle.manager.query(flow);
    if (got.action != want.action || got.rule_id != want.rule_id ||
        got.default_deny != want.default_deny) {
      violations.push_back("query divergence: recovered rule " +
                           std::to_string(got.rule_id.value) + " vs oracle " +
                           std::to_string(want.rule_id.value));
      return;
    }
  }
  for (int i = 0; i < 6; ++i) {
    const Ipv4Address ip(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 30)));
    const auto mac = MacAddress::from_u64(static_cast<std::uint64_t>(rng.uniform_int(1, 40)));
    if (recovered.erm.hosts_of_ip(ip) != oracle.erm.hosts_of_ip(ip) ||
        recovered.erm.mac_of_ip(ip) != oracle.erm.mac_of_ip(ip)) {
      violations.push_back("erm enrichment divergence at ip " + ip.to_string());
      return;
    }
    const SpoofCheck got = recovered.erm.validate(mac, ip, std::nullopt, std::nullopt);
    const SpoofCheck want = oracle.erm.validate(mac, ip, std::nullopt, std::nullopt);
    if (got.spoofed != want.spoofed) {
      violations.push_back("spoof validation divergence at ip " + ip.to_string());
      return;
    }
  }
}

// Wire-level Table-0 differential: identical Packet-in workloads through
// zero-latency PCPs over both planes must emit byte-identical FlowMods
// (cookie == deciding rule id, so this pins exact id recovery).
void check_table0(std::uint64_t seed, Rng& rng, Plane& recovered, Plane& oracle,
                  std::vector<std::string>& violations) {
  Simulator sim_a;
  Simulator sim_b;
  PcpConfig config;
  config.zero_latency = true;
  PolicyCompilationPoint pcp_a(sim_a, recovered.bus, recovered.erm,
                               recovered.manager, config, Rng(seed ^ 0x7ab1));
  PolicyCompilationPoint pcp_b(sim_b, oracle.bus, oracle.erm, oracle.manager,
                               config, Rng(seed ^ 0x7ab1));
  std::vector<std::uint8_t> wire_a;
  std::vector<std::uint8_t> wire_b;
  const auto capture = [](std::vector<std::uint8_t>& wire) {
    return [&wire](const OfMessage& message) {
      const std::vector<std::uint8_t> bytes = encode(message);
      wire.insert(wire.end(), bytes.begin(), bytes.end());
    };
  };
  pcp_a.register_switch(Dpid{1}, capture(wire_a));
  pcp_b.register_switch(Dpid{1}, capture(wire_b));

  for (int i = 0; i < 8; ++i) {
    const Packet packet = make_tcp_packet(
        MacAddress::from_u64(static_cast<std::uint64_t>(rng.uniform_int(1, 40))),
        MacAddress::from_u64(static_cast<std::uint64_t>(rng.uniform_int(1, 40))),
        Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 30))),
        Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 30))),
        static_cast<std::uint16_t>(rng.uniform_int(1, 2000)),
        static_cast<std::uint16_t>(rng.uniform_int(1, 2000)));
    PacketInMsg msg;
    msg.table_id = 0;
    msg.in_port = PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 24))};
    msg.data = packet.serialize();
    const PcpDecision a = pcp_a.decide(Dpid{1}, msg);
    const PcpDecision b = pcp_b.decide(Dpid{1}, msg);
    if (a.allow != b.allow || a.policy.rule_id != b.policy.rule_id) {
      violations.push_back("table0 decision divergence: rule " +
                           std::to_string(a.policy.rule_id.value) + " vs " +
                           std::to_string(b.policy.rule_id.value));
      return;
    }
  }
  if (wire_a != wire_b) {
    violations.push_back("table0 wire divergence: " + std::to_string(wire_a.size()) +
                         " vs " + std::to_string(wire_b.size()) + " bytes");
  }
}

// ------------------------------------------------- degraded-window I1 check

// Drive a full DfiSystem proxy session through a fail-secure degraded
// window: every table-0 Packet-in inside the window must be suppressed
// (nothing to the controller, nothing to the PCP — invariant I1), and
// recovery must clear Table 0 wholesale.
void check_degraded_window(std::uint64_t seed, Rng& rng,
                           std::vector<std::string>& violations) {
  Simulator sim;
  MessageBus bus;
  DfiConfig config = DfiConfig::functional();
  config.seed = seed;
  config.health.enabled = true;
  config.health.degraded_mode = DegradedMode::kFailSecure;
  config.health.recovering_hold = seconds(0.0);
  DfiSystem system(sim, bus, config);

  std::vector<std::vector<std::uint8_t>> to_controller;
  std::vector<std::vector<std::uint8_t>> to_switch;
  DfiProxy::Session& session = system.proxy().create_session(
      [&to_switch](const std::vector<std::uint8_t>& bytes) { to_switch.push_back(bytes); },
      [&to_controller](const std::vector<std::uint8_t>& bytes) {
        to_controller.push_back(bytes);
      });

  FeaturesReplyMsg features;
  features.datapath_id = Dpid{9};
  features.n_tables = 4;
  session.from_switch(encode(OfMessage{1, features}));
  sim.run();

  const auto send_miss = [&](std::uint16_t src_port) {
    PacketInMsg msg;
    msg.table_id = 0;
    msg.in_port = PortNo{3};
    msg.data = make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                               Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                               src_port, 80)
                   .serialize();
    session.from_switch(encode(OfMessage{2, msg}));
    sim.run();
  };

  system.health().enter_degraded("fuzz-window");
  const std::size_t controller_before = to_controller.size();
  const std::uint64_t pcp_before = system.pcp().stats().packet_ins;
  const int packets = static_cast<int>(rng.uniform_int(1, 5));
  for (int i = 0; i < packets; ++i) {
    send_miss(static_cast<std::uint16_t>(3000 + i));
  }
  if (to_controller.size() != controller_before) {
    violations.push_back("I1 violated: Packet-in reached the controller in a degraded window");
  }
  if (system.pcp().stats().packet_ins != pcp_before) {
    violations.push_back("I1 violated: Packet-in reached the PCP in a degraded window");
  }
  if (system.proxy().stats().degraded_suppressed !=
      static_cast<std::uint64_t>(packets)) {
    violations.push_back("degraded gate miscounted suppressions");
  }
  system.health().exit_degraded("fuzz-window");
  sim.run();
  if (system.pcp().stats().resync_clears < 1) {
    violations.push_back("no Table-0 resync after the degraded window closed");
  }
}

// ------------------------------------------------------------ one schedule

struct ScheduleResult {
  std::vector<std::string> violations;
  std::string trace;
  std::uint64_t crashes = 0;
  std::uint64_t torn_tails = 0;
  std::uint64_t adoptions = 0;   // durable boundary ops replayed by recovery
  std::uint64_t discards = 0;    // boundary ops lost to the crash
  std::uint64_t compactions = 0;
  std::uint64_t snapshots_loaded = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t i1_windows = 0;
};

ScheduleResult run_schedule(std::uint64_t seed) {
  ScheduleResult result;
  FaultPlan plan(seed);
  Rng& rng = plan.rng();
  InMemoryJournalStore store;
  std::vector<CrashOp> committed;
  std::optional<CrashOp> pending;  // boundary op of the previous lifetime

  const int lifetimes = static_cast<int>(rng.uniform_int(3, 6));
  for (int life = 0; life < lifetimes; ++life) {
    auto sut = std::make_unique<Plane>();
    Journal journal(store);
    const Result<JournalRecovery> recovery =
        journal.recover(sut->manager, sut->erm);
    if (!recovery.ok()) {
      result.violations.push_back("recovery failed at lifetime " +
                                  std::to_string(life) + ": " +
                                  recovery.error().message);
      break;
    }
    ++result.recoveries;
    result.records_replayed += recovery.value().records_replayed;
    if (recovery.value().tail_truncated) ++result.torn_tails;
    if (recovery.value().snapshot_loaded) ++result.snapshots_loaded;

    // Resolve the WAL boundary: the recovered state must match the oracle
    // without the crashed op, or — when its record went fully durable —
    // with it. Adopt whichever world the bytes chose.
    std::unique_ptr<Plane> oracle = replay_oracle(committed);
    if (pending.has_value()) {
      const bool without = state_equal(*sut, *oracle);
      std::vector<CrashOp> with_ops = committed;
      with_ops.push_back(*pending);
      std::unique_ptr<Plane> oracle_with = replay_oracle(with_ops);
      const bool with = state_equal(*sut, *oracle_with);
      if (with) {
        committed = std::move(with_ops);
        oracle = std::move(oracle_with);
        ++result.adoptions;
        plan.note("boundary op durable: adopted");
      } else if (without) {
        ++result.discards;
        plan.note("boundary op torn: discarded");
      } else {
        result.violations.push_back(
            "lifetime " + std::to_string(life) +
            ": recovered state matches neither oracle (without:" +
            describe_mismatch(*sut, *oracle) + ") (with:" +
            describe_mismatch(*sut, *oracle_with) + ")");
        break;
      }
      pending.reset();
    } else if (!state_equal(*sut, *oracle)) {
      result.violations.push_back("lifetime " + std::to_string(life) +
                                  ": recovered state diverged:" +
                                  describe_mismatch(*sut, *oracle));
      break;
    }
    check_queries(rng, *sut, *oracle, result.violations);
    check_interned_state(*sut, result.violations);
    if (!result.violations.empty()) break;

    // Final lifetime: no further mutations — run the wire-level epilogue on
    // the fully recovered plane and stop.
    if (life + 1 == lifetimes) {
      check_table0(seed, rng, *sut, *oracle, result.violations);
      break;
    }

    // Run a random op burst with a seeded kill armed. Each journaled op
    // costs two durable store ops (append + sync), compaction two more, so
    // the crash point window covers the whole burst with room to miss —
    // lifetimes that outlive their kill shut down cleanly.
    sut->manager.attach_journal(&journal);
    sut->erm.attach_journal(&journal);
    const int budget = static_cast<int>(rng.uniform_int(4, 16));
    store.arm_crash(plan.draw_crash_point(
        static_cast<std::uint64_t>(2 * budget + 2)));
    bool crashed = false;
    for (int i = 0; i < budget && !crashed; ++i) {
      const CrashOp op = draw_op(rng, sut->manager);
      try {
        apply_op(*sut, &journal, op);
        if (op.kind == CrashOp::Kind::kCompact) {
          ++result.compactions;
        } else {
          committed.push_back(op);
        }
      } catch (const CrashException&) {
        crashed = true;
        ++result.crashes;
        plan.note("crash at lifetime " + std::to_string(life) + " op " +
                  std::to_string(i));
        // A compaction crash has no logical boundary op: the store holds
        // either the old or the new image of the same state.
        if (op.kind != CrashOp::Kind::kCompact) pending = op;
      }
    }
    if (!crashed) store.disarm();
  }

  if (seed % 4 == 0 && result.violations.empty()) {
    check_degraded_window(seed, rng, result.violations);
    ++result.i1_windows;
  }
  result.trace = plan.trace();
  return result;
}

std::string replay_instructions(std::uint64_t seed) {
  return "replay: DFI_FUZZ_SEED=" + std::to_string(seed) +
         " ./crash_recovery_fuzz_test";
}

void expect_clean(std::uint64_t seed, const ScheduleResult& result) {
  if (result.violations.empty()) return;
  std::string details;
  for (const std::string& violation : result.violations) {
    details += "  " + violation + "\n";
  }
  ADD_FAILURE() << result.violations.size() << " violation(s) at seed " << seed
                << ":\n"
                << details << replay_instructions(seed);
}

// ------------------------------------------------------------ the campaign

TEST(CrashRecoveryFuzz, Campaign) {
  std::size_t schedules = g_total_schedules;
  if (g_seed_override.has_value()) schedules = 1;
  ScheduleResult coverage;
  for (std::size_t i = 0; i < schedules; ++i) {
    const std::uint64_t seed =
        g_seed_override.value_or(0xc4a5ull * 1000003ull + i);
    const ScheduleResult result = run_schedule(seed);
    expect_clean(seed, result);
    coverage.crashes += result.crashes;
    coverage.torn_tails += result.torn_tails;
    coverage.adoptions += result.adoptions;
    coverage.discards += result.discards;
    coverage.compactions += result.compactions;
    coverage.snapshots_loaded += result.snapshots_loaded;
    coverage.records_replayed += result.records_replayed;
    coverage.recoveries += result.recoveries;
    coverage.i1_windows += result.i1_windows;
    if (::testing::Test::HasFailure()) break;  // first failing seed is enough
  }
  if (g_seed_override.has_value()) return;
  // The campaign must have exercised every crash class it claims to cover.
  EXPECT_GT(coverage.crashes, 0u);
  EXPECT_GT(coverage.torn_tails, 0u);        // partial tears truncated
  EXPECT_GT(coverage.adoptions, 0u);         // durable boundary ops replayed
  EXPECT_GT(coverage.discards, 0u);          // torn boundary ops lost
  EXPECT_GT(coverage.compactions, 0u);
  EXPECT_GT(coverage.snapshots_loaded, 0u);  // recovery from a compacted log
  EXPECT_GT(coverage.records_replayed, 0u);
  EXPECT_GT(coverage.recoveries, schedules);  // several lifetimes per schedule
  EXPECT_GT(coverage.i1_windows, 0u);
}

// Same seed => byte-identical crash schedule, trace and outcome. The replay
// contract the DFI_FUZZ_SEED workflow rests on.
TEST(CrashRecoveryFuzz, ScheduleIsDeterministic) {
  const std::uint64_t seed = g_seed_override.value_or(1234567);
  const ScheduleResult a = run_schedule(seed);
  const ScheduleResult b = run_schedule(seed);
  expect_clean(seed, a);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.torn_tails, b.torn_tails);
  EXPECT_EQ(a.adoptions, b.adoptions);
  EXPECT_EQ(a.records_replayed, b.records_replayed);
}

}  // namespace
}  // namespace dfi

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  dfi::Logger::instance().set_level(dfi::LogLevel::kError);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      dfi::g_seed_override = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--schedules=", 0) == 0) {
      dfi::g_total_schedules = std::strtoull(arg.c_str() + 12, nullptr, 10);
    }
  }
  if (const char* seed = std::getenv("DFI_FUZZ_SEED")) {
    dfi::g_seed_override = std::strtoull(seed, nullptr, 10);
  }
  if (const char* schedules = std::getenv("DFI_FUZZ_SCHEDULES")) {
    dfi::g_total_schedules = std::strtoull(schedules, nullptr, 10);
  }
  return RUN_ALL_TESTS();
}
