// Crash-recovery fuzz campaign (DESIGN.md §6).
//
// Hundreds of seeded kill/restart schedules against the journaled control
// plane: each schedule runs several "process lifetimes" of random policy
// inserts/revokes, binding events and compactions against a journal whose
// store is armed with a FaultPlan crash point, kills the process mid-durable
// -operation, restarts, and recovers. After every recovery the restored
// state must be byte-identical to a never-crashed oracle:
//
//   * save_policies/save_bindings text equal (rule ids, PDP ownership,
//     priorities, binding sets),
//   * policy and binding epochs and next_id equal,
//   * random policy queries, enrichments and spoof validations equal
//     (differential check through the public query API),
//   * compiled Table-0 rules byte-identical on the wire for a shared
//     packet workload (cookies cite rule ids, so this pins id recovery).
//
// The WAL boundary op is genuinely ambiguous: a crash during append can
// leave the record fully durable (tear == 1.0, or the kill landed on the
// sync after the append) even though the dying process never applied it in
// memory. Recovery then correctly replays an operation the crashed process
// never saw complete. The oracle accepts either world — the recovered state
// must match the oracle *without* the boundary op or the oracle *with* it,
// and the campaign continues from whichever matched. Anything else is a
// violation.
//
// Every fourth schedule additionally drives a degraded window through a
// full DfiSystem proxy session and asserts invariant I1: with fail-secure
// gating, no Packet-in reaches the controller (or the PCP) while the window
// is open, and Table 0 is resynced wholesale on recovery.
//
// Reproduction mirrors the invariant fuzzer: DFI_FUZZ_SEED=<seed> (or
// --seed=<seed>) replays one schedule; DFI_FUZZ_SCHEDULES=<n> (or
// --schedules=<n>) bounds the campaign (CI's sanitizer stages use this).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <deque>
#include <utility>

#include "bus/message_bus.h"
#include "common/logging.h"
#include "core/dfi_system.h"
#include "core/health_monitor.h"
#include "core/journal.h"
#include "core/pcp.h"
#include "core/persistence.h"
#include "fault/fault_plan.h"
#include "openflow/wire.h"
#include "replication/replica.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

std::optional<std::uint64_t> g_seed_override;
std::size_t g_total_schedules = 600;

// ----------------------------------------------------------- op vocabulary

// One logical control-plane mutation. Schedules record every *committed* op
// so the oracle can be reconstructed at any process boundary by replaying
// the list into a fresh plane.
struct CrashOp {
  enum class Kind { kInsert, kRevoke, kBinding, kCompact };
  Kind kind = Kind::kInsert;
  PolicyRule rule;           // kInsert
  std::uint32_t priority = 0;
  std::string pdp;
  PolicyRuleId revoke_id{};  // kRevoke
  BindingEvent event;        // kBinding
};

struct Plane {
  Plane() : manager(bus), erm(bus) {}
  MessageBus bus;
  PolicyManager manager;
  EntityResolutionManager erm;
};

PolicyRule random_rule(Rng& rng) {
  PolicyRule rule;
  rule.action = rng.chance(0.5) ? PolicyAction::kAllow : PolicyAction::kDeny;
  if (rng.chance(0.6)) rule.properties.ether_type = 0x0800;
  if (rng.chance(0.4)) rule.properties.ip_proto = rng.chance(0.5) ? 6 : 17;
  const auto endpoint = [&rng](EndpointSpec& spec) {
    if (rng.chance(0.3)) spec.user = Username{"user" + std::to_string(rng.uniform_int(0, 5))};
    if (rng.chance(0.3)) spec.host = Hostname{"host" + std::to_string(rng.uniform_int(0, 5))};
    if (rng.chance(0.4)) {
      spec.ip = Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 30)));
    }
    if (rng.chance(0.3)) spec.l4_port = static_cast<std::uint16_t>(rng.uniform_int(1, 2000));
  };
  endpoint(rule.source);
  endpoint(rule.destination);
  return rule;
}

BindingEvent random_binding(Rng& rng) {
  BindingEvent event;
  event.kind = static_cast<BindingKind>(rng.uniform_int(0, 3));
  event.retracted = rng.chance(0.25);
  event.user = Username{"user" + std::to_string(rng.uniform_int(0, 5))};
  event.host = Hostname{"host" + std::to_string(rng.uniform_int(0, 5))};
  event.ip = Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 30)));
  event.mac = MacAddress::from_u64(static_cast<std::uint64_t>(rng.uniform_int(1, 40)));
  event.dpid = Dpid{static_cast<std::uint64_t>(rng.uniform_int(1, 3))};
  event.port = PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 24))};
  return event;
}

CrashOp draw_op(Rng& rng, const PolicyManager& manager) {
  CrashOp op;
  const double roll = rng.uniform_real(0.0, 1.0);
  if (roll < 0.35) {
    op.kind = CrashOp::Kind::kInsert;
    op.rule = random_rule(rng);
    op.priority = static_cast<std::uint32_t>(rng.uniform_int(1, 5));
    op.pdp = "pdp" + std::to_string(rng.uniform_int(0, 2));
  } else if (roll < 0.55) {
    const auto rules = manager.rules();
    if (rules.empty()) {
      op.kind = CrashOp::Kind::kInsert;
      op.rule = random_rule(rng);
      op.priority = static_cast<std::uint32_t>(rng.uniform_int(1, 5));
      op.pdp = "pdp" + std::to_string(rng.uniform_int(0, 2));
    } else {
      op.kind = CrashOp::Kind::kRevoke;
      op.revoke_id =
          rules[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(rules.size()) - 1))]
              .id;
    }
  } else if (roll < 0.92) {
    op.kind = CrashOp::Kind::kBinding;
    op.event = random_binding(rng);
  } else {
    op.kind = CrashOp::Kind::kCompact;
  }
  return op;
}

// Apply one op to a plane. `journal` is only consulted for compaction (the
// oracle replays with journal == nullptr, where compaction is a no-op — it
// never changes logical state). May throw CrashException when the plane's
// journal store has an armed crash point.
void apply_op(Plane& plane, Journal* journal, const CrashOp& op) {
  switch (op.kind) {
    case CrashOp::Kind::kInsert:
      plane.manager.insert(op.rule, PdpPriority{op.priority}, op.pdp);
      break;
    case CrashOp::Kind::kRevoke:
      plane.manager.revoke(op.revoke_id);
      break;
    case CrashOp::Kind::kBinding:
      plane.erm.apply(op.event);
      break;
    case CrashOp::Kind::kCompact:
      if (journal != nullptr) {
        const Status status = journal->compact(plane.manager, plane.erm);
        ASSERT_TRUE(status.ok()) << status.error().message;
      }
      break;
  }
}

std::unique_ptr<Plane> replay_oracle(const std::vector<CrashOp>& ops) {
  auto plane = std::make_unique<Plane>();
  for (const CrashOp& op : ops) apply_op(*plane, nullptr, op);
  return plane;
}

// ------------------------------------------------------------- comparisons

std::string describe_mismatch(const Plane& a, const Plane& b) {
  std::string out;
  if (save_policies(a.manager) != save_policies(b.manager)) out += " policies";
  if (save_bindings(a.erm) != save_bindings(b.erm)) out += " bindings";
  if (a.manager.epoch() != b.manager.epoch()) out += " policy-epoch";
  if (a.erm.epoch() != b.erm.epoch()) out += " binding-epoch";
  if (a.manager.next_id() != b.manager.next_id()) out += " next-id";
  return out;
}

bool state_equal(const Plane& a, const Plane& b) {
  return describe_mismatch(a, b).empty();
}

// Interned-state oracle: a recovered ERM rebuilt its interner and paged
// tables from WAL text, so every binding its canonical export names must
// resolve through the interned lookup path and answer identically via the
// live query APIs. Catches recovery bugs where the text state is right but
// the id-keyed tables (or the interner itself) diverged.
void check_interned_state(const Plane& recovered,
                          std::vector<std::string>& violations) {
  const EntityInterner& interner = recovered.erm.interner();
  for (const BindingEvent& event : recovered.erm.snapshot()) {
    switch (event.kind) {
      case BindingKind::kUserHost: {
        if (!interner.users().find(event.user.value).valid() ||
            !interner.hosts().find(event.host.value).valid()) {
          violations.push_back("interned oracle: un-interned user/host " +
                               event.user.value + "/" + event.host.value);
          return;
        }
        const auto hosts = recovered.erm.hosts_of_user(event.user);
        if (std::find(hosts.begin(), hosts.end(), event.host) == hosts.end()) {
          violations.push_back("interned oracle: hosts_of_user(" +
                               event.user.value + ") lacks " + event.host.value);
          return;
        }
        break;
      }
      case BindingKind::kHostIp: {
        const auto hosts = recovered.erm.hosts_of_ip(event.ip);
        if (std::find(hosts.begin(), hosts.end(), event.host) == hosts.end()) {
          violations.push_back("interned oracle: hosts_of_ip(" +
                               event.ip.to_string() + ") lacks " +
                               event.host.value);
          return;
        }
        break;
      }
      case BindingKind::kIpMac: {
        if (recovered.erm.mac_of_ip(event.ip) != event.mac) {
          violations.push_back("interned oracle: mac_of_ip(" +
                               event.ip.to_string() + ") != " +
                               event.mac.to_string());
          return;
        }
        break;
      }
      case BindingKind::kMacLocation: {
        const auto port = recovered.erm.location_of_mac(event.dpid, event.mac);
        if (!port.has_value() || *port != event.port) {
          violations.push_back("interned oracle: location_of_mac mismatch for " +
                               event.mac.to_string());
          return;
        }
        break;
      }
    }
  }
}

// Differential check through the query APIs: recovered and oracle planes
// must answer identically, not just serialize identically.
void check_queries(Rng& rng, const Plane& recovered, const Plane& oracle,
                   std::vector<std::string>& violations) {
  for (int i = 0; i < 6; ++i) {
    FlowView flow;
    flow.ether_type = rng.chance(0.7) ? 0x0800 : 0x0806;
    if (rng.chance(0.5)) flow.ip_proto = rng.chance(0.5) ? 6 : 17;
    const auto endpoint = [&rng](EndpointView& view) {
      if (rng.chance(0.6)) {
        view.ip = Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 30)));
      }
      if (rng.chance(0.5)) view.l4_port = static_cast<std::uint16_t>(rng.uniform_int(1, 2000));
      if (rng.chance(0.4)) view.hostnames.push_back(Hostname{"host" + std::to_string(rng.uniform_int(0, 5))});
      if (rng.chance(0.4)) view.usernames.push_back(Username{"user" + std::to_string(rng.uniform_int(0, 5))});
    };
    endpoint(flow.src);
    endpoint(flow.dst);
    const PolicyDecision got = recovered.manager.query(flow);
    const PolicyDecision want = oracle.manager.query(flow);
    if (got.action != want.action || got.rule_id != want.rule_id ||
        got.default_deny != want.default_deny) {
      violations.push_back("query divergence: recovered rule " +
                           std::to_string(got.rule_id.value) + " vs oracle " +
                           std::to_string(want.rule_id.value));
      return;
    }
  }
  for (int i = 0; i < 6; ++i) {
    const Ipv4Address ip(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 30)));
    const auto mac = MacAddress::from_u64(static_cast<std::uint64_t>(rng.uniform_int(1, 40)));
    if (recovered.erm.hosts_of_ip(ip) != oracle.erm.hosts_of_ip(ip) ||
        recovered.erm.mac_of_ip(ip) != oracle.erm.mac_of_ip(ip)) {
      violations.push_back("erm enrichment divergence at ip " + ip.to_string());
      return;
    }
    const SpoofCheck got = recovered.erm.validate(mac, ip, std::nullopt, std::nullopt);
    const SpoofCheck want = oracle.erm.validate(mac, ip, std::nullopt, std::nullopt);
    if (got.spoofed != want.spoofed) {
      violations.push_back("spoof validation divergence at ip " + ip.to_string());
      return;
    }
  }
}

// Wire-level Table-0 differential: identical Packet-in workloads through
// zero-latency PCPs over both planes must emit byte-identical FlowMods
// (cookie == deciding rule id, so this pins exact id recovery).
void check_table0(std::uint64_t seed, Rng& rng, Plane& recovered, Plane& oracle,
                  std::vector<std::string>& violations) {
  Simulator sim_a;
  Simulator sim_b;
  PcpConfig config;
  config.zero_latency = true;
  PolicyCompilationPoint pcp_a(sim_a, recovered.bus, recovered.erm,
                               recovered.manager, config, Rng(seed ^ 0x7ab1));
  PolicyCompilationPoint pcp_b(sim_b, oracle.bus, oracle.erm, oracle.manager,
                               config, Rng(seed ^ 0x7ab1));
  std::vector<std::uint8_t> wire_a;
  std::vector<std::uint8_t> wire_b;
  const auto capture = [](std::vector<std::uint8_t>& wire) {
    return [&wire](const OfMessage& message) {
      const std::vector<std::uint8_t> bytes = encode(message);
      wire.insert(wire.end(), bytes.begin(), bytes.end());
    };
  };
  pcp_a.register_switch(Dpid{1}, capture(wire_a));
  pcp_b.register_switch(Dpid{1}, capture(wire_b));

  for (int i = 0; i < 8; ++i) {
    const Packet packet = make_tcp_packet(
        MacAddress::from_u64(static_cast<std::uint64_t>(rng.uniform_int(1, 40))),
        MacAddress::from_u64(static_cast<std::uint64_t>(rng.uniform_int(1, 40))),
        Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 30))),
        Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 30))),
        static_cast<std::uint16_t>(rng.uniform_int(1, 2000)),
        static_cast<std::uint16_t>(rng.uniform_int(1, 2000)));
    PacketInMsg msg;
    msg.table_id = 0;
    msg.in_port = PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 24))};
    msg.data = packet.serialize();
    const PcpDecision a = pcp_a.decide(Dpid{1}, msg);
    const PcpDecision b = pcp_b.decide(Dpid{1}, msg);
    if (a.allow != b.allow || a.policy.rule_id != b.policy.rule_id) {
      violations.push_back("table0 decision divergence: rule " +
                           std::to_string(a.policy.rule_id.value) + " vs " +
                           std::to_string(b.policy.rule_id.value));
      return;
    }
  }
  if (wire_a != wire_b) {
    violations.push_back("table0 wire divergence: " + std::to_string(wire_a.size()) +
                         " vs " + std::to_string(wire_b.size()) + " bytes");
  }
}

// ------------------------------------------------- degraded-window I1 check

// Drive a full DfiSystem proxy session through a fail-secure degraded
// window: every table-0 Packet-in inside the window must be suppressed
// (nothing to the controller, nothing to the PCP — invariant I1), and
// recovery must clear Table 0 wholesale.
void check_degraded_window(std::uint64_t seed, Rng& rng,
                           std::vector<std::string>& violations) {
  Simulator sim;
  MessageBus bus;
  DfiConfig config = DfiConfig::functional();
  config.seed = seed;
  config.health.enabled = true;
  config.health.degraded_mode = DegradedMode::kFailSecure;
  config.health.recovering_hold = seconds(0.0);
  DfiSystem system(sim, bus, config);

  std::vector<std::vector<std::uint8_t>> to_controller;
  std::vector<std::vector<std::uint8_t>> to_switch;
  DfiProxy::Session& session = system.proxy().create_session(
      [&to_switch](const std::vector<std::uint8_t>& bytes) { to_switch.push_back(bytes); },
      [&to_controller](const std::vector<std::uint8_t>& bytes) {
        to_controller.push_back(bytes);
      });

  FeaturesReplyMsg features;
  features.datapath_id = Dpid{9};
  features.n_tables = 4;
  session.from_switch(encode(OfMessage{1, features}));
  sim.run();

  const auto send_miss = [&](std::uint16_t src_port) {
    PacketInMsg msg;
    msg.table_id = 0;
    msg.in_port = PortNo{3};
    msg.data = make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                               Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                               src_port, 80)
                   .serialize();
    session.from_switch(encode(OfMessage{2, msg}));
    sim.run();
  };

  system.health().enter_degraded("fuzz-window");
  const std::size_t controller_before = to_controller.size();
  const std::uint64_t pcp_before = system.pcp().stats().packet_ins;
  const int packets = static_cast<int>(rng.uniform_int(1, 5));
  for (int i = 0; i < packets; ++i) {
    send_miss(static_cast<std::uint16_t>(3000 + i));
  }
  if (to_controller.size() != controller_before) {
    violations.push_back("I1 violated: Packet-in reached the controller in a degraded window");
  }
  if (system.pcp().stats().packet_ins != pcp_before) {
    violations.push_back("I1 violated: Packet-in reached the PCP in a degraded window");
  }
  if (system.proxy().stats().degraded_suppressed !=
      static_cast<std::uint64_t>(packets)) {
    violations.push_back("degraded gate miscounted suppressions");
  }
  system.health().exit_degraded("fuzz-window");
  sim.run();
  if (system.pcp().stats().resync_clears < 1) {
    violations.push_back("no Table-0 resync after the degraded window closed");
  }
}

// ------------------------------------------------------------ one schedule

struct ScheduleResult {
  std::vector<std::string> violations;
  std::string trace;
  std::uint64_t crashes = 0;
  std::uint64_t torn_tails = 0;
  std::uint64_t adoptions = 0;   // durable boundary ops replayed by recovery
  std::uint64_t discards = 0;    // boundary ops lost to the crash
  std::uint64_t compactions = 0;
  std::uint64_t snapshots_loaded = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t i1_windows = 0;
};

ScheduleResult run_schedule(std::uint64_t seed) {
  ScheduleResult result;
  FaultPlan plan(seed);
  Rng& rng = plan.rng();
  InMemoryJournalStore store;
  std::vector<CrashOp> committed;
  std::optional<CrashOp> pending;  // boundary op of the previous lifetime

  const int lifetimes = static_cast<int>(rng.uniform_int(3, 6));
  for (int life = 0; life < lifetimes; ++life) {
    auto sut = std::make_unique<Plane>();
    Journal journal(store);
    const Result<JournalRecovery> recovery =
        journal.recover(sut->manager, sut->erm);
    if (!recovery.ok()) {
      result.violations.push_back("recovery failed at lifetime " +
                                  std::to_string(life) + ": " +
                                  recovery.error().message);
      break;
    }
    ++result.recoveries;
    result.records_replayed += recovery.value().records_replayed;
    if (recovery.value().tail_truncated) ++result.torn_tails;
    if (recovery.value().snapshot_loaded) ++result.snapshots_loaded;

    // Resolve the WAL boundary: the recovered state must match the oracle
    // without the crashed op, or — when its record went fully durable —
    // with it. Adopt whichever world the bytes chose.
    std::unique_ptr<Plane> oracle = replay_oracle(committed);
    if (pending.has_value()) {
      const bool without = state_equal(*sut, *oracle);
      std::vector<CrashOp> with_ops = committed;
      with_ops.push_back(*pending);
      std::unique_ptr<Plane> oracle_with = replay_oracle(with_ops);
      const bool with = state_equal(*sut, *oracle_with);
      if (with) {
        committed = std::move(with_ops);
        oracle = std::move(oracle_with);
        ++result.adoptions;
        plan.note("boundary op durable: adopted");
      } else if (without) {
        ++result.discards;
        plan.note("boundary op torn: discarded");
      } else {
        result.violations.push_back(
            "lifetime " + std::to_string(life) +
            ": recovered state matches neither oracle (without:" +
            describe_mismatch(*sut, *oracle) + ") (with:" +
            describe_mismatch(*sut, *oracle_with) + ")");
        break;
      }
      pending.reset();
    } else if (!state_equal(*sut, *oracle)) {
      result.violations.push_back("lifetime " + std::to_string(life) +
                                  ": recovered state diverged:" +
                                  describe_mismatch(*sut, *oracle));
      break;
    }
    check_queries(rng, *sut, *oracle, result.violations);
    check_interned_state(*sut, result.violations);
    if (!result.violations.empty()) break;

    // Final lifetime: no further mutations — run the wire-level epilogue on
    // the fully recovered plane and stop.
    if (life + 1 == lifetimes) {
      check_table0(seed, rng, *sut, *oracle, result.violations);
      break;
    }

    // Run a random op burst with a seeded kill armed. Each journaled op
    // costs two durable store ops (append + sync), compaction two more, so
    // the crash point window covers the whole burst with room to miss —
    // lifetimes that outlive their kill shut down cleanly.
    sut->manager.attach_journal(&journal);
    sut->erm.attach_journal(&journal);
    const int budget = static_cast<int>(rng.uniform_int(4, 16));
    store.arm_crash(plan.draw_crash_point(
        static_cast<std::uint64_t>(2 * budget + 2)));
    bool crashed = false;
    for (int i = 0; i < budget && !crashed; ++i) {
      const CrashOp op = draw_op(rng, sut->manager);
      try {
        apply_op(*sut, &journal, op);
        if (op.kind == CrashOp::Kind::kCompact) {
          ++result.compactions;
        } else {
          committed.push_back(op);
        }
      } catch (const CrashException&) {
        crashed = true;
        ++result.crashes;
        plan.note("crash at lifetime " + std::to_string(life) + " op " +
                  std::to_string(i));
        // A compaction crash has no logical boundary op: the store holds
        // either the old or the new image of the same state.
        if (op.kind != CrashOp::Kind::kCompact) pending = op;
      }
    }
    if (!crashed) store.disarm();
  }

  if (seed % 4 == 0 && result.violations.empty()) {
    check_degraded_window(seed, rng, result.violations);
    ++result.i1_windows;
  }
  result.trace = plan.trace();
  return result;
}

// ===================================================================
// Two-replica campaign: warm-standby pair under seeded kills on EITHER
// side, link faults (partitions, torn chunking, frame corruption), fenced
// failover and byte-identical promotion (DESIGN.md §6.3).
//
// Invariants checked every schedule:
//   * after every kill, the survivor's plane is byte-identical to the
//     no-failure oracle replayed over SOME prefix of the committed ops —
//     never a mix, never a mutation the pair did not perform;
//   * the prefix never regresses below what was last verified durable;
//   * a deposed primary holding a stale fence NEVER appends: its next
//     local mutation throws FencedException and its store bytes are
//     untouched;
//   * every promotion runs inside an open degraded window (the fail-secure
//     gate that keeps I1 over the handover — the window's suppression
//     semantics are proven by check_degraded_window on the same seeds);
//   * after the pair quiesces, both nodes equal the full oracle, and the
//     epilogue differential (queries, interned state, Table-0 wire) holds.

// One machine of the pair. The store survives process deaths; the plane,
// journal and Replica are one process incarnation.
struct ReplMachine {
  ReplMachine(Simulator& sim, MessageBus& health_bus, std::uint64_t seed)
      : health(sim, health_bus, failover_config(), Rng(seed)) {}

  static HealthConfig failover_config() {
    HealthConfig config;
    config.enabled = true;
    return config;
  }

  // Start a fresh process. `recover` replays the machine's own WAL (the
  // restarted-survivor path); a rejoining standby boots empty instead and
  // re-seeds from the primary's snapshot.
  void boot(bool recover, std::uint64_t replica_seed,
            std::vector<std::string>& violations) {
    kill();
    plane = std::make_unique<Plane>();
    journal = std::make_unique<Journal>(store);
    if (recover) {
      const Result<JournalRecovery> recovery =
          journal->recover(plane->manager, plane->erm);
      if (!recovery.ok()) {
        violations.push_back("survivor WAL recovery failed: " +
                             recovery.error().message);
      }
    }
    plane->manager.attach_journal(journal.get());
    plane->erm.attach_journal(journal.get());
    ReplicaConfig config;
    config.seed = replica_seed;
    replica = std::make_unique<Replica>(config, *journal, plane->manager,
                                        plane->erm, &health);
  }

  void kill() {
    replica.reset();  // detaches the journal's append observer
    journal.reset();
    plane.reset();
  }

  bool alive() const { return replica != nullptr; }

  InMemoryJournalStore store;
  HealthMonitor health;
  std::unique_ptr<Plane> plane;
  std::unique_ptr<Journal> journal;
  std::unique_ptr<Replica> replica;
};

// Queued byte link between the pair: sends enqueue, pump() delivers FIFO
// in torn chunks. partition() silently eats bytes (the sender still
// believes the link is up); drop_end() is a process death (RST the peer
// observes). CrashException out of pump() is the standby's store dying
// mid-ingest.
struct ReplFuzzLink {
  void bind(int side, Replica& replica) {
    ends[side] = &replica;
    replica.set_send([this, side](const std::string& bytes) {
      if (partitioned) return;
      queue.emplace_back(1 - side, bytes);
    });
  }

  void drop_end(int side) {
    queue.clear();
    ends[side] = nullptr;
    if (ends[1 - side] != nullptr) ends[1 - side]->on_link_down();
  }

  void partition() {
    partitioned = true;
    queue.clear();
  }
  void heal() { partitioned = false; }

  // RST both ends observe (poisoned-decoder teardown).
  void bounce() {
    queue.clear();
    for (Replica* end : ends) {
      if (end != nullptr) end->on_link_down();
    }
  }

  void pump(Rng& chunker) {
    while (!queue.empty()) {
      auto [dest, bytes] = std::move(queue.front());
      queue.pop_front();
      Replica* target = ends[dest];
      if (target == nullptr) continue;  // destination process is dead
      const auto* data = reinterpret_cast<const std::uint8_t*>(bytes.data());
      std::size_t off = 0;
      while (off < bytes.size()) {
        const auto want = static_cast<std::size_t>(chunker.uniform_int(1, 512));
        const std::size_t take = std::min(want, bytes.size() - off);
        target->on_bytes(data + off, take);
        off += take;
      }
    }
  }

  Replica* ends[2] = {nullptr, nullptr};
  std::deque<std::pair<int, std::string>> queue;
  bool partitioned = false;
};

struct ReplScheduleResult {
  std::vector<std::string> violations;
  std::string trace;
  std::uint64_t primary_kills = 0;
  std::uint64_t standby_kills = 0;
  std::uint64_t promotions = 0;
  std::uint64_t wal_survivor_promotions = 0;  // standby restarted from own WAL
  std::uint64_t fence_refusals = 0;           // stale-fence appends refused
  std::uint64_t split_brains = 0;
  std::uint64_t snapshot_rejoins = 0;
  std::uint64_t tail_catchups = 0;
  std::uint64_t corruptions = 0;
  std::uint64_t lost_op_suffixes = 0;  // unreplicated ops discarded by failover
  std::uint64_t i1_windows = 0;
};

// The survivor must equal the oracle over some prefix of `committed` no
// shorter than `floor` (the last verified durable point). Returns the
// matched prefix length, or -1.
std::ptrdiff_t find_matching_prefix(const Plane& survivor,
                                    const std::vector<CrashOp>& committed,
                                    std::size_t floor) {
  for (std::size_t k = committed.size() + 1; k-- > 0;) {
    if (k < floor) break;
    const std::vector<CrashOp> prefix(committed.begin(),
                                      committed.begin() + static_cast<std::ptrdiff_t>(k));
    if (state_equal(survivor, *replay_oracle(prefix))) {
      return static_cast<std::ptrdiff_t>(k);
    }
  }
  return -1;
}

ReplScheduleResult run_replicated_schedule(std::uint64_t seed) {
  ReplScheduleResult result;
  FaultPlan plan(seed);
  Rng& rng = plan.rng();

  Simulator sim;
  MessageBus health_bus;
  ReplMachine machines[2] = {{sim, health_bus, seed ^ 0xaa},
                             {sim, health_bus, seed ^ 0xbb}};
  ReplFuzzLink link;
  std::vector<CrashOp> committed;
  std::size_t floor = 0;  // ops verified durable on the current primary chain
  int prim = 0;

  // Every promotion must happen inside an open degraded window: the
  // fail-secure gate is what holds I1 over the handover.
  const auto wire_promotion = [&](int side, ReplicaRole role) {
    machines[side].health.enable_failover(role, [&, side] {
      if (machines[side].health.state() == HealthState::kHealthy) {
        result.violations.push_back("promotion ran outside a degraded window");
      }
      machines[side].replica->promote();
      ++result.promotions;
    });
  };

  machines[0].boot(false, seed ^ 0x1, result.violations);
  machines[1].boot(false, seed ^ 0x2, result.violations);
  wire_promotion(0, ReplicaRole::kPrimary);
  wire_promotion(1, ReplicaRole::kStandby);
  link.bind(0, *machines[0].replica);
  link.bind(1, *machines[1].replica);
  machines[0].replica->become_primary();
  machines[1].replica->become_standby();
  link.pump(rng);
  if (machines[1].replica->stats().snapshots_installed != 1) {
    result.violations.push_back("standby bootstrap snapshot never installed");
  }

  const auto pump_standby = [&]() -> bool {
    // Returns false when the standby's store died mid-ingest.
    try {
      link.pump(rng);
      return true;
    } catch (const CrashException&) {
      return false;
    }
  };

  const int rounds = static_cast<int>(rng.uniform_int(2, 4));
  for (int round = 0; round < rounds && result.violations.empty(); ++round) {
    const int stby = 1 - prim;
    ReplMachine& primary = machines[prim];
    ReplMachine& standby = machines[stby];

    // Rejoin a machine the previous round killed: fresh process, empty
    // plane, snapshot re-seed from the live primary.
    if (!standby.alive()) {
      standby.boot(false, seed ^ static_cast<std::uint64_t>(0x100 + round),
                   result.violations);
      standby.health.set_role(ReplicaRole::kStandby);
      link.bind(stby, *standby.replica);
      const std::uint64_t before = standby.replica->stats().snapshots_installed;
      standby.replica->become_standby();
      if (!pump_standby()) {  // ingest cannot throw here: store disarmed
        result.violations.push_back("rejoin pump crashed unexpectedly");
        break;
      }
      if (standby.replica->stats().snapshots_installed != before + 1) {
        result.violations.push_back("rejoined standby did not snapshot-seed");
        break;
      }
      ++result.snapshot_rejoins;
    }

    const double scenario = rng.uniform_real(0.0, 1.0);
    if (scenario < 0.25) {
      // ---------------------------------------------- split-brain round
      // Network split: the standby promotes while the old primary keeps
      // running, oblivious. On heal the survivor fences it.
      ++result.split_brains;
      plan.note("round " + std::to_string(round) + ": split-brain");
      link.partition();
      // Ops committed during the split ship into the void: promotion will
      // discard this unreplicated suffix (the lost-update window every
      // asynchronous-replication failover has).
      const int split_ops = static_cast<int>(rng.uniform_int(0, 3));
      for (int i = 0; i < split_ops; ++i) {
        const CrashOp op = draw_op(rng, primary.plane->manager);
        try {
          apply_op(*primary.plane, primary.journal.get(), op);
          if (op.kind != CrashOp::Kind::kCompact) committed.push_back(op);
        } catch (const CrashException&) {
          result.violations.push_back("unexpected crash during split burst");
        }
      }
      if (!result.violations.empty()) break;
      standby.health.promote_now();
      if (!standby.replica->is_primary()) {
        result.violations.push_back("promote_now did not promote the standby");
        break;
      }
      const std::ptrdiff_t k =
          find_matching_prefix(*standby.plane, committed, floor);
      if (k < 0) {
        result.violations.push_back(
            "split-brain survivor matches no committed prefix (floor " +
            std::to_string(floor) + ")");
        break;
      }
      result.lost_op_suffixes +=
          committed.size() - static_cast<std::size_t>(k);
      committed.resize(static_cast<std::size_t>(k));
      floor = committed.size();
      link.heal();

      // The deposed primary pushes one more mutation before it learns of
      // the new epoch: it applies locally and ships a stale-fenced record
      // that the survivor must reject without applying. (Compaction ships
      // nothing, so draw until we get a real mutation.)
      const auto draw_mutation = [&](const PolicyManager& manager) {
        CrashOp op = draw_op(rng, manager);
        while (op.kind == CrashOp::Kind::kCompact) op = draw_op(rng, manager);
        return op;
      };
      const CrashOp stale = draw_mutation(primary.plane->manager);
      try {
        apply_op(*primary.plane, primary.journal.get(), stale);
      } catch (const CrashException&) {
        result.violations.push_back("unexpected crash applying stale op");
        break;
      }
      // The zombie still believes it is primary, so its heartbeat fires
      // too — fence discovery must work even when the record itself never
      // shipped (an unsynced zombie buffers instead of streaming).
      primary.replica->tick_heartbeat();
      const std::string survivor_image_before =
          save_policies(standby.plane->manager) +
          save_bindings(standby.plane->erm);
      if (!pump_standby()) {
        result.violations.push_back("unexpected standby crash in fence round");
        break;
      }
      if (save_policies(standby.plane->manager) +
              save_bindings(standby.plane->erm) !=
          survivor_image_before) {
        result.violations.push_back("stale-fenced record mutated the survivor");
        break;
      }
      if (primary.replica->is_primary()) {
        result.violations.push_back("deposed primary did not stand down");
        break;
      }
      if (primary.journal->fenced_out()) {
        // Dirty plane: the node is fenced and must refuse every further
        // local append, leaving its store bytes untouched (fail-secure).
        const std::size_t store_size = primary.store.size();
        bool refused = false;
        try {
          apply_op(*primary.plane, primary.journal.get(),
                   draw_mutation(primary.plane->manager));
        } catch (const FencedException&) {
          refused = true;
        }
        if (!refused || primary.store.size() != store_size) {
          result.violations.push_back(
              "deposed primary appended with a stale fence");
          break;
        }
        ++result.fence_refusals;
      } else if (primary.journal->fence_epoch() !=
                 standby.journal->fence_epoch()) {
        // The only legitimate way out of fenced_out is a clean rejoin: the
        // deposed node's plane was still empty, so the stand-down's
        // re-hello installed the survivor's snapshot and adopted its fence.
        result.violations.push_back(
            "deposed primary escaped the fence without adopting the epoch");
        break;
      }
      // The zombie is torn down; the promoted survivor is the primary, and
      // the old machine rejoins fresh next round.
      link.drop_end(prim);
      primary.kill();
      prim = stby;
      continue;
    }

    // ------------------------------------------------- crash/fault round
    // Both stores may carry an armed kill; the link may partition or
    // corrupt a frame mid-burst. Whoever dies first ends the burst.
    const int budget = static_cast<int>(rng.uniform_int(3, 10));
    const bool arm_primary = rng.chance(0.5);
    const bool arm_standby = rng.chance(0.45);
    if (arm_primary) {
      primary.store.arm_crash(
          plan.draw_crash_point(static_cast<std::uint64_t>(2 * budget + 2)));
    }
    if (arm_standby) {
      standby.store.arm_crash(
          plan.draw_crash_point(static_cast<std::uint64_t>(2 * budget + 2)));
    }
    const int partition_at =
        rng.chance(0.3) ? static_cast<int>(rng.uniform_int(0, budget - 1)) : -1;
    const bool corrupt_one = rng.chance(0.2);
    bool primary_died = false;
    bool standby_died = false;

    for (int i = 0; i < budget; ++i) {
      if (i == partition_at) link.partition();
      const CrashOp op = draw_op(rng, primary.plane->manager);
      try {
        apply_op(*primary.plane, primary.journal.get(), op);
        if (op.kind != CrashOp::Kind::kCompact) committed.push_back(op);
      } catch (const CrashException&) {
        primary_died = true;
        plan.note("round " + std::to_string(round) + ": primary died at op " +
                  std::to_string(i));
        break;
      }
      if (corrupt_one && !link.queue.empty() && rng.chance(0.3)) {
        link.queue.front().second[0] ^= 0xff;
        ++result.corruptions;
      }
      if (!pump_standby()) {
        standby_died = true;
        plan.note("round " + std::to_string(round) + ": standby died at op " +
                  std::to_string(i));
        break;
      }
    }
    primary.store.disarm();
    if (standby.alive()) standby.store.disarm();

    if (!primary_died && !standby_died) {
      // Quiesce: heal any split, tear down any poisoned stream (the
      // supervised redial re-hellos, as the real transport's reconnect
      // does), and let the heartbeat drive gap detection + retransmit.
      link.heal();
      const std::uint64_t resyncs_before =
          standby.replica->stats().resyncs_requested;
      if (standby.replica->stats().decode_errors > 0) {
        link.bounce();
        standby.replica->become_standby();
      }
      primary.replica->tick_heartbeat();
      if (!pump_standby()) {
        result.violations.push_back("standby crashed after disarm");
        break;
      }
      if (standby.replica->stats().resyncs_requested > resyncs_before) {
        ++result.tail_catchups;
      }
      const std::unique_ptr<Plane> oracle = replay_oracle(committed);
      if (!state_equal(*primary.plane, *oracle)) {
        result.violations.push_back("round " + std::to_string(round) +
                                    ": primary diverged from oracle:" +
                                    describe_mismatch(*primary.plane, *oracle));
        break;
      }
      if (!state_equal(*standby.plane, *oracle)) {
        result.violations.push_back("round " + std::to_string(round) +
                                    ": synced standby diverged from oracle:" +
                                    describe_mismatch(*standby.plane, *oracle));
        break;
      }
      floor = committed.size();
      continue;
    }

    if (standby_died && !primary_died) {
      // Standby process death mid-ingest (possibly a torn record in its
      // WAL). The primary is authoritative and must still equal the full
      // oracle; the standby rejoins fresh next round.
      ++result.standby_kills;
      link.drop_end(stby);
      standby.kill();
      const std::unique_ptr<Plane> oracle = replay_oracle(committed);
      if (!state_equal(*primary.plane, *oracle)) {
        result.violations.push_back(
            "primary diverged after standby death:" +
            describe_mismatch(*primary.plane, *oracle));
        break;
      }
      floor = committed.size();
      continue;
    }

    // Primary process death. Two survivor shapes, both byte-identical:
    //   * the live standby promotes (HealthMonitor handover), or
    //   * the standby ALSO dies (double fault) and restarts from its own
    //     WAL — recovery truncates any torn ingest tail, then promotes.
    ++result.primary_kills;
    link.drop_end(prim);
    primary.kill();
    link.heal();
    if (rng.chance(0.35)) {
      plan.note("round " + std::to_string(round) +
                ": double fault, standby restarts from WAL");
      standby.kill();
      standby.boot(true, seed ^ static_cast<std::uint64_t>(0x200 + round),
                   result.violations);
      if (!result.violations.empty()) break;
      standby.health.set_role(ReplicaRole::kStandby);
      link.bind(stby, *standby.replica);
      ++result.wal_survivor_promotions;
    }
    standby.health.promote_now();
    if (!standby.replica->is_primary()) {
      result.violations.push_back("survivor failed to promote");
      break;
    }
    const std::ptrdiff_t k = find_matching_prefix(*standby.plane, committed, floor);
    if (k < 0) {
      result.violations.push_back(
          "survivor matches no committed prefix after primary death (floor " +
          std::to_string(floor) + ", committed " +
          std::to_string(committed.size()) + ")");
      break;
    }
    result.lost_op_suffixes += committed.size() - static_cast<std::size_t>(k);
    committed.resize(static_cast<std::size_t>(k));
    floor = committed.size();
    prim = stby;
  }

  // Epilogue: quiesce whatever survived and run the full differential
  // against the oracle (queries, interned state, Table-0 wire bytes).
  if (result.violations.empty()) {
    ReplMachine& primary = machines[prim];
    const std::unique_ptr<Plane> oracle = replay_oracle(committed);
    if (!state_equal(*primary.plane, *oracle)) {
      result.violations.push_back("final primary diverged:" +
                                  describe_mismatch(*primary.plane, *oracle));
    } else {
      check_queries(rng, *primary.plane, *oracle, result.violations);
      check_interned_state(*primary.plane, result.violations);
      check_table0(seed, rng, *primary.plane, *oracle, result.violations);
    }
  }
  // Tie invariant I1 to these schedules: the same fail-secure degraded
  // window that wraps every promotion must suppress all Packet-ins.
  if (seed % 4 == 1 && result.violations.empty()) {
    check_degraded_window(seed, rng, result.violations);
    ++result.i1_windows;
  }
  result.trace = plan.trace();
  return result;
}

std::string replay_instructions(std::uint64_t seed) {
  return "replay: DFI_FUZZ_SEED=" + std::to_string(seed) +
         " ./crash_recovery_fuzz_test";
}

void report_violations(std::uint64_t seed,
                       const std::vector<std::string>& violations) {
  if (violations.empty()) return;
  std::string details;
  for (const std::string& violation : violations) {
    details += "  " + violation + "\n";
  }
  ADD_FAILURE() << violations.size() << " violation(s) at seed " << seed
                << ":\n"
                << details << replay_instructions(seed);
}

void expect_clean(std::uint64_t seed, const ScheduleResult& result) {
  report_violations(seed, result.violations);
}

void expect_clean(std::uint64_t seed, const ReplScheduleResult& result) {
  report_violations(seed, result.violations);
}

// ------------------------------------------------------------ the campaign

TEST(CrashRecoveryFuzz, Campaign) {
  std::size_t schedules = g_total_schedules;
  if (g_seed_override.has_value()) schedules = 1;
  ScheduleResult coverage;
  for (std::size_t i = 0; i < schedules; ++i) {
    const std::uint64_t seed =
        g_seed_override.value_or(0xc4a5ull * 1000003ull + i);
    const ScheduleResult result = run_schedule(seed);
    expect_clean(seed, result);
    coverage.crashes += result.crashes;
    coverage.torn_tails += result.torn_tails;
    coverage.adoptions += result.adoptions;
    coverage.discards += result.discards;
    coverage.compactions += result.compactions;
    coverage.snapshots_loaded += result.snapshots_loaded;
    coverage.records_replayed += result.records_replayed;
    coverage.recoveries += result.recoveries;
    coverage.i1_windows += result.i1_windows;
    if (::testing::Test::HasFailure()) break;  // first failing seed is enough
  }
  if (g_seed_override.has_value()) return;
  // The campaign must have exercised every crash class it claims to cover.
  EXPECT_GT(coverage.crashes, 0u);
  EXPECT_GT(coverage.torn_tails, 0u);        // partial tears truncated
  EXPECT_GT(coverage.adoptions, 0u);         // durable boundary ops replayed
  EXPECT_GT(coverage.discards, 0u);          // torn boundary ops lost
  EXPECT_GT(coverage.compactions, 0u);
  EXPECT_GT(coverage.snapshots_loaded, 0u);  // recovery from a compacted log
  EXPECT_GT(coverage.records_replayed, 0u);
  EXPECT_GT(coverage.recoveries, schedules);  // several lifetimes per schedule
  EXPECT_GT(coverage.i1_windows, 0u);
}

// The two-replica campaign: kill either node mid-stream under seeded
// schedules, fence every failover, and hold the survivor byte-identical.
TEST(CrashRecoveryFuzz, ReplicatedCampaign) {
  std::size_t schedules = g_total_schedules;
  if (g_seed_override.has_value()) schedules = 1;
  ReplScheduleResult coverage;
  for (std::size_t i = 0; i < schedules; ++i) {
    const std::uint64_t seed =
        g_seed_override.value_or(0x9e91ull * 1000003ull + i);
    const ReplScheduleResult result = run_replicated_schedule(seed);
    expect_clean(seed, result);
    coverage.primary_kills += result.primary_kills;
    coverage.standby_kills += result.standby_kills;
    coverage.promotions += result.promotions;
    coverage.wal_survivor_promotions += result.wal_survivor_promotions;
    coverage.fence_refusals += result.fence_refusals;
    coverage.split_brains += result.split_brains;
    coverage.snapshot_rejoins += result.snapshot_rejoins;
    coverage.tail_catchups += result.tail_catchups;
    coverage.corruptions += result.corruptions;
    coverage.lost_op_suffixes += result.lost_op_suffixes;
    coverage.i1_windows += result.i1_windows;
    if (::testing::Test::HasFailure()) break;  // first failing seed is enough
  }
  if (g_seed_override.has_value()) return;
  // The campaign must have exercised every failure class it claims.
  EXPECT_GT(coverage.primary_kills, 0u);
  EXPECT_GT(coverage.standby_kills, 0u);
  EXPECT_GT(coverage.promotions, 0u);
  EXPECT_GT(coverage.wal_survivor_promotions, 0u);  // survivor from own WAL
  EXPECT_GT(coverage.fence_refusals, 0u);   // stale fences refused appends
  EXPECT_GT(coverage.split_brains, 0u);
  EXPECT_GT(coverage.snapshot_rejoins, 0u);
  EXPECT_GT(coverage.tail_catchups, 0u);    // heartbeat-driven gap resync
  EXPECT_GT(coverage.corruptions, 0u);      // poisoned streams torn down
  EXPECT_GT(coverage.lost_op_suffixes, 0u); // unreplicated suffixes discarded
  EXPECT_GT(coverage.i1_windows, 0u);
}

// Same seed => byte-identical two-replica fault schedule and outcome.
TEST(CrashRecoveryFuzz, ReplicatedScheduleIsDeterministic) {
  const std::uint64_t seed = g_seed_override.value_or(7654321);
  const ReplScheduleResult a = run_replicated_schedule(seed);
  const ReplScheduleResult b = run_replicated_schedule(seed);
  expect_clean(seed, a);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.primary_kills, b.primary_kills);
  EXPECT_EQ(a.standby_kills, b.standby_kills);
  EXPECT_EQ(a.promotions, b.promotions);
  EXPECT_EQ(a.fence_refusals, b.fence_refusals);
  EXPECT_EQ(a.lost_op_suffixes, b.lost_op_suffixes);
}

// Same seed => byte-identical crash schedule, trace and outcome. The replay
// contract the DFI_FUZZ_SEED workflow rests on.
TEST(CrashRecoveryFuzz, ScheduleIsDeterministic) {
  const std::uint64_t seed = g_seed_override.value_or(1234567);
  const ScheduleResult a = run_schedule(seed);
  const ScheduleResult b = run_schedule(seed);
  expect_clean(seed, a);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.torn_tails, b.torn_tails);
  EXPECT_EQ(a.adoptions, b.adoptions);
  EXPECT_EQ(a.records_replayed, b.records_replayed);
}

}  // namespace
}  // namespace dfi

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  dfi::Logger::instance().set_level(dfi::LogLevel::kError);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      dfi::g_seed_override = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--schedules=", 0) == 0) {
      dfi::g_total_schedules = std::strtoull(arg.c_str() + 12, nullptr, 10);
    }
  }
  if (const char* seed = std::getenv("DFI_FUZZ_SEED")) {
    dfi::g_seed_override = std::strtoull(seed, nullptr, 10);
  }
  if (const char* schedules = std::getenv("DFI_FUZZ_SCHEDULES")) {
    dfi::g_total_schedules = std::strtoull(schedules, nullptr, 10);
  }
  return RUN_ALL_TESTS();
}
