// Unit tests for the Policy Compilation Point: decisions, exact-match rule
// compilation, cookie tagging, flushing, the MAC-location sensor, spoof
// denial, and overload behaviour.
#include <gtest/gtest.h>

#include "bus/message_bus.h"
#include "core/pcp.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

class PcpTest : public ::testing::Test {
 protected:
  PcpTest() { rebuild({}); }

  void rebuild(PcpConfig config) {
    config.zero_latency = config.zero_latency || !use_latency_;
    pcp_.reset();
    erm_ = std::make_unique<EntityResolutionManager>(bus_);
    manager_ = std::make_unique<PolicyManager>(bus_);
    pcp_ = std::make_unique<PolicyCompilationPoint>(sim_, bus_, *erm_, *manager_,
                                                    config, Rng(1));
    installed_.clear();
    pcp_->register_switch(Dpid{1}, [this](const OfMessage& message) {
      installed_.push_back(message);
    });
  }

  PacketInMsg packet_in_for(const Packet& packet, PortNo port = PortNo{5}) {
    PacketInMsg msg;
    msg.in_port = port;
    msg.table_id = 0;
    msg.data = packet.serialize();
    return msg;
  }

  Packet sample_packet() {
    return make_tcp_packet(MacAddress::from_u64(0xa), MacAddress::from_u64(0xb),
                           Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1000,
                           445);
  }

  // Installed ADD rules only — policy inserts may also publish flush
  // directives, which arrive as DELETE flow-mods.
  std::vector<FlowModMsg> installed_flow_mods() const {
    std::vector<FlowModMsg> mods;
    for (const auto& message : installed_) {
      if (const auto* mod = std::get_if<FlowModMsg>(&message.payload)) {
        if (mod->command == FlowModCommand::kAdd) mods.push_back(*mod);
      }
    }
    return mods;
  }

  bool use_latency_ = false;
  Simulator sim_;
  MessageBus bus_;
  std::unique_ptr<EntityResolutionManager> erm_;
  std::unique_ptr<PolicyManager> manager_;
  std::unique_ptr<PolicyCompilationPoint> pcp_;
  std::vector<OfMessage> installed_;
};

TEST_F(PcpTest, DefaultDenyCompilesDropRule) {
  const PcpDecision decision = pcp_->decide(Dpid{1}, packet_in_for(sample_packet()));
  EXPECT_FALSE(decision.allow);
  EXPECT_TRUE(decision.policy.default_deny);

  const auto mods = installed_flow_mods();
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0].table_id, 0);
  EXPECT_EQ(mods[0].cookie, kDefaultDenyCookie);
  EXPECT_TRUE(mods[0].instructions.apply_actions.empty());
  EXPECT_FALSE(mods[0].instructions.goto_table.has_value());
  EXPECT_EQ(pcp_->stats().default_denied, 1u);
}

TEST_F(PcpTest, AllowCompilesGotoRuleWithPolicyCookie) {
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  const PolicyRuleId id = manager_->insert(allow, PdpPriority{5}, "t");

  const PcpDecision decision = pcp_->decide(Dpid{1}, packet_in_for(sample_packet()));
  EXPECT_TRUE(decision.allow);

  const auto mods = installed_flow_mods();
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0].cookie.value, id.value);
  EXPECT_EQ(mods[0].instructions.goto_table, 1);
  EXPECT_EQ(mods[0].idle_timeout, 0);  // DFI uses no timeouts
  EXPECT_EQ(mods[0].hard_timeout, 0);
  EXPECT_EQ(pcp_->stats().allowed, 1u);
}

TEST_F(PcpTest, CompiledRuleIsExactMatch) {
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  manager_->insert(allow, PdpPriority{5}, "t");

  const Packet packet = sample_packet();
  pcp_->decide(Dpid{1}, packet_in_for(packet, PortNo{7}));
  const auto mods = installed_flow_mods();
  ASSERT_EQ(mods.size(), 1u);
  const Match& match = mods[0].match;
  EXPECT_EQ(match.in_port, PortNo{7});
  EXPECT_EQ(match.eth_src, packet.eth.src);
  EXPECT_EQ(match.eth_dst, packet.eth.dst);
  EXPECT_EQ(match.ipv4_src, packet.ipv4->src);
  EXPECT_EQ(match.ipv4_dst, packet.ipv4->dst);
  EXPECT_EQ(match.tcp_src, packet.tcp->src_port);
  EXPECT_EQ(match.tcp_dst, packet.tcp->dst_port);
  EXPECT_EQ(match.specified_fields(), 9);
}

TEST_F(PcpTest, EnrichmentDrivesUserPolicy) {
  // Policy over a username; bindings resolve the packet's source IP to alice.
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  allow.source.user = Username{"alice"};
  manager_->insert(allow, PdpPriority{5}, "t");

  // No bindings yet: default deny.
  EXPECT_FALSE(pcp_->decide(Dpid{1}, packet_in_for(sample_packet())).allow);

  BindingEvent host_ip;
  host_ip.kind = BindingKind::kHostIp;
  host_ip.host = Hostname{"alice-laptop"};
  host_ip.ip = Ipv4Address(10, 0, 0, 1);
  erm_->apply(host_ip);
  BindingEvent user_host;
  user_host.kind = BindingKind::kUserHost;
  user_host.user = Username{"alice"};
  user_host.host = Hostname{"alice-laptop"};
  erm_->apply(user_host);

  const PcpDecision decision = pcp_->decide(Dpid{1}, packet_in_for(sample_packet()));
  EXPECT_TRUE(decision.allow);
  ASSERT_FALSE(decision.flow.src.usernames.empty());
  EXPECT_EQ(decision.flow.src.usernames[0], Username{"alice"});
}

TEST_F(PcpTest, SpoofedSourceDenied) {
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  manager_->insert(allow, PdpPriority{5}, "t");

  // DHCP bound 10.0.0.1 to a different MAC than the packet's source.
  BindingEvent binding;
  binding.kind = BindingKind::kIpMac;
  binding.ip = Ipv4Address(10, 0, 0, 1);
  binding.mac = MacAddress::from_u64(0xDEAD);
  erm_->apply(binding);

  const PcpDecision decision = pcp_->decide(Dpid{1}, packet_in_for(sample_packet()));
  EXPECT_FALSE(decision.allow);
  EXPECT_TRUE(decision.spoofed);
  EXPECT_EQ(pcp_->stats().spoof_denied, 1u);
  // A drop rule still gets installed so the spoofer cannot hammer the
  // control plane with the same flow.
  ASSERT_EQ(installed_flow_mods().size(), 1u);
  EXPECT_TRUE(installed_flow_mods()[0].instructions.apply_actions.empty());
}

TEST_F(PcpTest, MacLocationSensorFeedsErm) {
  pcp_->decide(Dpid{1}, packet_in_for(sample_packet(), PortNo{5}));
  EXPECT_EQ(erm_->location_of_mac(Dpid{1}, MacAddress::from_u64(0xa)), PortNo{5});

  // The host moves ports: the sensor replaces the binding and counts it.
  pcp_->decide(Dpid{1}, packet_in_for(sample_packet(), PortNo{6}));
  EXPECT_EQ(erm_->location_of_mac(Dpid{1}, MacAddress::from_u64(0xa)), PortNo{6});
  EXPECT_EQ(pcp_->stats().mac_moves, 1u);
}

TEST_F(PcpTest, FlushDirectiveDeletesByCookieOnAllSwitches) {
  std::vector<OfMessage> second_switch;
  pcp_->register_switch(Dpid{2}, [&second_switch](const OfMessage& message) {
    second_switch.push_back(message);
  });

  bus_.publish(topics::kRuleFlush, FlushDirective{PolicyRuleId{77}});
  ASSERT_EQ(installed_.size(), 1u);
  ASSERT_EQ(second_switch.size(), 1u);
  const auto& del = std::get<FlowModMsg>(installed_[0].payload);
  EXPECT_EQ(del.command, FlowModCommand::kDelete);
  EXPECT_EQ(del.table_id, 0);
  EXPECT_EQ(del.cookie, Cookie{77});
  EXPECT_EQ(del.cookie_mask, Cookie{~0ull});
  EXPECT_TRUE(del.match.is_wildcard_all());
  EXPECT_EQ(pcp_->stats().flush_directives, 1u);
}

TEST_F(PcpTest, RevocationEndToEndFlushes) {
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  const PolicyRuleId id = manager_->insert(allow, PdpPriority{5}, "t");
  installed_.clear();
  manager_->revoke(id);
  ASSERT_EQ(installed_.size(), 1u);
  EXPECT_EQ(std::get<FlowModMsg>(installed_[0].payload).cookie.value, id.value);
}

TEST_F(PcpTest, UnparsablePacketDefaultDeniedWithoutRule) {
  PacketInMsg msg;
  msg.in_port = PortNo{1};
  msg.data = {0x00, 0x01};
  const PcpDecision decision = pcp_->decide(Dpid{1}, msg);
  EXPECT_FALSE(decision.allow);
  EXPECT_TRUE(installed_flow_mods().empty());
  EXPECT_EQ(pcp_->stats().unparsable, 1u);
}

TEST_F(PcpTest, UnregisteredSwitchInstallIsSafe) {
  pcp_->unregister_switch(Dpid{1});
  const PcpDecision decision = pcp_->decide(Dpid{1}, packet_in_for(sample_packet()));
  EXPECT_FALSE(decision.allow);
  EXPECT_TRUE(installed_.empty());
}

TEST_F(PcpTest, AsyncPathInvokesCallbackAfterServiceTime) {
  use_latency_ = true;
  PcpConfig config;  // paper Table II latencies
  rebuild(config);

  bool called = false;
  const bool accepted = pcp_->handle_packet_in(
      Dpid{1}, packet_in_for(sample_packet()), [&called](const PcpDecision& decision) {
        called = true;
        EXPECT_FALSE(decision.allow);
      });
  EXPECT_TRUE(accepted);
  EXPECT_FALSE(called);  // not synchronous
  sim_.run();
  EXPECT_TRUE(called);
  EXPECT_GT(sim_.now().us, 0);  // simulated service time elapsed
  EXPECT_EQ(pcp_->total_latency_ms().count(), 1u);
  EXPECT_GT(pcp_->binding_latency_ms().mean(), 0.0);
}

TEST_F(PcpTest, OverloadDropsWhenQueueFull) {
  use_latency_ = true;
  PcpConfig config;
  config.workers = 1;
  config.queue_capacity = 2;
  rebuild(config);

  int completions = 0;
  int accepted = 0;
  for (int i = 0; i < 10; ++i) {
    if (pcp_->handle_packet_in(Dpid{1}, packet_in_for(sample_packet()),
                               [&completions](const PcpDecision&) { ++completions; })) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 3);  // 1 in service + 2 queued
  sim_.run();
  EXPECT_EQ(completions, 3);
  EXPECT_EQ(pcp_->stats().dropped_overload, 7u);
}

TEST_F(PcpTest, LatencyBreakdownMatchesConfiguredMoments) {
  use_latency_ = true;
  rebuild({});
  for (int i = 0; i < 2000; ++i) {
    pcp_->handle_packet_in(Dpid{1}, packet_in_for(sample_packet()),
                           [](const PcpDecision&) {});
    sim_.run();
  }
  // Paper Table II: binding 2.41, policy 2.52, other 0.39 (ms).
  EXPECT_NEAR(pcp_->binding_latency_ms().mean(), 2.41, 0.15);
  EXPECT_NEAR(pcp_->policy_latency_ms().mean(), 2.52, 0.15);
  EXPECT_NEAR(pcp_->other_latency_ms().mean(), 0.39, 0.1);
  EXPECT_NEAR(pcp_->total_latency_ms().mean(), 5.32, 0.3);
}

}  // namespace
}  // namespace dfi
