// Unit tests for the PDP framework and the three concrete PDPs:
// S-RBAC, AT-RBAC and Quarantine (paper Sections III-B and V-B).
#include <gtest/gtest.h>

#include "bus/message_bus.h"
#include "core/pdps/alarm.h"
#include "core/pdps/atrbac.h"
#include "core/pdps/quarantine.h"
#include "core/pdps/srbac.h"
#include "core/pdps/time_of_day.h"
#include "core/policy_manager.h"
#include "services/siem.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

FlowView host_flow(const char* src, const char* dst) {
  FlowView flow;
  flow.ether_type = 0x0800;
  flow.src.hostnames = {Hostname{src}};
  flow.dst.hostnames = {Hostname{dst}};
  return flow;
}

class PdpTest : public ::testing::Test {
 protected:
  PdpTest() : manager_(bus_), siem_(bus_, [this]() { return sim_.now(); }) {
    // Two department enclaves plus one server enclave.
    for (const char* host : {"h1", "h2"}) {
      EXPECT_TRUE(directory_.add_host(HostRecord{Hostname{host}, "dept-1", false}).ok());
    }
    EXPECT_TRUE(directory_.add_host(HostRecord{Hostname{"h3"}, "dept-2", false}).ok());
    EXPECT_TRUE(directory_.add_host(HostRecord{Hostname{"srv-ad"}, "servers", true}).ok());
    EXPECT_TRUE(directory_.add_host(HostRecord{Hostname{"srv-mail"}, "servers", true}).ok());
    EXPECT_TRUE(
        directory_.add_user(UserRecord{Username{"u1"}, "dept-1", Hostname{"h1"}}).ok());
  }

  bool allowed(const char* src, const char* dst) {
    return manager_.query(host_flow(src, dst)).action == PolicyAction::kAllow;
  }

  // A flow to a specific destination service port (auth-set checks).
  bool allowed_to_port(const char* src, const char* dst, std::uint16_t port) {
    FlowView flow = host_flow(src, dst);
    flow.src.l4_port = 50000;
    flow.dst.l4_port = port;
    return manager_.query(flow).action == PolicyAction::kAllow;
  }

  Simulator sim_;
  MessageBus bus_;
  PolicyManager manager_;
  DirectoryService directory_;
  SiemService siem_;
};

TEST_F(PdpTest, SRbacIntraEnclaveAndServers) {
  SRbacPdp pdp(PdpPriority{100}, manager_, directory_);
  pdp.activate();

  EXPECT_TRUE(allowed("h1", "h2"));
  EXPECT_TRUE(allowed("h2", "h1"));
  EXPECT_FALSE(allowed("h1", "h3"));  // cross-enclave denied
  EXPECT_FALSE(allowed("h3", "h2"));
  EXPECT_TRUE(allowed("h1", "srv-ad"));
  EXPECT_TRUE(allowed("srv-ad", "h3"));
  EXPECT_TRUE(allowed("srv-ad", "srv-mail"));
}

TEST_F(PdpTest, SRbacIsStaticAcrossSessions) {
  SRbacPdp pdp(PdpPriority{100}, manager_, directory_);
  pdp.activate();
  const std::size_t before = manager_.size();
  // Log-on/log-off events do not change the static policy.
  siem_.process_created(Username{"u1"}, Hostname{"h1"});
  siem_.process_terminated(Username{"u1"}, Hostname{"h1"});
  EXPECT_EQ(manager_.size(), before);
  EXPECT_TRUE(allowed("h1", "h2"));
}

TEST_F(PdpTest, SRbacDeactivateRevokesAll) {
  SRbacPdp pdp(PdpPriority{100}, manager_, directory_);
  pdp.activate();
  EXPECT_GT(manager_.size(), 0u);
  pdp.deactivate();
  EXPECT_EQ(manager_.size(), 0u);
  EXPECT_FALSE(allowed("h1", "h2"));
}

TEST_F(PdpTest, SRbacReactivateIdempotent) {
  SRbacPdp pdp(PdpPriority{100}, manager_, directory_);
  pdp.activate();
  const std::size_t once = manager_.size();
  pdp.activate();
  EXPECT_EQ(manager_.size(), once);
}

TEST_F(PdpTest, AtRbacGrantsOnLogonRevokesOnLogoff) {
  AtRbacPdp pdp(PdpPriority{100}, manager_, directory_, bus_, {Hostname{"srv-ad"}});
  pdp.activate();

  // Logged off: only the authentication services are reachable.
  EXPECT_FALSE(allowed("h1", "h2"));
  EXPECT_TRUE(allowed_to_port("h1", "srv-ad", 88));    // Kerberos
  EXPECT_TRUE(allowed_to_port("h1", "srv-ad", 53));    // DNS
  EXPECT_FALSE(allowed_to_port("h1", "srv-ad", 445));  // not SMB
  EXPECT_FALSE(allowed("h1", "srv-mail"));

  siem_.process_created(Username{"u1"}, Hostname{"h1"});
  EXPECT_TRUE(allowed("h1", "h2"));       // role set granted
  EXPECT_TRUE(allowed("h2", "h1"));
  EXPECT_TRUE(allowed("h1", "srv-mail"));
  EXPECT_FALSE(allowed("h1", "h3"));      // still enclave-scoped
  EXPECT_EQ(pdp.grants(), 1u);
  EXPECT_EQ(pdp.active_hosts().size(), 1u);

  siem_.process_terminated(Username{"u1"}, Hostname{"h1"});
  EXPECT_FALSE(allowed("h1", "h2"));      // revoked
  EXPECT_TRUE(allowed_to_port("h1", "srv-ad", 88));  // auth set persists
  EXPECT_EQ(pdp.revocations(), 1u);
  EXPECT_TRUE(pdp.active_hosts().empty());
}

TEST_F(PdpTest, AtRbacMultipleUsersOnHost) {
  ASSERT_TRUE(
      directory_.add_user(UserRecord{Username{"u2"}, "dept-1", Hostname{"h2"}}).ok());
  AtRbacPdp pdp(PdpPriority{100}, manager_, directory_, bus_, {Hostname{"srv-ad"}});
  pdp.activate();

  siem_.process_created(Username{"u1"}, Hostname{"h1"});
  siem_.process_created(Username{"u2"}, Hostname{"h1"});
  EXPECT_EQ(pdp.grants(), 1u);  // one grant per host, not per user
  siem_.process_terminated(Username{"u1"}, Hostname{"h1"});
  EXPECT_TRUE(allowed("h1", "h2"));  // u2 still on
  siem_.process_terminated(Username{"u2"}, Hostname{"h1"});
  EXPECT_FALSE(allowed("h1", "h2"));
}

TEST_F(PdpTest, AtRbacAuthSetPortScoped) {
  AtRbacPdp pdp(PdpPriority{100}, manager_, directory_, bus_, {Hostname{"srv-ad"}});
  pdp.activate();
  // The worm's SMB vector must not ride the standing auth rules.
  EXPECT_FALSE(allowed_to_port("h1", "srv-ad", 445));
  EXPECT_FALSE(allowed_to_port("srv-ad", "h1", 445));
  // Reply direction from the auth service port is allowed.
  FlowView reply = host_flow("srv-ad", "h1");
  reply.src.l4_port = 88;
  reply.dst.l4_port = 50000;
  EXPECT_EQ(manager_.query(reply).action, PolicyAction::kAllow);
}

TEST_F(PdpTest, AtRbacPeerGrantOpensBothDirections) {
  // Per the paper's role set, a granted host's rules cover flows to and
  // from its enclave peers — reaching a logged-off peer is possible while
  // the granted host's own rules are live.
  AtRbacPdp pdp(PdpPriority{100}, manager_, directory_, bus_, {Hostname{"srv-ad"}});
  pdp.activate();
  siem_.process_created(Username{"u1"}, Hostname{"h1"});
  EXPECT_TRUE(allowed("h2", "h1"));  // inbound from logged-off peer allowed
  EXPECT_TRUE(allowed("h1", "h2"));
}

TEST_F(PdpTest, AtRbacServersAreNotSessionConditioned) {
  AtRbacPdp pdp(PdpPriority{100}, manager_, directory_, bus_, {Hostname{"srv-ad"}});
  pdp.activate();
  // A (spurious) server session event must not grant a server role set.
  siem_.process_created(Username{"u1"}, Hostname{"srv-mail"});
  EXPECT_EQ(pdp.grants(), 0u);
}

TEST_F(PdpTest, QuarantineOverridesRbacAndReleases) {
  SRbacPdp rbac(PdpPriority{100}, manager_, directory_);
  rbac.activate();
  QuarantinePdp quarantine(PdpPriority{200}, manager_, bus_);

  EXPECT_TRUE(allowed("h1", "h2"));
  quarantine.quarantine(Hostname{"h1"});
  EXPECT_TRUE(quarantine.is_quarantined(Hostname{"h1"}));
  EXPECT_FALSE(allowed("h1", "h2"));  // outbound cut
  EXPECT_FALSE(allowed("h2", "h1"));  // inbound cut
  EXPECT_TRUE(allowed("h2", "srv-ad"));  // others unaffected

  quarantine.release(Hostname{"h1"});
  EXPECT_FALSE(quarantine.is_quarantined(Hostname{"h1"}));
  EXPECT_TRUE(allowed("h1", "h2"));
}

TEST_F(PdpTest, QuarantineDrivenByAlertTopic) {
  QuarantinePdp quarantine(PdpPriority{200}, manager_, bus_);
  bus_.publish(topics::kQuarantineAlerts, QuarantineAlert{Hostname{"h3"}, false});
  EXPECT_TRUE(quarantine.is_quarantined(Hostname{"h3"}));
  bus_.publish(topics::kQuarantineAlerts, QuarantineAlert{Hostname{"h3"}, true});
  EXPECT_FALSE(quarantine.is_quarantined(Hostname{"h3"}));
  EXPECT_EQ(quarantine.quarantined_count(), 0u);
}

TEST_F(PdpTest, QuarantineIdempotent) {
  QuarantinePdp quarantine(PdpPriority{200}, manager_, bus_);
  quarantine.quarantine(Hostname{"h1"});
  const std::size_t rules = manager_.size();
  quarantine.quarantine(Hostname{"h1"});
  EXPECT_EQ(manager_.size(), rules);
  quarantine.release(Hostname{"h1"});
  quarantine.release(Hostname{"h1"});
  EXPECT_EQ(manager_.size(), 0u);
}

TEST_F(PdpTest, QuarantineInsertFlushesCachedAllowRules) {
  SRbacPdp rbac(PdpPriority{100}, manager_, directory_);
  rbac.activate();

  std::vector<PolicyRuleId> flushes;
  auto sub = bus_.subscribe<FlushDirective>(
      topics::kRuleFlush, [&](const FlushDirective& d) { flushes.push_back(d.policy); });

  QuarantinePdp quarantine(PdpPriority{200}, manager_, bus_);
  quarantine.quarantine(Hostname{"h1"});
  // The higher-priority Deny rules overlap h1's cached Allow rules, whose
  // switch derivations must be flushed so ongoing flows are cut.
  EXPECT_FALSE(flushes.empty());
}

TEST_F(PdpTest, TimeOfDayOpensAndClosesWithTheClock) {
  TimeOfDayPdp pdp(PdpPriority{100}, manager_, directory_, sim_, 7, 19);
  pdp.activate();

  // Midnight: closed.
  EXPECT_FALSE(pdp.is_open());
  EXPECT_FALSE(allowed("h1", "h2"));

  sim_.run_until(clock_time(8));
  EXPECT_TRUE(pdp.is_open());
  EXPECT_TRUE(allowed("h1", "h2"));
  EXPECT_TRUE(allowed("h1", "srv-mail"));
  EXPECT_FALSE(allowed("h1", "h3"));  // still enclave-scoped

  sim_.run_until(clock_time(19, 30));
  EXPECT_FALSE(pdp.is_open());
  EXPECT_FALSE(allowed("h1", "h2"));
  EXPECT_EQ(manager_.size(), 0u);
}

TEST_F(PdpTest, TimeOfDayActivatedMidDayOpensImmediately) {
  sim_.run_until(clock_time(10));
  TimeOfDayPdp pdp(PdpPriority{100}, manager_, directory_, sim_, 7, 19);
  pdp.activate();
  EXPECT_TRUE(pdp.is_open());
  EXPECT_TRUE(allowed("h1", "h2"));
  pdp.deactivate();
  EXPECT_FALSE(allowed("h1", "h2"));
  // A later scheduled close must not re-fire after deactivation.
  sim_.run_until(clock_time(20));
  EXPECT_FALSE(pdp.is_open());
}

TEST_F(PdpTest, AlarmLockdownCutsEndHostsKeepsServers) {
  SRbacPdp rbac(PdpPriority{100}, manager_, directory_);
  rbac.activate();
  AlarmPdp alarm(PdpPriority{300}, manager_, directory_, bus_);

  EXPECT_TRUE(allowed("h1", "h2"));
  bus_.publish(topics::kFacilityAlarms, BuildingAlarmEvent{"east-wing", true});
  EXPECT_TRUE(alarm.lockdown_active());
  EXPECT_FALSE(allowed("h1", "h2"));       // workstation outbound cut
  EXPECT_FALSE(allowed("h1", "srv-ad"));
  EXPECT_TRUE(allowed("srv-ad", "srv-mail"));  // servers keep talking
  EXPECT_TRUE(allowed("srv-ad", "h1"));        // inbound paging still works

  bus_.publish(topics::kFacilityAlarms, BuildingAlarmEvent{"east-wing", false});
  EXPECT_FALSE(alarm.lockdown_active());
  EXPECT_TRUE(allowed("h1", "h2"));
}

TEST_F(PdpTest, AlarmIdempotentAndDirectControl) {
  AlarmPdp alarm(PdpPriority{300}, manager_, directory_, bus_);
  alarm.engage_lockdown();
  const std::size_t rules = manager_.size();
  alarm.engage_lockdown();
  EXPECT_EQ(manager_.size(), rules);
  alarm.clear_lockdown();
  alarm.clear_lockdown();
  EXPECT_EQ(manager_.size(), 0u);
}

TEST_F(PdpTest, MakeRbacRulesetCoversExpectedPairs) {
  const auto rules = make_rbac_ruleset(directory_);
  // dept-1: h1<->h2 (2) ; dept-1/dept-2 hosts <-> 2 servers (3*2*2=12);
  // servers intra-enclave pair (2): total 16.
  EXPECT_EQ(rules.size(), 16u);
  for (const auto& rule : rules) {
    EXPECT_EQ(rule.action, PolicyAction::kAllow);
    EXPECT_TRUE(rule.source.host.has_value());
    EXPECT_TRUE(rule.destination.host.has_value());
  }
}

}  // namespace
}  // namespace dfi
