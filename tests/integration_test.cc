// End-to-end integration tests: switches + DFI proxy/PCP + controller +
// services + hosts on the simulator, including the paper's Section III-C
// Alice example.
#include <gtest/gtest.h>

#include <memory>

#include "controller/learning_controller.h"
#include "core/dfi_system.h"
#include "core/pdps/quarantine.h"
#include "services/dhcp.h"
#include "services/dns.h"
#include "services/siem.h"
#include "testbed/network.h"

namespace dfi {
namespace {

// A two-switch network with three hosts under full DFI interposition.
class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest()
      : dfi_(sim_, bus_, DfiConfig::functional()),
        controller_(sim_, zero_controller(), Rng(5)),
        network_(sim_),
        siem_(bus_, [this]() { return sim_.now(); }),
        dhcp_(bus_, [this]() { return sim_.now(); }, Ipv4Address(10, 0, 0, 10), 32),
        dns_(bus_, [this]() { return sim_.now(); }) {
    network_.add_switch(Dpid{1});
    network_.add_switch(Dpid{2});
    network_.link_switches(Dpid{1}, PortNo{10}, Dpid{2}, PortNo{10});

    alice_ = &provision("alice-laptop", Dpid{1}, PortNo{2});
    bob_ = &provision("bob-desktop", Dpid{1}, PortNo{3});
    mail_ = &provision("srv-email", Dpid{2}, PortNo{2});
    mail_->open_port(143);
    bob_->open_port(445);

    network_.attach_dfi_control(dfi_, controller_);
    network_.settle();
  }

  static ControllerConfig zero_controller() {
    ControllerConfig config;
    config.zero_latency = true;
    return config;
  }

  Host& provision(const char* name, Dpid dpid, PortNo port) {
    const MacAddress mac = MacAddress::from_u64(next_mac_++);
    Host& host = network_.add_host(Hostname{name}, mac, dpid, port);
    const auto leased = dhcp_.lease(mac);
    EXPECT_TRUE(leased.ok());
    host.set_ip(leased.value());
    dns_.register_record(Hostname{name}, leased.value());
    (*network_.arp())[leased.value()] = mac;
    return host;
  }

  ConnectResult try_connect(Host& from, Host& to, std::uint16_t port) {
    ConnectResult outcome;
    bool done = false;
    from.connect(to.ip(), port, [&](const ConnectResult& r) {
      outcome = r;
      done = true;
    });
    sim_.run_until(sim_.now() + seconds(10.0));
    EXPECT_TRUE(done);
    return outcome;
  }

  void insert_allow_all() {
    PolicyRule allow;
    allow.action = PolicyAction::kAllow;
    dfi_.policy_manager().insert(allow, PdpPriority{1}, "test-allow-all");
  }

  Simulator sim_;
  MessageBus bus_;
  DfiSystem dfi_;
  LearningController controller_;
  Network network_;
  SiemService siem_;
  DhcpServer dhcp_;
  DnsServer dns_;
  Host* alice_ = nullptr;
  Host* bob_ = nullptr;
  Host* mail_ = nullptr;
  std::uint64_t next_mac_ = 0x020000000001ull;
};

TEST_F(IntegrationTest, DefaultDenyBlocksEverything) {
  const ConnectResult outcome = try_connect(*alice_, *bob_, 445);
  EXPECT_FALSE(outcome.connected);
  EXPECT_GT(dfi_.pcp().stats().default_denied, 0u);
  // The controller never saw the denied flow's packets.
  EXPECT_EQ(controller_.stats().packet_ins, 0u);
}

TEST_F(IntegrationTest, AllowAllEnablesSameSwitchFlow) {
  insert_allow_all();
  const ConnectResult outcome = try_connect(*alice_, *bob_, 445);
  EXPECT_TRUE(outcome.connected);
  EXPECT_GT(dfi_.pcp().stats().allowed, 0u);
  EXPECT_GT(controller_.stats().packet_ins, 0u);
}

TEST_F(IntegrationTest, AllowAllEnablesCrossSwitchFlow) {
  insert_allow_all();
  const ConnectResult outcome = try_connect(*alice_, *mail_, 143);
  EXPECT_TRUE(outcome.connected);
  // Both switches enforce policy (per-hop rule installation).
  SwitchDevice* sw1 = network_.find_switch(Dpid{1});
  SwitchDevice* sw2 = network_.find_switch(Dpid{2});
  EXPECT_GT(sw1->pipeline().table(0).size(), 0u);
  EXPECT_GT(sw2->pipeline().table(0).size(), 0u);
}

TEST_F(IntegrationTest, Table0IsDfiOnlyTable1IsController) {
  insert_allow_all();
  try_connect(*alice_, *bob_, 445);
  SwitchDevice* sw = network_.find_switch(Dpid{1});
  // Table 0 rules carry DFI cookies (policy ids); table 1 rules are the
  // controller's (shifted from its table 0) with controller cookies.
  ASSERT_GT(sw->pipeline().table(0).size(), 0u);
  sw->pipeline().table(0).for_each([](const FlowRule& rule) {
    EXPECT_GE(rule.cookie.value, kDefaultDenyCookie.value);
  });
  EXPECT_GT(sw->pipeline().table(1).size(), 0u);
}

TEST_F(IntegrationTest, SecondFlowPacketsBypassControlPlane) {
  insert_allow_all();
  try_connect(*alice_, *bob_, 445);
  const std::uint64_t packet_ins_before = dfi_.pcp().stats().packet_ins;
  // The same 5-tuple is cached... but a connect() uses a fresh source port,
  // so instead send the exact same packet twice at the data plane.
  const Packet probe = make_tcp_packet(alice_->mac(), bob_->mac(), alice_->ip(),
                                       bob_->ip(), 55555, 445);
  network_.inject(Dpid{1}, PortNo{2}, probe.serialize());
  sim_.run_until(sim_.now() + seconds(1.0));
  const std::uint64_t after_first = dfi_.pcp().stats().packet_ins;
  EXPECT_GT(after_first, packet_ins_before);
  network_.inject(Dpid{1}, PortNo{2}, probe.serialize());
  sim_.run_until(sim_.now() + seconds(1.0));
  EXPECT_EQ(dfi_.pcp().stats().packet_ins, after_first);  // table-0 hit
}

TEST_F(IntegrationTest, AliceEndToEndExample) {
  // Paper Section III-C: "When Alice is logged on, the computer she is
  // using can communicate with the email server; when she logs off, it
  // cannot." The PDP below reacts to SIEM session events.
  struct AlicePdp {
    PolicyManager& policy;
    std::optional<PolicyRuleId> to_mail, from_mail;
    Subscription sub;

    explicit AlicePdp(MessageBus& bus, PolicyManager& pm)
        : policy(pm), sub(bus.subscribe<SessionEvent>(
              topics::kSiemSessions, [this](const SessionEvent& event) {
                if (event.user != Username{"alice"}) return;
                if (event.logged_on) {
                  PolicyRule rule;
                  rule.action = PolicyAction::kAllow;
                  rule.source.user = Username{"alice"};
                  rule.destination.host = Hostname{"srv-email"};
                  to_mail = policy.insert(rule, PdpPriority{50}, "alice-pdp");
                  PolicyRule reverse;
                  reverse.action = PolicyAction::kAllow;
                  reverse.source.host = Hostname{"srv-email"};
                  reverse.destination.user = Username{"alice"};
                  from_mail = policy.insert(reverse, PdpPriority{50}, "alice-pdp");
                } else {
                  if (to_mail) policy.revoke(*to_mail);
                  if (from_mail) policy.revoke(*from_mail);
                  to_mail.reset();
                  from_mail.reset();
                }
              })) {}
  };
  AlicePdp pdp(bus_, dfi_.policy_manager());

  // 1-2: bindings are already in the ERM from DHCP/DNS at provisioning.
  // Before log-on: denied.
  EXPECT_FALSE(try_connect(*alice_, *mail_, 143).connected);

  // 3-5: Alice logs on; the sensor chain grants the policy.
  siem_.process_created(Username{"alice"}, Hostname{"alice-laptop"});
  // 6-11: Alice checks her email.
  EXPECT_TRUE(try_connect(*alice_, *mail_, 143).connected);
  // Bob's machine is still denied (the rule names Alice).
  EXPECT_FALSE(try_connect(*bob_, *mail_, 143).connected);

  // 12-15: Alice logs off; the policy is revoked and rules flushed.
  siem_.process_terminated(Username{"alice"}, Hostname{"alice-laptop"});
  sim_.run_until(sim_.now() + seconds(1.0));
  EXPECT_FALSE(try_connect(*alice_, *mail_, 143).connected);
}

TEST_F(IntegrationTest, RevocationFlushesCachedRulesFromSwitches) {
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  const PolicyRuleId id = dfi_.policy_manager().insert(allow, PdpPriority{1}, "t");
  ASSERT_TRUE(try_connect(*alice_, *bob_, 445).connected);

  SwitchDevice* sw = network_.find_switch(Dpid{1});
  std::size_t dfi_rules = 0;
  sw->pipeline().table(0).for_each([&](const FlowRule& rule) {
    if (rule.cookie.value == id.value) ++dfi_rules;
  });
  ASSERT_GT(dfi_rules, 0u);

  dfi_.policy_manager().revoke(id);
  sim_.run_until(sim_.now() + seconds(1.0));
  dfi_rules = 0;
  sw->pipeline().table(0).for_each([&](const FlowRule& rule) {
    if (rule.cookie.value == id.value) ++dfi_rules;
  });
  EXPECT_EQ(dfi_rules, 0u);
  EXPECT_FALSE(try_connect(*alice_, *bob_, 445).connected);
}

TEST_F(IntegrationTest, QuarantineCutsHostImmediately) {
  insert_allow_all();
  QuarantinePdp quarantine(PdpPriority{200}, dfi_.policy_manager(), bus_);
  ASSERT_TRUE(try_connect(*alice_, *bob_, 445).connected);

  quarantine.quarantine(Hostname{"alice-laptop"});
  sim_.run_until(sim_.now() + seconds(1.0));
  EXPECT_FALSE(try_connect(*alice_, *bob_, 445).connected);
  EXPECT_TRUE(try_connect(*bob_, *mail_, 143).connected);  // others unaffected

  quarantine.release(Hostname{"alice-laptop"});
  sim_.run_until(sim_.now() + seconds(1.0));
  EXPECT_TRUE(try_connect(*alice_, *bob_, 445).connected);
}

TEST_F(IntegrationTest, SpoofedSourceBlockedDespiteAllowAll) {
  insert_allow_all();
  // Attacker on Alice's port claims Bob's IP (bound by DHCP to Bob's MAC).
  const Packet spoofed = make_tcp_packet(alice_->mac(), mail_->mac(), bob_->ip(),
                                         mail_->ip(), 50000, 143);
  network_.inject(Dpid{1}, PortNo{2}, spoofed.serialize());
  sim_.run_until(sim_.now() + seconds(1.0));
  EXPECT_GT(dfi_.pcp().stats().spoof_denied, 0u);
  EXPECT_EQ(mail_->packets_received(), 0u);
}

TEST_F(IntegrationTest, ArpResolutionSubjectToPolicy) {
  // Dynamic ARP: remove the static entries so the prober must broadcast a
  // real ARP request through the data plane, where DFI decides its fate.
  alice_->enable_arp();
  bob_->enable_arp();
  const Ipv4Address bob_ip = bob_->ip();
  network_.arp()->erase(bob_ip);

  // 1) Default deny: ARP is traffic like any other; resolution fails.
  {
    ConnectResult outcome;
    bool done = false;
    alice_->connect(bob_ip, 445, [&](const ConnectResult& r) {
      outcome = r;
      done = true;
    });
    sim_.run_until(sim_.now() + seconds(10.0));
    EXPECT_TRUE(done);
    EXPECT_FALSE(outcome.connected);
    EXPECT_EQ(alice_->arp_cache_size(), 0u);
  }

  // 2) Allow ARP frames + the TCP flow: resolution and handshake succeed.
  PolicyRule allow_arp;
  allow_arp.action = PolicyAction::kAllow;
  allow_arp.properties.ether_type = static_cast<std::uint16_t>(EtherType::kArp);
  dfi_.policy_manager().insert(allow_arp, PdpPriority{5}, "arp");
  PolicyRule allow_ip;
  allow_ip.action = PolicyAction::kAllow;
  allow_ip.properties.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  dfi_.policy_manager().insert(allow_ip, PdpPriority{5}, "ip");

  const ConnectResult outcome = try_connect(*alice_, *bob_, 445);
  EXPECT_TRUE(outcome.connected);
  EXPECT_GE(alice_->arp_cache_size(), 1u);  // learned from the reply
}

TEST_F(IntegrationTest, ParallelControlPlaneInstancesShareState) {
  // The paper: "Multiple proxies, as well as PCPs, can be used in parallel
  // in an SDN installation for reliability or performance." Build a second
  // PCP + proxy sharing the same ERM/Policy Manager over the same bus, and
  // attach a new switch through it. Policy changes must reach rules cached
  // via *both* instances.
  PcpConfig pcp_config;
  pcp_config.zero_latency = true;
  PolicyCompilationPoint second_pcp(sim_, bus_, dfi_.erm(), dfi_.policy_manager(),
                                    pcp_config, Rng(77));
  DfiProxy second_proxy(sim_, second_pcp, ProxyConfig{0, 0, true}, Rng(78));

  network_.add_switch(Dpid{3});
  network_.link_switches(Dpid{2}, PortNo{11}, Dpid{3}, PortNo{10});
  Host& carol = provision("carol-pc", Dpid{3}, PortNo{2});
  carol.open_port(445);

  SwitchDevice* sw3 = network_.find_switch(Dpid{3});
  struct Wiring {
    DfiProxy::Session* proxy = nullptr;
    LearningController::Session* ctrl = nullptr;
  };
  auto wiring = std::make_shared<Wiring>();
  DfiProxy::Session& session = second_proxy.create_session(
      [sw3](const std::vector<std::uint8_t>& bytes) { sw3->receive_control(bytes); },
      [wiring](const std::vector<std::uint8_t>& bytes) {
        if (wiring->ctrl != nullptr) wiring->ctrl->receive(bytes);
      });
  wiring->proxy = &session;
  LearningController::Session& ctrl =
      controller_.accept_connection([wiring](const std::vector<std::uint8_t>& bytes) {
        if (wiring->proxy != nullptr) wiring->proxy->from_controller(bytes);
      });
  wiring->ctrl = &ctrl;
  sw3->connect_control([wiring](const std::vector<std::uint8_t>& bytes) {
    if (wiring->proxy != nullptr) wiring->proxy->from_switch(bytes);
  });
  network_.settle();

  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  const PolicyRuleId id = dfi_.policy_manager().insert(allow, PdpPriority{1}, "t");

  // Flows through both instances' switches work.
  EXPECT_TRUE(try_connect(*alice_, *bob_, 445).connected);    // via first PCP
  EXPECT_TRUE(try_connect(*mail_, carol, 445).connected);     // via second PCP
  EXPECT_GT(second_pcp.stats().allowed, 0u);

  // Revocation flushes rules installed through *both* PCP instances.
  dfi_.policy_manager().revoke(id);
  sim_.run_until(sim_.now() + seconds(1.0));
  std::size_t stale = 0;
  sw3->pipeline().table(0).for_each([&](const FlowRule& rule) {
    if (rule.cookie.value == id.value) ++stale;
  });
  EXPECT_EQ(stale, 0u);
  EXPECT_FALSE(try_connect(*mail_, carol, 445).connected);
}

TEST_F(IntegrationTest, LinkFailureCutsFlowsAndNotifiesController) {
  insert_allow_all();
  ASSERT_TRUE(try_connect(*alice_, *mail_, 143).connected);

  // The inter-switch trunk fails: cross-switch flows die, same-switch
  // flows survive, and the controller hears about it through the proxy.
  const std::uint64_t status_before = controller_.stats().port_status_received;
  network_.find_switch(Dpid{1})->set_port_down(PortNo{10}, true);
  sim_.run_until(sim_.now() + seconds(1.0));
  EXPECT_GT(controller_.stats().port_status_received, status_before);

  EXPECT_FALSE(try_connect(*alice_, *mail_, 143).connected);
  EXPECT_TRUE(try_connect(*alice_, *bob_, 445).connected);

  // Repairing the trunk restores cross-switch reachability.
  network_.find_switch(Dpid{1})->set_port_down(PortNo{10}, false);
  sim_.run_until(sim_.now() + seconds(1.0));
  EXPECT_TRUE(try_connect(*alice_, *mail_, 143).connected);
}

TEST_F(IntegrationTest, ControllerSeesShiftedTableSpace) {
  insert_allow_all();
  try_connect(*alice_, *bob_, 445);
  for (const auto& session : controller_.sessions()) {
    if (session->dpid().has_value()) {
      // Switches have 4 tables; the controller must see 3.
      EXPECT_EQ(session->advertised_tables(), 3);
    }
  }
}

}  // namespace
}  // namespace dfi
