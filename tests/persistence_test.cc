// Tests for the policy/binding persistence layer (MySQL surrogate).
#include <gtest/gtest.h>

#include "bus/message_bus.h"
#include "common/rng.h"
#include "core/persistence.h"
#include "testbed/scale_generator.h"

namespace dfi {
namespace {

class PersistenceTest : public ::testing::Test {
 protected:
  PersistenceTest() : manager_(bus_), erm_(bus_) {}

  MessageBus bus_;
  PolicyManager manager_;
  EntityResolutionManager erm_;
};

PolicyRule rich_rule() {
  PolicyRule rule;
  rule.action = PolicyAction::kDeny;
  rule.properties.ether_type = 0x0800;
  rule.properties.ip_proto = 6;
  rule.source.user = Username{"alice"};
  rule.source.host = Hostname{"alice-laptop"};
  rule.source.ip = Ipv4Address(10, 0, 0, 1);
  rule.source.mac = MacAddress::from_u64(0xa1);
  rule.destination.host = Hostname{"srv-email"};
  rule.destination.l4_port = 143;
  rule.destination.switch_port = PortNo{3};
  rule.destination.dpid = Dpid{12};
  return rule;
}

TEST_F(PersistenceTest, PolicyRoundTripPreservesEverything) {
  manager_.insert(rich_rule(), PdpPriority{42}, "pdp-x");
  PolicyRule wildcard;
  wildcard.action = PolicyAction::kAllow;
  manager_.insert(wildcard, PdpPriority{7}, "pdp-y");

  const std::string snapshot = save_policies(manager_);

  MessageBus bus2;
  PolicyManager restored(bus2);
  const auto loaded = load_policies(restored, snapshot);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value(), 2u);
  ASSERT_EQ(restored.size(), 2u);

  // Field-exact round trip (ids differ; rules, priorities and owners match).
  bool found_rich = false, found_wildcard = false;
  for (const auto& stored : restored.rules()) {
    if (stored.pdp_name == "pdp-x") {
      found_rich = true;
      EXPECT_EQ(stored.priority, PdpPriority{42});
      EXPECT_EQ(stored.rule, rich_rule());
    }
    if (stored.pdp_name == "pdp-y") {
      found_wildcard = true;
      EXPECT_EQ(stored.priority, PdpPriority{7});
      EXPECT_EQ(stored.rule, wildcard);
    }
  }
  EXPECT_TRUE(found_rich);
  EXPECT_TRUE(found_wildcard);

  // And the reloaded database serializes identically.
  EXPECT_EQ(save_policies(restored), snapshot);
}

TEST_F(PersistenceTest, PolicyLoadSkipsCommentsAndBlankLines) {
  const std::string snapshot =
      "# a comment\n"
      "\n"
      "policy|p|10|allow|ether=*|proto=*|*|*\n";
  const auto loaded = load_policies(manager_, snapshot);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), 1u);
}

TEST_F(PersistenceTest, PolicyLoadReportsLineNumbers) {
  const std::string snapshot =
      "policy|p|10|allow|ether=*|proto=*|*|*\n"
      "policy|p|10|frobnicate|ether=*|proto=*|*|*\n";
  const auto loaded = load_policies(manager_, snapshot);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().message.find("line 2"), std::string::npos);
}

TEST_F(PersistenceTest, PolicyLoadRejectsMalformedSpecsAndNumbers) {
  EXPECT_FALSE(load_policies(manager_, "policy|p|10|allow|ether=*|proto=*\n").ok());
  EXPECT_FALSE(
      load_policies(manager_, "policy|p|x|allow|ether=*|proto=*|*|*\n").ok());
  EXPECT_FALSE(
      load_policies(manager_, "policy|p|10|allow|ether=*|proto=*|ip=999.1.1.1|*\n").ok());
  EXPECT_FALSE(
      load_policies(manager_, "policy|p|10|allow|ether=*|proto=*|nonsense|*\n").ok());
  EXPECT_FALSE(
      load_policies(manager_, "policy|p|10|allow|ether=*|proto=*|wat=1|*\n").ok());
}

TEST_F(PersistenceTest, BindingRoundTrip) {
  BindingEvent user_host;
  user_host.kind = BindingKind::kUserHost;
  user_host.user = Username{"alice"};
  user_host.host = Hostname{"h1"};
  erm_.apply(user_host);
  BindingEvent host_ip;
  host_ip.kind = BindingKind::kHostIp;
  host_ip.host = Hostname{"h1"};
  host_ip.ip = Ipv4Address(10, 0, 0, 1);
  erm_.apply(host_ip);
  BindingEvent ip_mac;
  ip_mac.kind = BindingKind::kIpMac;
  ip_mac.ip = Ipv4Address(10, 0, 0, 1);
  ip_mac.mac = MacAddress::from_u64(0xbeef);
  erm_.apply(ip_mac);
  BindingEvent location;
  location.kind = BindingKind::kMacLocation;
  location.mac = MacAddress::from_u64(0xbeef);
  location.dpid = Dpid{3};
  location.port = PortNo{7};
  erm_.apply(location);

  const std::string snapshot = save_bindings(erm_);

  MessageBus bus2;
  EntityResolutionManager restored(bus2);
  const auto loaded = load_bindings(restored, snapshot);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(loaded.value(), 4u);
  EXPECT_EQ(restored.binding_count(), erm_.binding_count());

  // Restored state answers enrichment queries identically.
  EndpointView view;
  view.ip = Ipv4Address(10, 0, 0, 1);
  const EndpointView enriched = restored.enrich(view);
  ASSERT_EQ(enriched.usernames.size(), 1u);
  EXPECT_EQ(enriched.usernames[0], Username{"alice"});
  EXPECT_EQ(restored.location_of_mac(Dpid{3}, MacAddress::from_u64(0xbeef)), PortNo{7});
  EXPECT_EQ(save_bindings(restored), snapshot);
}

TEST_F(PersistenceTest, BindingLoadRejectsGarbage) {
  EXPECT_FALSE(load_bindings(erm_, "binding|teleport|a|b\n").ok());
  EXPECT_FALSE(load_bindings(erm_, "binding|ip-mac|not-an-ip|02:00:00:00:00:01\n").ok());
  EXPECT_FALSE(load_bindings(erm_, "binding|mac-location|02:00:00:00:00:01|3\n").ok());
  EXPECT_FALSE(load_bindings(erm_, "nonsense\n").ok());
  const auto with_line = load_bindings(erm_, "binding|user-host|a|h\nbroken\n");
  ASSERT_FALSE(with_line.ok());
  EXPECT_NE(with_line.error().message.find("line 2"), std::string::npos);
}

TEST_F(PersistenceTest, ControlPlaneRestartPreservesDecisions) {
  // "Restart" scenario: a running deployment's policy database and binding
  // state are snapshotted, a fresh control plane loads them, and every
  // decision comes out the same.
  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  allow.source.user = Username{"alice"};
  allow.destination.host = Hostname{"srv-email"};
  manager_.insert(allow, PdpPriority{50}, "mail-pdp");
  PolicyRule deny;
  deny.action = PolicyAction::kDeny;
  deny.destination.l4_port = 22;
  manager_.insert(deny, PdpPriority{90}, "hardening");

  BindingEvent host_ip;
  host_ip.kind = BindingKind::kHostIp;
  host_ip.host = Hostname{"alice-laptop"};
  host_ip.ip = Ipv4Address(10, 0, 0, 5);
  erm_.apply(host_ip);
  BindingEvent user_host;
  user_host.kind = BindingKind::kUserHost;
  user_host.user = Username{"alice"};
  user_host.host = Hostname{"alice-laptop"};
  erm_.apply(user_host);
  BindingEvent mail_ip;
  mail_ip.kind = BindingKind::kHostIp;
  mail_ip.host = Hostname{"srv-email"};
  mail_ip.ip = Ipv4Address(10, 0, 0, 9);
  erm_.apply(mail_ip);

  MessageBus bus2;
  PolicyManager manager2(bus2);
  EntityResolutionManager erm2(bus2);
  ASSERT_TRUE(load_policies(manager2, save_policies(manager_)).ok());
  ASSERT_TRUE(load_bindings(erm2, save_bindings(erm_)).ok());

  const auto decide = [](PolicyManager& pm, EntityResolutionManager& erm,
                         std::uint16_t dst_port) {
    FlowView flow;
    flow.ether_type = 0x0800;
    flow.ip_proto = 6;
    flow.src.ip = Ipv4Address(10, 0, 0, 5);
    flow.dst.ip = Ipv4Address(10, 0, 0, 9);
    flow.src.l4_port = 50000;
    flow.dst.l4_port = dst_port;
    flow.src = erm.enrich(flow.src);
    flow.dst = erm.enrich(flow.dst);
    return pm.query(flow);
  };
  for (const std::uint16_t port : {22, 143, 445}) {
    const PolicyDecision before = decide(manager_, erm_, port);
    const PolicyDecision after = decide(manager2, erm2, port);
    EXPECT_EQ(before.action, after.action) << "port " << port;
    EXPECT_EQ(before.default_deny, after.default_deny) << "port " << port;
  }
}

// ------------------------------------------------ round-trip property test

PolicyRule random_rule(Rng& rng) {
  PolicyRule rule;
  rule.action = rng.chance(0.5) ? PolicyAction::kAllow : PolicyAction::kDeny;
  if (rng.chance(0.5)) {
    rule.properties.ether_type = static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff));
  }
  if (rng.chance(0.4)) {
    rule.properties.ip_proto = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  }
  const auto random_endpoint = [&rng](EndpointSpec& spec) {
    if (rng.chance(0.3)) spec.user = Username{"user" + std::to_string(rng.uniform_int(0, 9))};
    if (rng.chance(0.3)) spec.host = Hostname{"host" + std::to_string(rng.uniform_int(0, 9))};
    if (rng.chance(0.3)) {
      spec.ip = Ipv4Address(10, 0, static_cast<std::uint8_t>(rng.uniform_int(0, 255)),
                            static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    if (rng.chance(0.3)) spec.l4_port = static_cast<std::uint16_t>(rng.uniform_int(0, 0xffff));
    if (rng.chance(0.3)) spec.mac = MacAddress::from_u64(static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 24)));
    if (rng.chance(0.2)) spec.switch_port = PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 48))};
    if (rng.chance(0.2)) spec.dpid = Dpid{static_cast<std::uint64_t>(rng.uniform_int(1, 16))};
  };
  random_endpoint(rule.source);
  random_endpoint(rule.destination);
  return rule;
}

BindingEvent random_binding(Rng& rng) {
  BindingEvent event;
  const int kind = static_cast<int>(rng.uniform_int(0, 3));
  event.kind = static_cast<BindingKind>(kind);
  event.user = Username{"user" + std::to_string(rng.uniform_int(0, 9))};
  event.host = Hostname{"host" + std::to_string(rng.uniform_int(0, 9))};
  event.ip = Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 250)));
  event.mac = MacAddress::from_u64(static_cast<std::uint64_t>(rng.uniform_int(1, 1 << 16)));
  event.dpid = Dpid{static_cast<std::uint64_t>(rng.uniform_int(1, 4))};
  event.port = PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 48))};
  return event;
}

TEST_F(PersistenceTest, RandomStatesRoundTripByteIdentically) {
  // Property: for any policy/binding state, save -> load -> save is the
  // identity on the serialized text, and the reloaded database preserves
  // PDP ownership and priorities — including ties, whose relative order is
  // insertion order and must survive the trip.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed * 0x9e37);
    MessageBus bus;
    PolicyManager manager(bus);
    EntityResolutionManager erm(bus);

    const int rule_count = static_cast<int>(rng.uniform_int(0, 30));
    // A reduced priority palette forces plenty of ties.
    for (int i = 0; i < rule_count; ++i) {
      const PdpPriority priority{static_cast<std::uint32_t>(rng.uniform_int(1, 4))};
      const std::string pdp = "pdp" + std::to_string(rng.uniform_int(0, 2));
      manager.insert(random_rule(rng), priority, pdp);
    }
    const int binding_count = static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < binding_count; ++i) {
      BindingEvent event = random_binding(rng);
      event.retracted = rng.chance(0.2);  // some retractions of maybe-absent bindings
      erm.apply(event);
    }

    const std::string policies = save_policies(manager);
    const std::string bindings = save_bindings(erm);

    MessageBus bus2;
    PolicyManager manager2(bus2);
    EntityResolutionManager erm2(bus2);
    const auto loaded_policies = load_policies(manager2, policies);
    ASSERT_TRUE(loaded_policies.ok()) << "seed " << seed << ": "
                                      << loaded_policies.error().message;
    const auto loaded_bindings = load_bindings(erm2, bindings);
    ASSERT_TRUE(loaded_bindings.ok()) << "seed " << seed << ": "
                                      << loaded_bindings.error().message;

    // Byte-identical second save: serialization is canonical.
    EXPECT_EQ(save_policies(manager2), policies) << "seed " << seed;
    EXPECT_EQ(save_bindings(erm2), bindings) << "seed " << seed;

    // Ownership, priority, and tie order survive position by position.
    const auto before = manager.rules();
    const auto after = manager2.rules();
    ASSERT_EQ(before.size(), after.size()) << "seed " << seed;
    for (std::size_t i = 0; i < before.size(); ++i) {
      EXPECT_EQ(before[i].pdp_name, after[i].pdp_name) << "seed " << seed;
      EXPECT_EQ(before[i].priority, after[i].priority) << "seed " << seed;
      EXPECT_EQ(before[i].rule, after[i].rule) << "seed " << seed;
    }
    EXPECT_EQ(erm2.binding_count(), erm.binding_count()) << "seed " << seed;
  }
}

TEST_F(PersistenceTest, BindingRoundTripRebuildsInternedState) {
  // The on-disk format is strings at the boundary; the loaded ERM
  // re-interns every entity and rebuilds its id-keyed tables from scratch.
  // Verify across a population large enough to force interner table growth
  // that (a) the text round-trip is byte-identical, (b) every entity named
  // in the export is interned on the loaded side, and (c) interned-path
  // queries answer identically to the original.
  ScaleConfig config;
  config.hosts = 600;
  const ScaleGenerator gen(config);
  gen.emit_initial_bindings([&](const BindingEvent& event) { erm_.apply(event); });
  const std::string snapshot = save_bindings(erm_);

  MessageBus bus2;
  EntityResolutionManager restored(bus2);
  const auto loaded = load_bindings(restored, snapshot);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message;
  EXPECT_EQ(save_bindings(restored), snapshot);
  EXPECT_EQ(restored.binding_count(), erm_.binding_count());

  const EntityInterner& interner = restored.interner();
  EXPECT_EQ(interner.users().size(), erm_.interner().users().size());
  EXPECT_EQ(interner.hosts().size(), erm_.interner().hosts().size());
  EXPECT_EQ(interner.ips().size(), erm_.interner().ips().size());
  // (MAC counts can differ legitimately: a replaced DHCP lease interns the
  // old MAC on the original but exports only the final binding.)

  for (std::uint32_t h = 0; h < config.hosts; h += 13) {
    ASSERT_TRUE(interner.users().find(gen.user_name(h)).valid()) << h;
    ASSERT_TRUE(interner.hosts().find(gen.host_name(h)).valid()) << h;
    EXPECT_EQ(restored.hosts_of_ip(gen.ip_of(h)), erm_.hosts_of_ip(gen.ip_of(h)));
    EXPECT_EQ(restored.hosts_of_user(Username{gen.user_name(h)}),
              erm_.hosts_of_user(Username{gen.user_name(h)}));
    EXPECT_EQ(restored.mac_of_ip(gen.ip_of(h)), erm_.mac_of_ip(gen.ip_of(h)));
    EXPECT_EQ(restored.ips_of_mac(gen.mac_of(h)), erm_.ips_of_mac(gen.mac_of(h)));
  }
}

TEST_F(PersistenceTest, ErmSnapshotCoversAllKinds) {
  BindingEvent user_host;
  user_host.kind = BindingKind::kUserHost;
  user_host.user = Username{"u"};
  user_host.host = Hostname{"h"};
  erm_.apply(user_host);
  EXPECT_EQ(erm_.snapshot().size(), 1u);
  BindingEvent retraction = user_host;
  retraction.retracted = true;
  erm_.apply(retraction);
  EXPECT_TRUE(erm_.snapshot().empty());
}

}  // namespace
}  // namespace dfi
