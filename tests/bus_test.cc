// Unit tests for the in-process message bus (RabbitMQ surrogate).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bus/message_bus.h"

namespace dfi {
namespace {

struct EventA {
  int value = 0;
};
struct EventB {
  std::string text;
};

TEST(MessageBus, DeliversToSubscriber) {
  MessageBus bus;
  std::vector<int> got;
  auto sub = bus.subscribe<EventA>("topic", [&](const EventA& e) { got.push_back(e.value); });
  bus.publish("topic", EventA{1});
  bus.publish("topic", EventA{2});
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(MessageBus, TopicIsolation) {
  MessageBus bus;
  int count = 0;
  auto sub = bus.subscribe<EventA>("a", [&](const EventA&) { ++count; });
  bus.publish("b", EventA{1});
  EXPECT_EQ(count, 0);
  bus.publish("a", EventA{1});
  EXPECT_EQ(count, 1);
}

TEST(MessageBus, TypeFilteringOnSameTopic) {
  MessageBus bus;
  int a_count = 0, b_count = 0;
  auto sub_a = bus.subscribe<EventA>("t", [&](const EventA&) { ++a_count; });
  auto sub_b = bus.subscribe<EventB>("t", [&](const EventB&) { ++b_count; });
  bus.publish("t", EventA{});
  bus.publish("t", EventB{});
  bus.publish("t", EventB{});
  EXPECT_EQ(a_count, 1);
  EXPECT_EQ(b_count, 2);
}

TEST(MessageBus, MultipleSubscribersInOrder) {
  MessageBus bus;
  std::vector<int> order;
  auto s1 = bus.subscribe<EventA>("t", [&](const EventA&) { order.push_back(1); });
  auto s2 = bus.subscribe<EventA>("t", [&](const EventA&) { order.push_back(2); });
  bus.publish("t", EventA{});
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(MessageBus, SubscriptionRaiiUnsubscribes) {
  MessageBus bus;
  int count = 0;
  {
    auto sub = bus.subscribe<EventA>("t", [&](const EventA&) { ++count; });
    bus.publish("t", EventA{});
    EXPECT_EQ(bus.subscriber_count("t"), 1u);
  }
  EXPECT_EQ(bus.subscriber_count("t"), 0u);
  bus.publish("t", EventA{});
  EXPECT_EQ(count, 1);
}

TEST(MessageBus, SubscriptionMoveTransfersOwnership) {
  MessageBus bus;
  int count = 0;
  Subscription outer;
  {
    auto inner = bus.subscribe<EventA>("t", [&](const EventA&) { ++count; });
    outer = std::move(inner);
  }
  bus.publish("t", EventA{});
  EXPECT_EQ(count, 1);
  outer.reset();
  bus.publish("t", EventA{});
  EXPECT_EQ(count, 1);
}

TEST(MessageBus, ReentrantSubscribeDuringDispatch) {
  MessageBus bus;
  int late_count = 0;
  Subscription late;
  auto sub = bus.subscribe<EventA>("t", [&](const EventA&) {
    if (!late.active()) {
      late = bus.subscribe<EventA>("t", [&](const EventA&) { ++late_count; });
    }
  });
  bus.publish("t", EventA{});  // late subscriber added mid-dispatch: not called
  EXPECT_EQ(late_count, 0);
  bus.publish("t", EventA{});
  EXPECT_EQ(late_count, 1);
}

TEST(MessageBus, ReentrantUnsubscribeDuringDispatch) {
  MessageBus bus;
  int count = 0;
  Subscription self;
  self = bus.subscribe<EventA>("t", [&](const EventA&) {
    ++count;
    self.reset();  // unsubscribe from inside the handler
  });
  bus.publish("t", EventA{});
  bus.publish("t", EventA{});
  EXPECT_EQ(count, 1);
}

TEST(MessageBus, UnsubscribingLaterSubscriberMidDispatchPreventsItsDelivery) {
  MessageBus bus;
  int second_count = 0;
  Subscription second;
  auto first = bus.subscribe<EventA>("t", [&](const EventA&) {
    second.reset();  // drop a *later* subscription while dispatching
  });
  second = bus.subscribe<EventA>("t", [&](const EventA&) { ++second_count; });
  bus.publish("t", EventA{});
  EXPECT_EQ(second_count, 0)
      << "a handler unsubscribed mid-dispatch must not be invoked";
  EXPECT_EQ(bus.subscriber_count("t"), 1u);
  bus.publish("t", EventA{});
  EXPECT_EQ(second_count, 0);
}

// The failure mode the deferred-removal dispatch exists to prevent: an
// earlier handler destroys the object whose state a later handler's
// captures point at. Dispatching from a snapshot copy of the subscriber
// list would still invoke the later handler and read freed memory (caught
// by ASan as heap-use-after-free).
TEST(MessageBus, MidDispatchUnsubscribeDoesNotTouchDestroyedState) {
  MessageBus bus;
  struct Listener {
    explicit Listener(MessageBus& bus) {
      sub = bus.subscribe<EventA>("t", [this](const EventA&) { ++hits; });
    }
    int hits = 0;
    Subscription sub;
  };
  auto listener = std::make_unique<Listener>(bus);
  auto killer = bus.subscribe<EventA>("t", [&](const EventA&) {
    listener.reset();  // destroys the Listener (and its captured `this`)
  });
  // `killer` subscribed after the listener, so reverse the order: resubscribe
  // the listener behind it.
  listener = std::make_unique<Listener>(bus);
  bus.publish("t", EventA{});
  EXPECT_EQ(bus.subscriber_count("t"), 1u);
}

TEST(MessageBus, NestedPublishSkipsDeadEntriesAndCompactsOnceDone) {
  MessageBus bus;
  int inner_count = 0;
  Subscription inner;
  auto outer = bus.subscribe<EventA>("t", [&](const EventA& e) {
    if (e.value == 0) {
      inner.reset();
      bus.publish("t", EventA{1});  // nested dispatch sees the dead entry
    }
  });
  inner = bus.subscribe<EventA>("t", [&](const EventA&) { ++inner_count; });
  bus.publish("t", EventA{0});
  EXPECT_EQ(inner_count, 0);
  EXPECT_EQ(bus.subscriber_count("t"), 1u);
}

TEST(MessageBus, ResubscribeDuringDispatchAfterUnsubscribe) {
  MessageBus bus;
  std::vector<int> got;
  Subscription other;
  bool churned = false;
  other = bus.subscribe<EventA>("t", [&](const EventA& e) { got.push_back(e.value); });
  auto churner = bus.subscribe<EventA>("t", [&](const EventA&) {
    if (churned) return;
    churned = true;
    // Replace `other` mid-dispatch: the old handler already ran this
    // publish (it subscribed earlier); the replacement only sees the next.
    other.reset();
    other = bus.subscribe<EventA>("t",
                                  [&](const EventA& e) { got.push_back(100 + e.value); });
  });
  bus.publish("t", EventA{1});
  bus.publish("t", EventA{2});
  EXPECT_EQ(got, (std::vector<int>{1, 102}));
}

TEST(MessageBus, PublishedCountTracksAllPublishes) {
  MessageBus bus;
  bus.publish("nobody-listens", EventA{});
  bus.publish("nobody-listens", EventB{});
  EXPECT_EQ(bus.published_count(), 2u);
}

}  // namespace
}  // namespace dfi
