// Unit tests for the in-process message bus (RabbitMQ surrogate).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "bus/message_bus.h"

namespace dfi {
namespace {

struct EventA {
  int value = 0;
};
struct EventB {
  std::string text;
};

TEST(MessageBus, DeliversToSubscriber) {
  MessageBus bus;
  std::vector<int> got;
  auto sub = bus.subscribe<EventA>("topic", [&](const EventA& e) { got.push_back(e.value); });
  bus.publish("topic", EventA{1});
  bus.publish("topic", EventA{2});
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

TEST(MessageBus, TopicIsolation) {
  MessageBus bus;
  int count = 0;
  auto sub = bus.subscribe<EventA>("a", [&](const EventA&) { ++count; });
  bus.publish("b", EventA{1});
  EXPECT_EQ(count, 0);
  bus.publish("a", EventA{1});
  EXPECT_EQ(count, 1);
}

TEST(MessageBus, TypeFilteringOnSameTopic) {
  MessageBus bus;
  int a_count = 0, b_count = 0;
  auto sub_a = bus.subscribe<EventA>("t", [&](const EventA&) { ++a_count; });
  auto sub_b = bus.subscribe<EventB>("t", [&](const EventB&) { ++b_count; });
  bus.publish("t", EventA{});
  bus.publish("t", EventB{});
  bus.publish("t", EventB{});
  EXPECT_EQ(a_count, 1);
  EXPECT_EQ(b_count, 2);
}

TEST(MessageBus, MultipleSubscribersInOrder) {
  MessageBus bus;
  std::vector<int> order;
  auto s1 = bus.subscribe<EventA>("t", [&](const EventA&) { order.push_back(1); });
  auto s2 = bus.subscribe<EventA>("t", [&](const EventA&) { order.push_back(2); });
  bus.publish("t", EventA{});
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(MessageBus, SubscriptionRaiiUnsubscribes) {
  MessageBus bus;
  int count = 0;
  {
    auto sub = bus.subscribe<EventA>("t", [&](const EventA&) { ++count; });
    bus.publish("t", EventA{});
    EXPECT_EQ(bus.subscriber_count("t"), 1u);
  }
  EXPECT_EQ(bus.subscriber_count("t"), 0u);
  bus.publish("t", EventA{});
  EXPECT_EQ(count, 1);
}

TEST(MessageBus, SubscriptionMoveTransfersOwnership) {
  MessageBus bus;
  int count = 0;
  Subscription outer;
  {
    auto inner = bus.subscribe<EventA>("t", [&](const EventA&) { ++count; });
    outer = std::move(inner);
  }
  bus.publish("t", EventA{});
  EXPECT_EQ(count, 1);
  outer.reset();
  bus.publish("t", EventA{});
  EXPECT_EQ(count, 1);
}

TEST(MessageBus, ReentrantSubscribeDuringDispatch) {
  MessageBus bus;
  int late_count = 0;
  Subscription late;
  auto sub = bus.subscribe<EventA>("t", [&](const EventA&) {
    if (!late.active()) {
      late = bus.subscribe<EventA>("t", [&](const EventA&) { ++late_count; });
    }
  });
  bus.publish("t", EventA{});  // late subscriber added mid-dispatch: not called
  EXPECT_EQ(late_count, 0);
  bus.publish("t", EventA{});
  EXPECT_EQ(late_count, 1);
}

TEST(MessageBus, ReentrantUnsubscribeDuringDispatch) {
  MessageBus bus;
  int count = 0;
  Subscription self;
  self = bus.subscribe<EventA>("t", [&](const EventA&) {
    ++count;
    self.reset();  // unsubscribe from inside the handler
  });
  bus.publish("t", EventA{});
  bus.publish("t", EventA{});
  EXPECT_EQ(count, 1);
}

TEST(MessageBus, PublishedCountTracksAllPublishes) {
  MessageBus bus;
  bus.publish("nobody-listens", EventA{});
  bus.publish("nobody-listens", EventB{});
  EXPECT_EQ(bus.published_count(), 2u);
}

}  // namespace
}  // namespace dfi
