// Round-trip and robustness tests for the OpenFlow 1.3 wire codec.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/rng.h"
#include "openflow/wire.h"

namespace dfi {
namespace {

Match sample_match() {
  Match match;
  match.in_port = PortNo{7};
  match.eth_src = MacAddress::from_u64(0x020000000001ull);
  match.eth_dst = MacAddress::from_u64(0x020000000002ull);
  match.eth_type = 0x0800;
  match.ip_proto = 6;
  match.ipv4_src = Ipv4Address(10, 0, 0, 1);
  match.ipv4_dst = Ipv4Address(10, 0, 0, 2);
  match.tcp_src = 49152;
  match.tcp_dst = 445;
  return match;
}

void expect_roundtrip(const OfMessage& message) {
  const auto bytes = encode(message);
  ASSERT_GE(bytes.size(), 8u);
  EXPECT_EQ(bytes[0], kOfVersion13);
  const std::size_t framed = (static_cast<std::size_t>(bytes[2]) << 8) | bytes[3];
  EXPECT_EQ(framed, bytes.size());
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded.value().xid, message.xid);
  EXPECT_EQ(decoded.value().type(), message.type());
  // Byte-exact re-encode proves structural equality for every field we model.
  EXPECT_EQ(encode(decoded.value()), bytes);
}

TEST(Wire, HelloRoundTrip) { expect_roundtrip(OfMessage{1, HelloMsg{}}); }

TEST(Wire, ErrorRoundTrip) {
  expect_roundtrip(OfMessage{2, ErrorMsg{5, 2, {1, 2, 3}}});
}

TEST(Wire, EchoRoundTrip) {
  expect_roundtrip(OfMessage{3, EchoRequestMsg{{0xaa, 0xbb}}});
  expect_roundtrip(OfMessage{4, EchoReplyMsg{{}}});
}

TEST(Wire, FeaturesRoundTrip) {
  expect_roundtrip(OfMessage{5, FeaturesRequestMsg{}});
  FeaturesReplyMsg reply;
  reply.datapath_id = Dpid{0xdeadbeefull};
  reply.n_buffers = 256;
  reply.n_tables = 4;
  reply.capabilities = 0x5;
  expect_roundtrip(OfMessage{6, reply});
}

TEST(Wire, PacketInRoundTrip) {
  PacketInMsg packet_in;
  packet_in.buffer_id = kNoBuffer;
  packet_in.total_len = 60;
  packet_in.reason = PacketInReason::kNoMatch;
  packet_in.table_id = 0;
  packet_in.cookie = Cookie{0x1234};
  packet_in.in_port = PortNo{3};
  packet_in.data = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  expect_roundtrip(OfMessage{7, packet_in});
}

TEST(Wire, PacketOutRoundTrip) {
  PacketOutMsg out;
  out.in_port = PortNo{2};
  out.actions = {OutputAction{kPortFlood}};
  out.data = {9, 9, 9};
  expect_roundtrip(OfMessage{8, out});
}

TEST(Wire, FlowModRoundTripAllCommands) {
  for (const auto command :
       {FlowModCommand::kAdd, FlowModCommand::kModify, FlowModCommand::kModifyStrict,
        FlowModCommand::kDelete, FlowModCommand::kDeleteStrict}) {
    FlowModMsg mod;
    mod.cookie = Cookie{42};
    mod.cookie_mask = Cookie{~0ull};
    mod.table_id = 1;
    mod.command = command;
    mod.idle_timeout = 10;
    mod.hard_timeout = 30;
    mod.priority = 100;
    mod.match = sample_match();
    mod.instructions = Instructions::to_table(2);
    expect_roundtrip(OfMessage{9, mod});
  }
}

TEST(Wire, FlowModWithApplyActionsAndGoto) {
  FlowModMsg mod;
  mod.match.eth_dst = MacAddress::from_u64(5);
  Instructions instructions;
  instructions.apply_actions = {OutputAction{PortNo{4}}, OutputAction{kPortController}};
  instructions.goto_table = 3;
  mod.instructions = instructions;
  expect_roundtrip(OfMessage{10, mod});

  const auto decoded = decode(encode(OfMessage{10, mod}));
  ASSERT_TRUE(decoded.ok());
  const auto& out = std::get<FlowModMsg>(decoded.value().payload);
  ASSERT_EQ(out.instructions.apply_actions.size(), 2u);
  EXPECT_EQ(std::get<OutputAction>(out.instructions.apply_actions[0]).port, PortNo{4});
  EXPECT_EQ(out.instructions.goto_table, 3);
  EXPECT_EQ(out.match, mod.match);
}

TEST(Wire, FlowRemovedRoundTrip) {
  FlowRemovedMsg removed;
  removed.cookie = Cookie{77};
  removed.priority = 5;
  removed.reason = FlowRemovedReason::kIdleTimeout;
  removed.table_id = 2;
  removed.duration_sec = 120;
  removed.packet_count = 1000;
  removed.byte_count = 64000;
  removed.match = sample_match();
  expect_roundtrip(OfMessage{11, removed});
}

TEST(Wire, MultipartRoundTrip) {
  MultipartRequestMsg request;
  request.flow_request.table_id = 0xff;
  request.flow_request.cookie = Cookie{3};
  request.flow_request.cookie_mask = Cookie{~0ull};
  expect_roundtrip(OfMessage{12, request});

  MultipartReplyMsg reply;
  for (int i = 0; i < 3; ++i) {
    FlowStatsEntry entry;
    entry.table_id = static_cast<std::uint8_t>(i);
    entry.priority = static_cast<std::uint16_t>(10 * i);
    entry.cookie = Cookie{static_cast<std::uint64_t>(i)};
    entry.packet_count = 100u * i;
    entry.match = sample_match();
    entry.instructions = Instructions::to_table(static_cast<std::uint8_t>(i + 1));
    reply.flow_stats.push_back(entry);
  }
  expect_roundtrip(OfMessage{13, reply});
}

TEST(Wire, BarrierRoundTrip) {
  expect_roundtrip(OfMessage{14, BarrierRequestMsg{}});
  expect_roundtrip(OfMessage{15, BarrierReplyMsg{}});
}

TEST(Wire, EmptyMatchEncodesWithPadding) {
  FlowModMsg mod;  // fully wildcarded match
  const auto decoded = decode(encode(OfMessage{1, mod}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::get<FlowModMsg>(decoded.value().payload).match.is_wildcard_all());
}

TEST(Wire, RejectsWrongVersion) {
  auto bytes = encode(OfMessage{1, HelloMsg{}});
  bytes[0] = 0x01;  // OpenFlow 1.0
  const auto decoded = decode(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kUnsupported);
}

TEST(Wire, RejectsLengthMismatch) {
  auto bytes = encode(OfMessage{1, EchoRequestMsg{{1, 2, 3}}});
  bytes.pop_back();
  EXPECT_FALSE(decode(bytes).ok());
}

TEST(Wire, TruncationNeverCrashes) {
  FlowModMsg mod;
  mod.match = sample_match();
  mod.instructions = Instructions::to_table(1);
  const auto bytes = encode(OfMessage{1, mod});
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    std::vector<std::uint8_t> prefix(bytes.begin(), bytes.begin() + len);
    if (len >= 4) {
      // Fix up the framed length so the frame check passes and the body
      // parser does the bounds checking.
      prefix[2] = static_cast<std::uint8_t>(len >> 8);
      prefix[3] = static_cast<std::uint8_t>(len);
    }
    // Truncation at a TLV boundary can yield a valid shorter message (e.g.
    // a flow-mod with fewer instructions); anything else must fail cleanly.
    // Either way: no crash, and a successful decode must re-encode
    // consistently.
    const auto decoded = decode(prefix);
    if (decoded.ok()) {
      const auto reencoded = encode(decoded.value());
      EXPECT_EQ(reencoded.size(), prefix.size()) << "len=" << len;
    }
  }
}

TEST(FrameDecoderTest, ReassemblesArbitraryChunking) {
  // Concatenate several messages and feed them one byte at a time.
  std::vector<std::uint8_t> stream;
  const std::vector<OfMessage> messages = {
      OfMessage{1, HelloMsg{}},
      OfMessage{2, EchoRequestMsg{{0x55}}},
      OfMessage{3, BarrierRequestMsg{}},
  };
  for (const auto& message : messages) {
    const auto bytes = encode(message);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }

  FrameDecoder decoder;
  std::vector<OfMessage> decoded;
  for (const std::uint8_t byte : stream) {
    decoder.feed({byte});
    for (auto& result : decoder.drain()) {
      ASSERT_TRUE(result.ok());
      decoded.push_back(std::move(result).value());
    }
  }
  ASSERT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded[0].type(), OfType::kHello);
  EXPECT_EQ(decoded[1].type(), OfType::kEchoRequest);
  EXPECT_EQ(decoded[2].type(), OfType::kBarrierRequest);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, CorruptLengthResetsStream) {
  FrameDecoder decoder;
  decoder.feed({0x04, 0x00, 0x00, 0x02, 0, 0, 0, 0});  // length 2 < 8
  const auto results = decoder.drain();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

// Regression for the old drain(): it erased consumed bytes from the front
// of the buffer on every call, which is O(n^2) across a drip-fed stream.
// The compacting decoder must chew through 10k one-byte chunks without
// re-copying the whole buffer per feed; with the old implementation this
// test still passes functionally but the buffered-bytes invariant below
// documents the new contract (consumed bytes are reclaimed, never leaked).
TEST(FrameDecoderTest, TenThousandOneByteChunksCompact) {
  std::vector<std::uint8_t> stream;
  std::uint32_t xid = 0;
  while (stream.size() < 10000) {
    const auto bytes =
        encode(OfMessage{xid++, EchoRequestMsg{{0xab, 0xcd, 0xef}}});
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  FrameDecoder decoder;
  std::size_t decoded = 0;
  for (const std::uint8_t byte : stream) {
    decoder.feed({byte});
    FrameView view;
    while (decoder.next_frame(view) == FrameStatus::kFrame) {
      ASSERT_TRUE(decode(view).ok());
      ++decoded;
    }
    // A fully consumed frame must be reclaimed: the residue is always
    // smaller than one max frame, never the whole history of the stream.
    ASSERT_LT(decoder.buffered_bytes(), 16u);
  }
  EXPECT_EQ(decoded, xid);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, NextFrameViewsAreZeroCopyAndSequential) {
  const auto first = encode(OfMessage{1, HelloMsg{}});
  const auto second = encode(OfMessage{2, BarrierRequestMsg{}});
  std::vector<std::uint8_t> stream = first;
  stream.insert(stream.end(), second.begin(), second.end());

  FrameDecoder decoder;
  decoder.feed(stream);
  FrameView view;
  ASSERT_EQ(decoder.next_frame(view), FrameStatus::kFrame);
  EXPECT_EQ(std::vector<std::uint8_t>(view.data(), view.data() + view.size()), first);
  EXPECT_EQ(view.type(), OfType::kHello);
  EXPECT_EQ(view.xid(), 1u);
  ASSERT_EQ(decoder.next_frame(view), FrameStatus::kFrame);
  EXPECT_EQ(std::vector<std::uint8_t>(view.data(), view.data() + view.size()), second);
  EXPECT_EQ(decoder.next_frame(view), FrameStatus::kAwait);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderTest, NextFrameCorruptLengthResets) {
  FrameDecoder decoder;
  decoder.feed({0x04, 0x00, 0x00, 0x02, 0, 0, 0, 0});  // length 2 < 8
  FrameView view;
  EXPECT_EQ(decoder.next_frame(view), FrameStatus::kCorrupt);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_EQ(decoder.next_frame(view), FrameStatus::kAwait);
}

// ---------------------------------------------------------------------------
// Scatter input (writable_spans/commit): the readv path used by the socket
// transport. These are regressions for partial reads that split frames
// mid-header and mid-body — the exact shapes short TCP reads produce.

namespace {

// Copy `bytes` into the decoder through the scatter API in chunks of
// `commit_size` (the tail of the stream may be smaller).
void scatter_in(FrameDecoder& decoder, const std::vector<std::uint8_t>& bytes,
                std::size_t commit_size) {
  std::size_t pos = 0;
  while (pos < bytes.size()) {
    const std::size_t n = std::min(commit_size, bytes.size() - pos);
    MutableByteSpan spans[2];
    ASSERT_EQ(decoder.writable_spans(n, spans), 2u);
    ASSERT_GE(spans[0].size, n);
    std::memcpy(spans[0].data, bytes.data() + pos, n);
    decoder.commit(n);
    pos += n;
  }
}

}  // namespace

TEST(FrameDecoderScatterTest, PartialReadSplitMidHeader) {
  const auto frame = encode(OfMessage{7, EchoRequestMsg{{1, 2, 3, 4}}});
  ASSERT_GT(frame.size(), 8u);
  FrameDecoder decoder;
  FrameView view;

  // First read delivers 3 bytes — not even a full header.
  scatter_in(decoder, {frame.begin(), frame.begin() + 3}, 3);
  EXPECT_EQ(decoder.next_frame(view), FrameStatus::kAwait);
  EXPECT_EQ(decoder.buffered_bytes(), 3u);

  // Second read completes the header but not the body.
  scatter_in(decoder, {frame.begin() + 3, frame.begin() + 9}, 6);
  EXPECT_EQ(decoder.next_frame(view), FrameStatus::kAwait);

  // Third read completes the frame; the view is byte-identical.
  scatter_in(decoder, {frame.begin() + 9, frame.end()}, frame.size());
  ASSERT_EQ(decoder.next_frame(view), FrameStatus::kFrame);
  EXPECT_EQ(std::vector<std::uint8_t>(view.data(), view.data() + view.size()),
            frame);
  EXPECT_EQ(decoder.next_frame(view), FrameStatus::kAwait);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderScatterTest, OneByteCommitsAcrossManyFrames) {
  // Drip-feed a multi-frame stream one byte per readv: every frame boundary
  // is split mid-header and mid-body at some point.
  std::vector<std::uint8_t> stream;
  std::vector<std::vector<std::uint8_t>> frames;
  for (std::uint32_t xid = 0; xid < 40; ++xid) {
    frames.push_back(encode(OfMessage{xid, EchoRequestMsg{{0xaa, 0xbb}}}));
    stream.insert(stream.end(), frames.back().begin(), frames.back().end());
  }
  FrameDecoder decoder;
  std::size_t decoded = 0;
  for (const std::uint8_t byte : stream) {
    scatter_in(decoder, {byte}, 1);
    FrameView view;
    while (decoder.next_frame(view) == FrameStatus::kFrame) {
      ASSERT_LT(decoded, frames.size());
      EXPECT_EQ(
          std::vector<std::uint8_t>(view.data(), view.data() + view.size()),
          frames[decoded]);
      ++decoded;
    }
    // Scatter input must compact like feed(): residue stays under one frame.
    ASSERT_LT(decoder.buffered_bytes(), 16u);
  }
  EXPECT_EQ(decoded, frames.size());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderScatterTest, SpillOverrunFoldsIn) {
  // A readv that fills the primary tail span and overruns into the spill
  // block must fold the overflow back in transparently.
  std::vector<std::uint8_t> payload(300, 0x5c);
  const auto frame = encode(OfMessage{9, EchoRequestMsg{payload}});

  FrameDecoder decoder;
  MutableByteSpan spans[2];
  ASSERT_EQ(decoder.writable_spans(16, spans), 2u);
  ASSERT_GE(spans[0].size, 16u);
  ASSERT_GT(spans[1].size, frame.size());  // spill block is 16 KiB

  // Scatter the frame across both spans exactly as readv would.
  const std::size_t into_primary = std::min(spans[0].size, frame.size());
  std::memcpy(spans[0].data, frame.data(), into_primary);
  if (into_primary < frame.size()) {
    std::memcpy(spans[1].data, frame.data() + into_primary,
                frame.size() - into_primary);
  }
  ASSERT_LT(into_primary, frame.size()) << "frame must overrun the tail span";
  decoder.commit(frame.size());

  FrameView view;
  ASSERT_EQ(decoder.next_frame(view), FrameStatus::kFrame);
  EXPECT_EQ(std::vector<std::uint8_t>(view.data(), view.data() + view.size()),
            frame);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(FrameDecoderScatterTest, MixedFeedAndScatterEquivalence) {
  // Interleaving the two input paths (the fuzz harness does this when the
  // socket shim is mid-stream) must decode the same frames as feed() alone.
  Rng rng(0xd00dfeedull);
  std::vector<std::uint8_t> stream;
  std::size_t expect_frames = 0;
  for (int i = 0; i < 60; ++i) {
    std::vector<std::uint8_t> body(
        static_cast<std::size_t>(rng.uniform_int(0, 64)), 0x11);
    const auto frame = encode(
        OfMessage{static_cast<std::uint32_t>(i), EchoReplyMsg{body}});
    stream.insert(stream.end(), frame.begin(), frame.end());
    ++expect_frames;
  }

  FrameDecoder scatter_decoder;
  FrameDecoder feed_decoder;
  std::size_t pos = 0;
  std::size_t scatter_frames = 0;
  std::size_t feed_frames = 0;
  while (pos < stream.size()) {
    const std::size_t n = std::min<std::size_t>(
        static_cast<std::size_t>(rng.uniform_int(1, 23)), stream.size() - pos);
    const std::vector<std::uint8_t> chunk(stream.begin() + static_cast<std::ptrdiff_t>(pos),
                                          stream.begin() + static_cast<std::ptrdiff_t>(pos + n));
    if (rng.chance(0.5)) {
      scatter_in(scatter_decoder, chunk, n);
    } else {
      scatter_decoder.feed(chunk);
    }
    feed_decoder.feed(chunk);
    FrameView view;
    while (scatter_decoder.next_frame(view) == FrameStatus::kFrame) ++scatter_frames;
    while (feed_decoder.next_frame(view) == FrameStatus::kFrame) ++feed_frames;
    ASSERT_EQ(scatter_decoder.buffered_bytes(), feed_decoder.buffered_bytes());
    pos += n;
  }
  EXPECT_EQ(scatter_frames, expect_frames);
  EXPECT_EQ(feed_frames, expect_frames);
}

// Property: random valid messages survive random chunking.
class WireChunkProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireChunkProperty, RandomChunksReassemble) {
  Rng rng(GetParam());
  std::vector<std::uint8_t> stream;
  int message_count = 0;
  for (int i = 0; i < 50; ++i) {
    FlowModMsg mod;
    mod.priority = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    mod.cookie = Cookie{rng.next_u64()};
    if (rng.chance(0.5)) mod.match.tcp_dst = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
    if (rng.chance(0.5)) mod.instructions.goto_table = 1;
    const auto bytes = encode(OfMessage{static_cast<std::uint32_t>(i), mod});
    stream.insert(stream.end(), bytes.begin(), bytes.end());
    ++message_count;
  }
  FrameDecoder decoder;
  std::size_t offset = 0;
  int decoded = 0;
  while (offset < stream.size()) {
    const auto chunk_len = static_cast<std::size_t>(
        rng.uniform_int(1, 40));
    const std::size_t end = std::min(offset + chunk_len, stream.size());
    decoder.feed({stream.begin() + offset, stream.begin() + end});
    offset = end;
    for (auto& result : decoder.drain()) {
      ASSERT_TRUE(result.ok());
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, message_count);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireChunkProperty,
                         ::testing::Values(100ull, 200ull, 300ull));

}  // namespace
}  // namespace dfi
