// Model-based invariant fuzz campaign (DESIGN.md §6).
//
// Replays thousands of seeded fault schedules against the full DFI control
// plane (tests/support/fuzz_harness.h) and asserts the five safety
// invariants I1-I5 after every step. The campaign is split across backend
// variants; each schedule derives its seed deterministically from the
// variant salt and the schedule index, so the whole campaign is one pure
// function of the build.
//
// Reproduction: a failing schedule prints replay instructions. Re-running
// with DFI_FUZZ_SEED=<seed> (or --seed=<seed>) replays exactly that
// schedule in every variant; DFI_FUZZ_SCHEDULES=<n> (or --schedules=<n>)
// bounds the campaign size (CI uses this to keep the sanitizer stages
// inside their budget).
#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "common/logging.h"
#include "support/fuzz_harness.h"

namespace dfi::test {
namespace {

std::optional<std::uint64_t> g_seed_override;
std::size_t g_total_schedules = 2000;

void expect_clean(const FuzzOptions& options, const FuzzResult& result) {
  if (result.violations.empty()) return;
  std::string details;
  for (const std::string& violation : result.violations) {
    details += "  " + violation + "\n";
  }
  ADD_FAILURE() << result.violations.size() << " invariant violation(s):\n"
                << details << replay_instructions(options);
}

// Aggregate coverage over one variant's schedules: the campaign must have
// actually exercised the machinery it claims to test.
struct Coverage {
  std::uint64_t packet_ins = 0;
  std::uint64_t installs = 0;
  std::uint64_t forwards = 0;
  std::uint64_t denies = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t severs = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t resync_clears = 0;
  std::uint64_t stale_redecides = 0;
  std::uint64_t jobs_abandoned = 0;
  std::uint64_t pool_jobs = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
  std::uint64_t severed_drops = 0;
  std::uint64_t frames_fast_path = 0;
  std::uint64_t frames_patched = 0;
  std::uint64_t frames_decoded = 0;
  std::uint64_t batch_bursts = 0;
  std::uint64_t snapshot_probes = 0;
  std::uint64_t socket_reads = 0;
  std::uint64_t socket_writes = 0;
  std::uint64_t socket_would_block = 0;

  void add(const FuzzResult& result) {
    packet_ins += result.packet_ins;
    installs += result.installs_seen;
    forwards += result.forwards_seen;
    denies += result.denies;
    cache_hits += result.decision_cache_hits;
    severs += result.severs;
    reconnects += result.reconnects;
    resync_clears += result.resync_clears;
    stale_redecides += result.stale_redecides;
    jobs_abandoned += result.jobs_abandoned;
    pool_jobs += result.pool_jobs_checked;
    dropped += result.fault_stats.dropped;
    duplicated += result.fault_stats.duplicated;
    delayed += result.fault_stats.delayed;
    reordered += result.fault_stats.reordered_flushes;
    severed_drops += result.fault_stats.severed_drops;
    frames_fast_path += result.frames_fast_path;
    frames_patched += result.frames_patched;
    frames_decoded += result.frames_decoded;
    batch_bursts += result.batch_bursts;
    snapshot_probes += result.snapshot_probes;
    socket_reads += result.socket_reads;
    socket_writes += result.socket_writes;
    socket_would_block += result.socket_would_block;
  }
};

// Runs `share` percent of the campaign with this variant's options. With a
// seed override the campaign collapses to one replayed schedule.
Coverage run_campaign(FuzzOptions base, std::uint64_t salt, int share) {
  std::size_t schedules =
      std::max<std::size_t>(1, g_total_schedules * static_cast<std::size_t>(share) / 100);
  if (g_seed_override.has_value()) schedules = 1;
  Coverage coverage;
  for (std::size_t i = 0; i < schedules; ++i) {
    FuzzOptions options = base;
    options.seed =
        g_seed_override.value_or(salt * 1000003ull + i);
    const FuzzResult result = run_fuzz_schedule(options);
    coverage.add(result);
    expect_clean(options, result);
    if (::testing::Test::HasFailure()) break;  // first failing seed is enough
  }
  return coverage;
}

TEST(FuzzCampaign, SimulatedSingleShard) {
  FuzzOptions base;
  base.backend = PcpBackend::kSimulated;
  base.shards = 1;
  base.steps = 8;
  const Coverage c = run_campaign(base, 11, 22);
  if (g_seed_override.has_value()) return;
  // The paper-shaped single-PCP plane, fully exercised end to end.
  EXPECT_GT(c.packet_ins, 0u);
  EXPECT_GT(c.installs, 0u);
  EXPECT_GT(c.forwards, 0u);
  EXPECT_GT(c.denies, 0u);
  EXPECT_GT(c.cache_hits, 0u);
  EXPECT_GT(c.severs, 0u);
  EXPECT_GT(c.reconnects, 0u);
  EXPECT_GT(c.resync_clears, 0u);
  EXPECT_GT(c.pool_jobs, 0u);
  // Every fault class fired somewhere in the campaign.
  EXPECT_GT(c.dropped, 0u);
  EXPECT_GT(c.duplicated, 0u);
  EXPECT_GT(c.delayed, 0u);
  EXPECT_GT(c.reordered, 0u);
  EXPECT_GT(c.severed_drops, 0u);
  // The proxied streams must actually ride the wire fast path: verbatim
  // pass-throughs, in-place table patches, and decode fallbacks all fire
  // under faults — I1-I5 above hold across all three.
  EXPECT_GT(c.frames_fast_path, 0u);
  EXPECT_GT(c.frames_patched, 0u);
  EXPECT_GT(c.frames_decoded, 0u);
}

TEST(FuzzCampaign, SimulatedFourShards) {
  FuzzOptions base;
  base.backend = PcpBackend::kSimulated;
  base.shards = 4;
  base.steps = 8;
  const Coverage c = run_campaign(base, 23, 13);
  if (g_seed_override.has_value()) return;
  EXPECT_GT(c.packet_ins, 0u);
  EXPECT_GT(c.installs, 0u);
  EXPECT_GT(c.severs, 0u);
}

TEST(FuzzCampaign, WildcardCaching) {
  FuzzOptions base;
  base.backend = PcpBackend::kSimulated;
  base.shards = 2;
  base.steps = 8;
  base.wildcard_caching = true;
  const Coverage c = run_campaign(base, 37, 15);
  if (g_seed_override.has_value()) return;
  EXPECT_GT(c.packet_ins, 0u);
  EXPECT_GT(c.installs, 0u);
}

TEST(FuzzCampaign, ThreadedTwoShards) {
  FuzzOptions base;
  base.backend = PcpBackend::kThreads;
  base.shards = 2;
  base.steps = 6;
  const Coverage c = run_campaign(base, 47, 15);
  if (g_seed_override.has_value()) return;
  EXPECT_GT(c.packet_ins, 0u);
  EXPECT_GT(c.installs, 0u);
  EXPECT_GT(c.severs, 0u);
  // The threaded consistency machinery fired: completions raced policy or
  // binding mutations and were re-decided on fresh snapshots.
  EXPECT_GT(c.stale_redecides, 0u);
}

TEST(FuzzCampaign, ThreadedWorkerFaults) {
  FuzzOptions base;
  base.backend = PcpBackend::kThreads;
  base.shards = 2;
  base.steps = 6;
  base.worker_faults = true;
  const Coverage c = run_campaign(base, 59, 15);
  if (g_seed_override.has_value()) return;
  EXPECT_GT(c.packet_ins, 0u);
  EXPECT_GT(c.installs, 0u);
  // The kill probe actually abandoned jobs somewhere in the campaign, and
  // the pool survived (no wedge, no order violation — I5).
  EXPECT_GT(c.jobs_abandoned, 0u);
}

// Incremental snapshot publication (DESIGN.md §8): binding churn schedules
// interleave snapshot captures with policy revokes; snapshots held across
// steps must keep answering from the world they were published in while
// I3/I4 keep holding for the live plane.
TEST(FuzzCampaign, IncrementalSnapshots) {
  FuzzOptions base;
  base.backend = PcpBackend::kSimulated;
  base.shards = 2;
  base.steps = 8;
  base.incremental_snapshots = true;
  const Coverage c = run_campaign(base, 97, 12);
  if (g_seed_override.has_value()) return;
  EXPECT_GT(c.packet_ins, 0u);
  EXPECT_GT(c.installs, 0u);
  EXPECT_GT(c.severs, 0u);
  EXPECT_GT(c.snapshot_probes, 0u);  // held publications actually verified
}

// Same churn/revoke interleave against the threaded backend: in-flight
// decisions carry yet more snapshot references, so held publications race
// stale-completion re-decides too.
TEST(FuzzCampaign, IncrementalSnapshotsThreaded) {
  FuzzOptions base;
  base.backend = PcpBackend::kThreads;
  base.shards = 2;
  base.steps = 6;
  base.incremental_snapshots = true;
  const Coverage c = run_campaign(base, 103, 10);
  if (g_seed_override.has_value()) return;
  EXPECT_GT(c.packet_ins, 0u);
  EXPECT_GT(c.installs, 0u);
  EXPECT_GT(c.snapshot_probes, 0u);
}

// Batched datapath (DESIGN.md §5): Packet-in batching + coalesced egress
// with a small watermark, so batch decide, watermark flushes, severs and
// policy churn interleave. Same five invariants, plus the pool-quiesce
// check the harness runs at final settle (in_use() == 0: coalesced buffers
// stranded on severed sessions must still return to the pool).
TEST(FuzzCampaign, BatchedDatapath) {
  FuzzOptions base;
  base.backend = PcpBackend::kSimulated;
  base.shards = 2;
  base.steps = 8;
  base.batched_datapath = true;
  const Coverage c = run_campaign(base, 71, 10);
  if (g_seed_override.has_value()) return;
  EXPECT_GT(c.packet_ins, 0u);
  EXPECT_GT(c.installs, 0u);
  EXPECT_GT(c.severs, 0u);
  EXPECT_GT(c.batch_bursts, 0u);  // multi-Packet-in chunks actually formed
}

// Batched datapath on the threaded backend with the full kill probe armed
// (kKill, kStall, and kKillAfterDecide — a worker dying between running a
// batch item's decision and publishing its completion). Severs race the
// window between batch decide and the coalesced egress flush.
TEST(FuzzCampaign, BatchedThreadedWorkerFaults) {
  FuzzOptions base;
  base.backend = PcpBackend::kThreads;
  base.shards = 2;
  base.steps = 6;
  base.worker_faults = true;
  base.batched_datapath = true;
  const Coverage c = run_campaign(base, 83, 10);
  if (g_seed_override.has_value()) return;
  EXPECT_GT(c.packet_ins, 0u);
  EXPECT_GT(c.installs, 0u);
  EXPECT_GT(c.batch_bursts, 0u);
  EXPECT_GT(c.jobs_abandoned, 0u);
}

// Socket transport (DESIGN.md §9): the switch<->proxy streams ride the
// real Connection machinery — scatter readv into the decoder, bounded
// writev egress — over seeded FaultSockets whose lossless fault repertoire
// (short reads/writes, EAGAIN storms, slow drain) reshapes every IO call.
// I1-I5 must hold unchanged, including across severed and reconnected
// peers (each reconnect builds fresh sockets mid-campaign).
TEST(FuzzCampaign, SocketTransport) {
  FuzzOptions base;
  base.backend = PcpBackend::kSimulated;
  base.shards = 2;
  base.steps = 8;
  base.socket_transport = true;
  const Coverage c = run_campaign(base, 109, 15);
  if (g_seed_override.has_value()) return;
  EXPECT_GT(c.packet_ins, 0u);
  EXPECT_GT(c.installs, 0u);
  EXPECT_GT(c.forwards, 0u);
  EXPECT_GT(c.severs, 0u);
  EXPECT_GT(c.reconnects, 0u);
  // The socket layer really carried the streams and really misbehaved.
  EXPECT_GT(c.socket_reads, 0u);
  EXPECT_GT(c.socket_writes, 0u);
  EXPECT_GT(c.socket_would_block, 0u);
}

TEST(FuzzCampaign, SocketTransportBatched) {
  FuzzOptions base;
  base.backend = PcpBackend::kSimulated;
  base.shards = 2;
  base.steps = 8;
  base.socket_transport = true;
  base.batched_datapath = true;
  const Coverage c = run_campaign(base, 127, 10);
  if (g_seed_override.has_value()) return;
  EXPECT_GT(c.packet_ins, 0u);
  EXPECT_GT(c.batch_bursts, 0u);
  EXPECT_GT(c.socket_reads, 0u);
  EXPECT_GT(c.socket_would_block, 0u);
}

// The transport-differential proof: the same schedule with the socket
// layer on and off must emit byte-identical proxy egress (FNV hash over
// both directions in delivery order) and identical observable counters —
// the socket datapath is a transparent carrier, faults and all.
TEST(FuzzDifferential, SocketTransportEgressByteIdentical) {
  for (std::uint64_t seed : {9001ull, 9002ull, 9003ull, 9004ull, 9005ull}) {
    FuzzOptions off;
    off.seed = seed;
    off.backend = PcpBackend::kSimulated;
    off.shards = 2;
    off.steps = 8;
    FuzzOptions on = off;
    on.socket_transport = true;
    const FuzzResult direct = run_fuzz_schedule(off);
    const FuzzResult socketed = run_fuzz_schedule(on);
    expect_clean(off, direct);
    expect_clean(on, socketed);
    EXPECT_EQ(direct.egress_hash, socketed.egress_hash) << "seed " << seed;
    EXPECT_EQ(direct.packet_ins, socketed.packet_ins) << "seed " << seed;
    EXPECT_EQ(direct.installs_seen, socketed.installs_seen) << "seed " << seed;
    EXPECT_EQ(direct.forwards_seen, socketed.forwards_seen) << "seed " << seed;
    EXPECT_EQ(direct.denies, socketed.denies) << "seed " << seed;
    EXPECT_EQ(direct.resync_clears, socketed.resync_clears) << "seed " << seed;
    EXPECT_GT(socketed.socket_reads, 0u) << "seed " << seed;
  }
}

// Same seed + options => byte-identical fault trace and equal observable
// counters. This is the replayability contract every debugging workflow
// rests on.
TEST(FuzzDeterminism, SimulatedScheduleIsByteIdentical) {
  FuzzOptions options;
  options.seed = 424242;
  options.backend = PcpBackend::kSimulated;
  options.shards = 4;
  options.steps = 8;
  const FuzzResult a = run_fuzz_schedule(options);
  const FuzzResult b = run_fuzz_schedule(options);
  expect_clean(options, a);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.packet_ins, b.packet_ins);
  EXPECT_EQ(a.installs_seen, b.installs_seen);
  EXPECT_EQ(a.forwards_seen, b.forwards_seen);
  EXPECT_EQ(a.denies, b.denies);
  EXPECT_EQ(a.decision_cache_hits, b.decision_cache_hits);
  EXPECT_EQ(a.severs, b.severs);
  EXPECT_EQ(a.reconnects, b.reconnects);
  EXPECT_EQ(a.resync_clears, b.resync_clears);
  EXPECT_EQ(a.fault_stats.dropped, b.fault_stats.dropped);
  EXPECT_EQ(a.fault_stats.delayed, b.fault_stats.delayed);
  EXPECT_EQ(a.fault_stats.reordered_flushes, b.fault_stats.reordered_flushes);
}

TEST(FuzzDeterminism, ThreadedScheduleIsByteIdentical) {
  FuzzOptions options;
  options.seed = 777001;
  options.backend = PcpBackend::kThreads;
  options.shards = 2;
  options.steps = 6;
  const FuzzResult a = run_fuzz_schedule(options);
  const FuzzResult b = run_fuzz_schedule(options);
  expect_clean(options, a);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.packet_ins, b.packet_ins);
  EXPECT_EQ(a.installs_seen, b.installs_seen);
  EXPECT_EQ(a.forwards_seen, b.forwards_seen);
  EXPECT_EQ(a.severs, b.severs);
}

TEST(FuzzDeterminism, BatchedScheduleIsByteIdentical) {
  FuzzOptions options;
  options.seed = 515151;
  options.backend = PcpBackend::kSimulated;
  options.shards = 2;
  options.steps = 8;
  options.batched_datapath = true;
  const FuzzResult a = run_fuzz_schedule(options);
  const FuzzResult b = run_fuzz_schedule(options);
  expect_clean(options, a);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.packet_ins, b.packet_ins);
  EXPECT_EQ(a.installs_seen, b.installs_seen);
  EXPECT_EQ(a.forwards_seen, b.forwards_seen);
  EXPECT_EQ(a.batch_bursts, b.batch_bursts);
  EXPECT_GT(a.batch_bursts, 0u);
}

TEST(FuzzDeterminism, SocketScheduleIsByteIdentical) {
  FuzzOptions options;
  options.seed = 606060;
  options.backend = PcpBackend::kSimulated;
  options.shards = 2;
  options.steps = 8;
  options.socket_transport = true;
  const FuzzResult a = run_fuzz_schedule(options);
  const FuzzResult b = run_fuzz_schedule(options);
  expect_clean(options, a);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.egress_hash, b.egress_hash);
  EXPECT_EQ(a.socket_reads, b.socket_reads);
  EXPECT_EQ(a.socket_writes, b.socket_writes);
  EXPECT_EQ(a.socket_would_block, b.socket_would_block);
  EXPECT_GT(a.socket_reads, 0u);
}

TEST(FuzzDeterminism, IncrementalSnapshotScheduleIsByteIdentical) {
  FuzzOptions options;
  options.seed = 626262;
  options.backend = PcpBackend::kSimulated;
  options.shards = 2;
  options.steps = 8;
  options.incremental_snapshots = true;
  const FuzzResult a = run_fuzz_schedule(options);
  const FuzzResult b = run_fuzz_schedule(options);
  expect_clean(options, a);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.packet_ins, b.packet_ins);
  EXPECT_EQ(a.installs_seen, b.installs_seen);
  EXPECT_EQ(a.snapshot_probes, b.snapshot_probes);
  EXPECT_GT(a.snapshot_probes, 0u);
}

TEST(FuzzDeterminism, WorkerFaultScheduleTraceIsStable) {
  // With worker kills armed, *which* jobs a dying shard still accepts races
  // the kill — so install counts may differ run to run. The fault schedule
  // itself (every drop/delay/kill decision) and the submission-side
  // counters stay byte-identical.
  FuzzOptions options;
  options.seed = 909090;
  options.backend = PcpBackend::kThreads;
  options.shards = 2;
  options.steps = 6;
  options.worker_faults = true;
  const FuzzResult a = run_fuzz_schedule(options);
  const FuzzResult b = run_fuzz_schedule(options);
  expect_clean(options, a);
  expect_clean(options, b);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.packet_ins, b.packet_ins);
  EXPECT_EQ(a.severs, b.severs);
  EXPECT_EQ(a.reconnects, b.reconnects);
}

// ------------------------------------------------------- pinned regressions
//
// Each pins a schedule that reproduced a real bug fixed in this tree. The
// seeds are load-bearing: they drive the exact interleaving that failed.

// PcpShardPool::wait_idle() used to wedge forever when the fault probe
// killed a worker whose queue still held jobs: nothing ever completed the
// stranded sequence numbers, so the control thread slept through its own
// recovery path. Fixed by waking on worker death and draining stranded
// queues inline (pcp_shard_pool.cc). Without the fix this test hangs until
// the ctest timeout kills it.
TEST(FuzzRegression, WaitIdleSurvivesWorkerKill) {
  FuzzOptions options;
  options.seed = 6151;  // drives the kill probe into both shards
  options.backend = PcpBackend::kThreads;
  options.shards = 2;
  options.steps = 8;
  options.worker_faults = true;
  const FuzzResult result = run_fuzz_schedule(options);
  expect_clean(options, result);
  EXPECT_GT(result.pool_jobs_checked, 0u);
}

// DfiProxy::Session used to be freed with PCP decision callbacks and
// deferred deliveries still pointing at it: a sever while Packet-ins were
// in flight made the callback write through a dangling `this`
// (use-after-free under ASan). Fixed with the per-session alive token
// (proxy.cc). This schedule severs sessions mid-decision in both backends.
TEST(FuzzRegression, SessionTeardownWithInFlightDecisions) {
  for (const PcpBackend backend :
       {PcpBackend::kSimulated, PcpBackend::kThreads}) {
    FuzzOptions options;
    options.seed = 3301;  // schedules severs while decisions are in flight
    options.backend = backend;
    options.shards = 2;
    options.steps = 10;
    const FuzzResult result = run_fuzz_schedule(options);
    expect_clean(options, result);
    EXPECT_GT(result.severs, 0u);
  }
}

// A revoke racing an in-flight threaded decision used to install the
// pre-revoke allow rule *after* the flush DELETE had already cleaned
// Table 0, leaving a permanent rule citing a revoked policy (I3). Fixed by
// re-deciding stale completions on fresh snapshots (pcp.cc,
// stats_.stale_redecides). This schedule makes midflight policy churn hit
// in-flight submissions.
TEST(FuzzRegression, RevokeRacingInFlightDecision) {
  FuzzOptions options;
  options.seed = 14081;
  options.backend = PcpBackend::kThreads;
  options.shards = 2;
  options.steps = 10;
  const FuzzResult result = run_fuzz_schedule(options);
  expect_clean(options, result);
  EXPECT_GT(result.stale_redecides, 0u);
}

// A revoke issued while a switch's session was severed used to leave the
// revoked rule installed forever: the flush DELETE died with the session
// and nothing re-synced on reconnect. Fixed with the Table-0 resync clear
// on re-registration (pcp.cc, stats_.resync_clears).
TEST(FuzzRegression, RevokeWhileSevered) {
  FuzzOptions options;
  options.seed = 20011;
  options.backend = PcpBackend::kSimulated;
  options.shards = 1;
  options.steps = 12;
  const FuzzResult result = run_fuzz_schedule(options);
  expect_clean(options, result);
  EXPECT_GT(result.severs, 0u);
  EXPECT_GT(result.resync_clears, 0u);
}

}  // namespace
}  // namespace dfi::test

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  // Severed sessions legitimately leave the PCP installing into switches it
  // no longer knows; thousands of schedules of that WARN would bury real
  // failures.
  dfi::Logger::instance().set_level(dfi::LogLevel::kError);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      dfi::test::g_seed_override = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--schedules=", 0) == 0) {
      dfi::test::g_total_schedules =
          std::strtoull(arg.c_str() + 12, nullptr, 10);
    }
  }
  if (const char* seed = std::getenv("DFI_FUZZ_SEED")) {
    dfi::test::g_seed_override = std::strtoull(seed, nullptr, 10);
  }
  if (const char* schedules = std::getenv("DFI_FUZZ_SCHEDULES")) {
    dfi::test::g_total_schedules = std::strtoull(schedules, nullptr, 10);
  }
  return RUN_ALL_TESTS();
}
