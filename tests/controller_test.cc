// Unit tests for the learning controller (ONOS reactive-forwarding surrogate).
#include <gtest/gtest.h>

#include "controller/learning_controller.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest()
      : controller_(sim_, zero_latency_config(), Rng(3)),
        session_(controller_.accept_connection([this](const std::vector<std::uint8_t>& bytes) {
          FrameDecoder decoder;
          decoder.feed(bytes);
          for (auto& result : decoder.drain()) {
            ASSERT_TRUE(result.ok());
            sent_.push_back(std::move(result).value());
          }
        })) {}

  static ControllerConfig zero_latency_config() {
    ControllerConfig config;
    config.zero_latency = true;
    config.exact_match_rules = false;  // classic learning-switch rules
    return config;
  }

  void handshake() {
    session_.receive(encode(OfMessage{1, HelloMsg{}}));
    FeaturesReplyMsg features;
    features.datapath_id = Dpid{5};
    features.n_tables = 3;  // as advertised through the proxy
    session_.receive(encode(OfMessage{2, features}));
    sim_.run();
  }

  PacketInMsg packet_in(MacAddress src, MacAddress dst, PortNo port) {
    PacketInMsg msg;
    msg.in_port = port;
    msg.data = make_tcp_packet(src, dst, Ipv4Address(10, 0, 0, 1),
                               Ipv4Address(10, 0, 0, 2), 1000, 80)
                   .serialize();
    return msg;
  }

  template <typename T>
  std::vector<T> sent_of_type() const {
    std::vector<T> out;
    for (const auto& message : sent_) {
      if (const T* typed = std::get_if<T>(&message.payload)) out.push_back(*typed);
    }
    return out;
  }

  Simulator sim_;
  LearningController controller_;
  LearningController::Session& session_;
  std::vector<OfMessage> sent_;
};

TEST_F(ControllerTest, HandshakeHelloThenFeatures) {
  session_.receive(encode(OfMessage{1, HelloMsg{}}));
  ASSERT_GE(sent_.size(), 2u);
  EXPECT_EQ(sent_[0].type(), OfType::kHello);
  EXPECT_EQ(sent_[1].type(), OfType::kFeaturesRequest);

  FeaturesReplyMsg features;
  features.datapath_id = Dpid{5};
  features.n_tables = 3;
  session_.receive(encode(OfMessage{2, features}));
  EXPECT_EQ(session_.dpid(), Dpid{5});
  EXPECT_EQ(session_.advertised_tables(), 3);
}

TEST_F(ControllerTest, UnknownDestinationFloods) {
  handshake();
  session_.receive(encode(OfMessage{3, packet_in(MacAddress::from_u64(1),
                                                 MacAddress::from_u64(2), PortNo{1})}));
  sim_.run();
  const auto outs = sent_of_type<PacketOutMsg>();
  ASSERT_EQ(outs.size(), 1u);
  ASSERT_EQ(outs[0].actions.size(), 1u);
  EXPECT_EQ(std::get<OutputAction>(outs[0].actions[0]).port, kPortFlood);
  EXPECT_TRUE(sent_of_type<FlowModMsg>().empty());
  EXPECT_EQ(controller_.stats().floods, 1u);
}

TEST_F(ControllerTest, LearnsThenInstallsForwardingRule) {
  handshake();
  // MAC 1 at port 1 (learned from this packet-in).
  session_.receive(encode(OfMessage{3, packet_in(MacAddress::from_u64(1),
                                                 MacAddress::from_u64(2), PortNo{1})}));
  sim_.run();
  // Reply direction: dst MAC 1 is now known.
  session_.receive(encode(OfMessage{4, packet_in(MacAddress::from_u64(2),
                                                 MacAddress::from_u64(1), PortNo{2})}));
  sim_.run();

  const auto mods = sent_of_type<FlowModMsg>();
  ASSERT_EQ(mods.size(), 1u);
  EXPECT_EQ(mods[0].table_id, 0);  // controller-view table 0
  EXPECT_EQ(mods[0].match.eth_dst, MacAddress::from_u64(1));
  ASSERT_EQ(mods[0].instructions.apply_actions.size(), 1u);
  EXPECT_EQ(std::get<OutputAction>(mods[0].instructions.apply_actions[0]).port, PortNo{1});

  const auto outs = sent_of_type<PacketOutMsg>();
  ASSERT_EQ(outs.size(), 2u);  // flood + direct
  EXPECT_EQ(std::get<OutputAction>(outs[1].actions[0]).port, PortNo{1});
}

TEST_F(ControllerTest, ExactMatchModeInstallsPerFlowRules) {
  ControllerConfig config;
  config.zero_latency = true;
  config.exact_match_rules = true;  // ONOS-reactive-forwarding style
  LearningController controller(sim_, config, Rng(9));
  std::vector<OfMessage> sent;
  auto& session = controller.accept_connection([&](const std::vector<std::uint8_t>& bytes) {
    FrameDecoder decoder;
    decoder.feed(bytes);
    for (auto& result : decoder.drain()) sent.push_back(std::move(result).value());
  });
  session.receive(encode(OfMessage{1, HelloMsg{}}));
  FeaturesReplyMsg features;
  features.datapath_id = Dpid{5};
  session.receive(encode(OfMessage{2, features}));

  session.receive(encode(OfMessage{3, packet_in(MacAddress::from_u64(1),
                                                MacAddress::from_u64(2), PortNo{1})}));
  session.receive(encode(OfMessage{4, packet_in(MacAddress::from_u64(2),
                                                MacAddress::from_u64(1), PortNo{2})}));
  sim_.run();
  for (const auto& message : sent) {
    if (const auto* mod = std::get_if<FlowModMsg>(&message.payload)) {
      // Per-flow selector: all identifiers of the triggering packet.
      EXPECT_GE(mod->match.specified_fields(), 9);
    }
  }
}

TEST_F(ControllerTest, BroadcastAlwaysFloods) {
  handshake();
  session_.receive(encode(OfMessage{3, packet_in(MacAddress::from_u64(1),
                                                 MacAddress::broadcast(), PortNo{1})}));
  sim_.run();
  EXPECT_EQ(controller_.stats().floods, 1u);
  EXPECT_TRUE(sent_of_type<FlowModMsg>().empty());
}

TEST_F(ControllerTest, EchoAnswered) {
  handshake();
  session_.receive(encode(OfMessage{9, EchoRequestMsg{{7}}}));
  const auto replies = sent_of_type<EchoReplyMsg>();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(replies[0].data, (std::vector<std::uint8_t>{7}));
}

TEST_F(ControllerTest, ProcessingLatencyModeled) {
  // With latency enabled the reaction is scheduled, not immediate.
  ControllerConfig config;  // default ~2 ms processing
  LearningController controller(sim_, config, Rng(4));
  std::vector<OfMessage> sent;
  auto& session = controller.accept_connection([&](const std::vector<std::uint8_t>& bytes) {
    FrameDecoder decoder;
    decoder.feed(bytes);
    for (auto& result : decoder.drain()) sent.push_back(std::move(result).value());
  });
  session.receive(encode(OfMessage{1, HelloMsg{}}));
  const std::size_t after_handshake = sent.size();

  PacketInMsg msg;
  msg.in_port = PortNo{1};
  msg.data = make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                             Ipv4Address(1, 1, 1, 1), Ipv4Address(2, 2, 2, 2), 1, 2)
                 .serialize();
  session.receive(encode(OfMessage{2, msg}));
  EXPECT_EQ(sent.size(), after_handshake);  // nothing yet
  sim_.run();
  EXPECT_GT(sent.size(), after_handshake);
  EXPECT_GT(sim_.now().us, 500);  // at least some simulated processing time
}

TEST_F(ControllerTest, CountsErrorsAndFlowRemoved) {
  handshake();
  session_.receive(encode(OfMessage{5, ErrorMsg{5, 1, {}}}));
  FlowRemovedMsg removed;
  removed.table_id = 0;
  session_.receive(encode(OfMessage{6, removed}));
  EXPECT_EQ(controller_.stats().errors_received, 1u);
  EXPECT_EQ(controller_.stats().flow_removed_received, 1u);
}

}  // namespace
}  // namespace dfi
