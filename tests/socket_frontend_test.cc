// SocketFrontend end-to-end tests (DESIGN.md §9): a real DfiSystem served
// over loopback TCP, with raw-socket switch/controller stubs on the test
// thread. Covers session establishment through the OpenFlow handshake, the
// differential proof that the socket path emits byte-identical streams to
// the in-process Session path, reconnect-with-Table-0-resync through the
// supervised backoff, and fail-secure teardown with frames in flight.
//
// Single-threaded: the event loop is pumped from the test thread.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "core/dfi_system.h"
#include "net/asyncio/event_loop.h"
#include "net/asyncio/frontend.h"
#include "openflow/messages.h"
#include "openflow/wire.h"
#include "sim/simulator.h"

namespace dfi::net {
namespace {

// --------------------------------------------------------------- raw stubs

int nonblocking(int fd) {
  make_nonblocking(fd);
  return fd;
}

// One raw byte-stream endpoint driven from the test thread.
struct RawPeer {
  int fd = -1;
  std::vector<std::uint8_t> received;
  bool eof = false;

  RawPeer() = default;
  RawPeer(RawPeer&& other) noexcept
      : fd(other.fd), received(std::move(other.received)), eof(other.eof) {
    other.fd = -1;
  }
  RawPeer& operator=(RawPeer&&) = delete;
  RawPeer(const RawPeer&) = delete;
  RawPeer& operator=(const RawPeer&) = delete;
  ~RawPeer() { close(); }
  void close() {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
  void send_frame(const std::vector<std::uint8_t>& frame) {
    ASSERT_GE(fd, 0);
    std::size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n = ::send(fd, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }
  void drain() {
    if (fd < 0) return;
    std::uint8_t buf[4096];
    ssize_t n;
    while ((n = ::recv(fd, buf, sizeof buf, MSG_DONTWAIT)) > 0) {
      received.insert(received.end(), buf, buf + n);
    }
    if (n == 0) eof = true;
  }
};

// The "real controller": a loopback listener the frontend dials.
struct ControllerStub {
  int listen_fd = -1;
  std::uint16_t port = 0;
  std::vector<std::unique_ptr<RawPeer>> links;  // one per frontend dial

  bool start() {
    listen_fd = nonblocking(::socket(AF_INET, SOCK_STREAM, 0));
    if (listen_fd < 0) return false;
    const int on = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &on, sizeof on);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      return false;
    }
    if (::listen(listen_fd, 8) != 0) return false;
    socklen_t len = sizeof addr;
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
      return false;
    }
    port = ntohs(addr.sin_port);
    return true;
  }
  ~ControllerStub() {
    if (listen_fd >= 0) ::close(listen_fd);
  }
  void pump() {
    if (listen_fd >= 0) {
      int fd;
      while ((fd = ::accept(listen_fd, nullptr, nullptr)) >= 0) {
        auto link = std::make_unique<RawPeer>();
        link->fd = nonblocking(fd);
        links.push_back(std::move(link));
      }
    }
    for (auto& link : links) link->drain();
  }
  RawPeer* link() { return links.empty() ? nullptr : links.back().get(); }
};

RawPeer connect_switch(std::uint16_t port) {
  RawPeer peer;
  peer.fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(peer.fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(peer.fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return peer;
}

// ------------------------------------------------------------- the fixture

struct FrontendWorld {
  Simulator sim;
  MessageBus bus;
  DfiSystem system;
  EventLoop loop;
  ControllerStub controller;
  std::unique_ptr<SocketFrontend> frontend;
  std::uint16_t port = 0;

  explicit FrontendWorld(DfiConfig config = DfiConfig::functional())
      : system(sim, bus, config) {}

  bool start(FrontendConfig config = {}) {
    if (!controller.start()) return false;
    config.controller_port = controller.port;
    frontend = std::make_unique<SocketFrontend>(loop, system, config);
    auto bound = frontend->start();
    if (!bound.ok()) return false;
    port = bound.value();
    return true;
  }

  template <typename Cond>
  bool pump_until(Cond cond, int timeout_ms = 3000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      controller.pump();
      if (cond()) return true;
      if (std::chrono::steady_clock::now() > deadline) return false;
      loop.run_once(2);
    }
  }
};

// --------------------------------------------------------------- the script
//
// A deterministic handshake-plus-traffic exchange, replayable against
// either transport. Each step is one frame from one side; quiescing
// between steps keeps the cross-direction interleaving identical.

struct Step {
  bool from_switch;
  std::vector<std::uint8_t> frame;
};

std::vector<Step> handshake_script(std::uint64_t dpid) {
  std::vector<Step> script;
  script.push_back({true, encode(OfMessage{1, HelloMsg{}})});
  script.push_back({false, encode(OfMessage{100, FeaturesRequestMsg{}})});
  FeaturesReplyMsg features;
  features.datapath_id = Dpid{dpid};
  features.n_buffers = 256;
  features.n_tables = 4;
  script.push_back({true, encode(OfMessage{100, features})});
  return script;
}

std::vector<Step> traffic_script(std::uint64_t dpid) {
  auto script = handshake_script(dpid);
  // Passthrough Packet-in from a non-DFI table (arrives table-shifted).
  PacketInMsg pin;
  pin.reason = PacketInReason::kAction;
  pin.table_id = 2;
  pin.in_port = PortNo{7};
  pin.data = {0x01, 0x02, 0x03, 0x04};
  script.push_back({true, encode(OfMessage{2, pin})});
  // Controller-side echo passthrough.
  script.push_back({false, encode(OfMessage{101, EchoRequestMsg{{0x42}}})});
  // Controller Flow-mod: table references must be shifted toward the switch.
  FlowModMsg mod;
  mod.table_id = 0;
  mod.priority = 10;
  mod.match.eth_type = 0x0800;
  mod.instructions.goto_table = 1;
  script.push_back({false, encode(OfMessage{102, mod})});
  // Table-0 miss: routed to the PCP, never forwarded undecided.
  PacketInMsg miss;
  miss.reason = PacketInReason::kNoMatch;
  miss.table_id = 0;
  miss.in_port = PortNo{3};
  miss.data = {0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff};
  script.push_back({true, encode(OfMessage{3, miss})});
  return script;
}

// Replay the script against a plain in-process Session: the reference
// streams the socket transport must reproduce byte for byte. Returns the
// cumulative (to_switch, to_controller) byte counts after each step.
struct ReferenceRun {
  std::vector<std::uint8_t> to_switch;
  std::vector<std::uint8_t> to_controller;
  std::vector<std::pair<std::size_t, std::size_t>> checkpoints;
};

ReferenceRun run_reference(const std::vector<Step>& script, DfiConfig config) {
  Simulator sim;
  MessageBus bus;
  DfiSystem system(sim, bus, config);
  ReferenceRun run;
  auto& session = system.proxy().create_session(
      [&](const std::vector<std::uint8_t>& bytes) {
        run.to_switch.insert(run.to_switch.end(), bytes.begin(), bytes.end());
      },
      [&](const std::vector<std::uint8_t>& bytes) {
        run.to_controller.insert(run.to_controller.end(), bytes.begin(),
                                 bytes.end());
      });
  for (const auto& step : script) {
    if (step.from_switch) {
      session.from_switch(step.frame);
    } else {
      session.from_controller(step.frame);
    }
    system.pump();
    run.checkpoints.emplace_back(run.to_switch.size(), run.to_controller.size());
  }
  system.proxy().destroy_session(session);
  return run;
}

// ----------------------------------------------------------------- tests

TEST(SocketFrontendTest, HandshakeEstablishesSessionAndPatchesFeatures) {
  FrontendWorld world;
  ASSERT_TRUE(world.start());

  RawPeer sw = connect_switch(world.port);
  ASSERT_TRUE(world.pump_until(
      [&] { return world.frontend->stats().sessions_opened == 1; }));
  ASSERT_NE(world.controller.link(), nullptr);

  for (const auto& step : handshake_script(0x51)) {
    if (step.from_switch) {
      sw.send_frame(step.frame);
    } else {
      world.controller.link()->send_frame(step.frame);
    }
  }
  // The controller must see HELLO + FEATURES_REPLY; the reply advertises
  // one table fewer (Table 0 is DFI's, invisible).
  ASSERT_TRUE(world.pump_until([&] {
    world.controller.link()->drain();
    return world.controller.link()->received.size() >= 16;
  }));
  FrameDecoder decoder;
  decoder.feed(world.controller.link()->received);
  auto frames = decoder.drain();
  ASSERT_GE(frames.size(), 2u);
  ASSERT_TRUE(frames[0].ok());
  EXPECT_EQ(frames[0].value().type(), OfType::kHello);
  ASSERT_TRUE(frames[1].ok());
  ASSERT_EQ(frames[1].value().type(), OfType::kFeaturesReply);
  const auto& reply = std::get<FeaturesReplyMsg>(frames[1].value().payload);
  EXPECT_EQ(reply.datapath_id.value, 0x51u);
  EXPECT_EQ(reply.n_tables, 3);  // 4 physical tables, one hidden

  // First registration of a dpid does not resync (nothing stale to clear);
  // the reconnect test covers the resync path.
  EXPECT_EQ(world.system.pcp().stats().resync_clears, 0u);
  EXPECT_EQ(world.system.proxy().session_count(), 1u);
}

// The tentpole differential proof: the same script, played over real
// sockets, must produce byte-identical streams to the in-process Session.
TEST(SocketFrontendTest, SocketPathByteIdenticalToInProcessPath) {
  const auto script = traffic_script(0x7a);
  const ReferenceRun reference = run_reference(script, DfiConfig::functional());

  FrontendWorld world;
  ASSERT_TRUE(world.start());
  RawPeer sw = connect_switch(world.port);
  ASSERT_TRUE(world.pump_until(
      [&] { return world.frontend->stats().sessions_opened == 1; }));

  std::size_t step_index = 0;
  for (const auto& step : script) {
    if (step.from_switch) {
      sw.send_frame(step.frame);
    } else {
      world.controller.link()->send_frame(step.frame);
    }
    // Quiesce: both output streams must reach the reference checkpoint.
    const auto [switch_bytes, controller_bytes] = reference.checkpoints[step_index];
    ASSERT_TRUE(world.pump_until([&] {
      sw.drain();
      return sw.received.size() >= switch_bytes &&
             world.controller.link()->received.size() >= controller_bytes;
    })) << "step " << step_index << ": socket path produced "
        << sw.received.size() << "/" << switch_bytes << " switch bytes, "
        << world.controller.link()->received.size() << "/" << controller_bytes
        << " controller bytes";
    ++step_index;
  }

  sw.drain();
  world.controller.pump();
  EXPECT_EQ(sw.received, reference.to_switch);
  EXPECT_EQ(world.controller.link()->received, reference.to_controller);
  // Pooled socket egress buffers all returned after their writes.
  EXPECT_TRUE(world.pump_until(
      [&] { return world.system.proxy().buffer_pool().in_use() == 0; }));
}

TEST(SocketFrontendTest, SwitchReconnectReplaysHandshakeAndResyncsTable0) {
  FrontendWorld world;
  ASSERT_TRUE(world.start());

  auto handshake = [&](RawPeer& sw, std::uint64_t expect_sessions) {
    ASSERT_TRUE(world.pump_until([&] {
      return world.frontend->stats().sessions_opened == expect_sessions;
    }));
    for (const auto& step : handshake_script(0x9)) {
      if (step.from_switch) {
        sw.send_frame(step.frame);
      } else {
        world.controller.link()->send_frame(step.frame);
      }
    }
    ASSERT_TRUE(world.pump_until([&] {
      world.controller.link()->drain();
      return world.controller.link()->received.size() >= 16;
    }));
  };

  RawPeer sw = connect_switch(world.port);
  handshake(sw, 1);
  const std::uint64_t resyncs_after_first = world.system.pcp().stats().resync_clears;
  EXPECT_EQ(resyncs_after_first, 0u);  // first registration: nothing to clear

  // The switch dies abruptly. The frontend severs the whole peer: session
  // destroyed, controller link closed (the stub sees EOF).
  sw.close();
  ASSERT_TRUE(world.pump_until(
      [&] { return world.frontend->stats().sessions_closed == 1; }));
  EXPECT_EQ(world.system.proxy().session_count(), 0u);
  ASSERT_TRUE(world.pump_until([&] {
    world.controller.link()->drain();
    return world.controller.link()->eof;
  }));
  ASSERT_TRUE(world.pump_until([&] { return world.frontend->peer_count() == 0; }));

  // Reconnect: a fresh dial reaches the controller stub (a second link),
  // the handshake replays, and registration resyncs Table 0 again.
  RawPeer sw2 = connect_switch(world.port);
  handshake(sw2, 2);
  EXPECT_GT(world.system.pcp().stats().resync_clears, resyncs_after_first);
  EXPECT_EQ(world.system.proxy().session_count(), 1u);
  EXPECT_EQ(world.frontend->stats().sessions_opened, 2u);
  EXPECT_EQ(world.controller.links.size(), 2u);
}

TEST(SocketFrontendTest, ControllerUnreachableSeversSwitchAfterCappedBackoff) {
  DfiConfig config = DfiConfig::functional();
  config.health.enabled = true;
  config.health.backoff_base = milliseconds(1.0);
  config.health.backoff_cap = milliseconds(4.0);
  config.health.max_reconnect_attempts = 2;
  FrontendWorld world(config);
  ASSERT_TRUE(world.start());
  // Kill the controller endpoint before any switch arrives.
  ::close(world.controller.listen_fd);
  world.controller.listen_fd = -1;

  RawPeer sw = connect_switch(world.port);
  ASSERT_TRUE(world.pump_until(
      [&] { return world.frontend->stats().controller_dials_failed == 1; }));
  // Fail-secure: the switch is severed, no session ever existed.
  ASSERT_TRUE(world.pump_until([&] {
    sw.drain();
    return sw.eof;
  }));
  EXPECT_EQ(world.frontend->stats().sessions_opened, 0u);
  EXPECT_EQ(world.system.proxy().session_count(), 0u);
  // The degraded window opened while the link was down and closed on
  // abandonment; the attempt ledger is in HealthStats.
  EXPECT_EQ(world.system.health().stats().reconnects_abandoned, 1u);
  EXPECT_GE(world.system.health().stats().backoff_retries, 1u);
  EXPECT_EQ(world.system.health().degraded_refs(), 0u);
}

// Regression: an egress-overflow sever is requested from inside the
// session's own SendFn. Destroying the session there would free the
// std::function currently executing (and the deferred-delivery closure
// behind it) — the teardown must be deferred off the SendFn stack.
TEST(SocketFrontendTest, EgressOverflowSeversOffTheSendFnStack) {
  FrontendWorld world;
  FrontendConfig config;
  // A zero-capacity egress queue makes the very first delivery overflow.
  config.conman.connection.max_egress_frames = 0;
  ASSERT_TRUE(world.start(config));

  RawPeer sw = connect_switch(world.port);
  ASSERT_TRUE(world.pump_until(
      [&] { return world.frontend->stats().sessions_opened == 1; }));
  sw.send_frame(encode(OfMessage{1, HelloMsg{}}));

  // The Hello's passthrough delivery toward the controller is rejected,
  // severing the peer: session destroyed on a later loop turn, both
  // sockets closed, and every pooled buffer home again.
  ASSERT_TRUE(world.pump_until(
      [&] { return world.frontend->stats().sessions_closed == 1; }));
  ASSERT_TRUE(world.pump_until([&] { return world.frontend->peer_count() == 0; }));
  EXPECT_EQ(world.system.proxy().session_count(), 0u);
  ASSERT_TRUE(world.pump_until([&] {
    sw.drain();
    return sw.eof;
  }));
  ASSERT_TRUE(world.pump_until([&] {
    world.system.pump();
    return world.system.proxy().buffer_pool().in_use() == 0;
  }));
}

TEST(SocketFrontendTest, TeardownWithFramesInFlightHoldsLivenessToken) {
  FrontendWorld world;
  ASSERT_TRUE(world.start());
  RawPeer sw = connect_switch(world.port);
  ASSERT_TRUE(world.pump_until(
      [&] { return world.frontend->stats().sessions_opened == 1; }));
  for (const auto& step : handshake_script(0x33)) {
    if (step.from_switch) {
      sw.send_frame(step.frame);
    } else {
      world.controller.link()->send_frame(step.frame);
    }
  }
  ASSERT_TRUE(world.pump_until([&] {
    world.controller.link()->drain();
    return world.controller.link()->received.size() >= 16;
  }));

  // Blast table-0 misses (each one turns into an in-flight PCP decision
  // and deferred deliveries holding pooled buffers), then kill the switch
  // mid-flood without reading a single response.
  PacketInMsg miss;
  miss.reason = PacketInReason::kNoMatch;
  miss.table_id = 0;
  miss.in_port = PortNo{1};
  miss.data = std::vector<std::uint8_t>(64, 0x5a);
  for (std::uint32_t i = 0; i < 200; ++i) {
    sw.send_frame(encode(OfMessage{1000 + i, miss}));
  }
  sw.close();

  // The sever must not crash into freed session state (the liveness token
  // no-ops outstanding deliveries) and every pooled buffer must come home.
  ASSERT_TRUE(world.pump_until(
      [&] { return world.frontend->stats().sessions_closed == 1; }));
  ASSERT_TRUE(world.pump_until([&] { return world.frontend->peer_count() == 0; }));
  ASSERT_TRUE(world.pump_until([&] {
    world.system.pump();
    return world.system.proxy().buffer_pool().in_use() == 0;
  }));
  EXPECT_EQ(world.system.proxy().session_count(), 0u);

  // The frontend stays serviceable: a fresh switch can connect and bind.
  RawPeer sw2 = connect_switch(world.port);
  ASSERT_TRUE(world.pump_until(
      [&] { return world.frontend->stats().sessions_opened == 2; }));
}

}  // namespace
}  // namespace dfi::net
