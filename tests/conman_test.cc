// ConnectionManager + Connection tests over real loopback sockets
// (DESIGN.md §9): accept/connect lifecycle, per-IP and capacity limits,
// egress-watermark backpressure with read pause/resume, and supervised
// reconnect backoff ledgered through the HealthMonitor.
//
// Every test is single-threaded: the event loop is pumped from the test
// thread via run_once(), so sanitizers see one deterministic interleaving.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bus/message_bus.h"
#include "fault/fault_plan.h"
#include "common/rng.h"
#include "core/health_monitor.h"
#include "net/asyncio/conman.h"
#include "net/asyncio/connection.h"
#include "net/asyncio/event_loop.h"
#include "openflow/messages.h"
#include "openflow/wire.h"
#include "sim/simulator.h"

namespace dfi::net {
namespace {

template <typename Cond>
bool pump_until(EventLoop& loop, Cond cond, int timeout_ms = 2000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!cond()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    loop.run_once(5);
  }
  return true;
}

std::vector<std::uint8_t> echo_frame(std::uint32_t xid) {
  return encode(OfMessage{xid, EchoRequestMsg{{0xde, 0xad}}});
}

// Raw blocking client socket connected to 127.0.0.1:port.
int connect_client(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

// A bound-then-closed socket yields a port that is (almost certainly) free.
std::uint16_t grab_free_port() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(ConmanTest, AcceptAndDialExchangeFrames) {
  EventLoop loop;
  ConnectionManager conman(loop, {});

  std::unique_ptr<Connection> server;
  std::string server_peer_ip;
  auto port = conman.listen("127.0.0.1", 0,
                            [&](std::unique_ptr<Connection> conn,
                                const std::string& peer_ip) {
                              server = std::move(conn);
                              server_peer_ip = peer_ip;
                            });
  ASSERT_TRUE(port.ok()) << port.error().message;
  ASSERT_NE(port.value(), 0);

  std::unique_ptr<Connection> client;
  conman.dial("127.0.0.1", port.value(),
              [&](std::unique_ptr<Connection> conn) { client = std::move(conn); });
  ASSERT_TRUE(pump_until(loop, [&] { return server && client; }));
  EXPECT_EQ(server_peer_ip, "127.0.0.1");
  EXPECT_EQ(conman.connection_count(), 2u);
  EXPECT_EQ(conman.stats().accepted, 1u);
  EXPECT_EQ(conman.stats().dialed, 1u);

  // Frames flow both directions through the real readv/writev machinery.
  std::vector<std::vector<std::uint8_t>> at_server;
  std::vector<std::vector<std::uint8_t>> at_client;
  server->on_frame([&](const FrameView& view) {
    at_server.emplace_back(view.data(), view.data() + view.size());
  });
  client->on_frame([&](const FrameView& view) {
    at_client.emplace_back(view.data(), view.data() + view.size());
  });

  const auto ping = echo_frame(1);
  const auto pong = echo_frame(2);
  ASSERT_TRUE(client->send(ping));
  client->flush();
  ASSERT_TRUE(server->send(pong));
  server->flush();
  ASSERT_TRUE(pump_until(
      loop, [&] { return at_server.size() == 1 && at_client.size() == 1; }));
  EXPECT_EQ(at_server[0], ping);
  EXPECT_EQ(at_client[0], pong);
  EXPECT_EQ(server->stats().frames_in, 1u);
  EXPECT_EQ(client->stats().frames_out, 1u);

  // Close one side: the peer observes EOF and closes too, and conman's
  // accounting drains to zero live connections.
  client->close("test done");
  ASSERT_TRUE(pump_until(loop, [&] { return !server->open(); }));
  EXPECT_TRUE(pump_until(loop, [&] { return conman.connection_count() == 0; }));
  EXPECT_EQ(conman.per_ip_count("127.0.0.1"), 0u);
  EXPECT_EQ(conman.stats().closed, 2u);
}

TEST(ConmanTest, PerIpLimitRejectsExcessPeers) {
  EventLoop loop;
  ConmanConfig config;
  config.per_ip_limit = 2;
  ConnectionManager conman(loop, config);

  std::vector<std::unique_ptr<Connection>> accepted;
  auto port = conman.listen("127.0.0.1", 0,
                            [&](std::unique_ptr<Connection> conn,
                                const std::string&) {
                              accepted.push_back(std::move(conn));
                            });
  ASSERT_TRUE(port.ok());

  const int c1 = connect_client(port.value());
  const int c2 = connect_client(port.value());
  ASSERT_TRUE(pump_until(loop, [&] { return accepted.size() == 2; }));
  EXPECT_EQ(conman.per_ip_count("127.0.0.1"), 2u);

  // The third peer from the same IP is closed on the spot.
  const int c3 = connect_client(port.value());
  ASSERT_TRUE(
      pump_until(loop, [&] { return conman.stats().rejected_per_ip == 1; }));
  EXPECT_EQ(accepted.size(), 2u);
  char buf[8];
  // Blocking read on the rejected client returns 0: the server closed it.
  EXPECT_EQ(::read(c3, buf, sizeof buf), 0);

  // Dropping an accepted peer frees its per-IP slot for a new one.
  accepted.front()->close("make room");
  EXPECT_TRUE(pump_until(loop, [&] { return conman.per_ip_count("127.0.0.1") == 1; }));
  const int c4 = connect_client(port.value());
  ASSERT_TRUE(pump_until(loop, [&] { return accepted.size() == 3; }));
  EXPECT_EQ(conman.stats().rejected_per_ip, 1u);

  ::close(c1);
  ::close(c2);
  ::close(c3);
  ::close(c4);
}

TEST(ConmanTest, CapacityLimitRejects) {
  EventLoop loop;
  ConmanConfig config;
  config.max_connections = 1;
  ConnectionManager conman(loop, config);

  std::vector<std::unique_ptr<Connection>> accepted;
  auto port = conman.listen("127.0.0.1", 0,
                            [&](std::unique_ptr<Connection> conn,
                                const std::string&) {
                              accepted.push_back(std::move(conn));
                            });
  ASSERT_TRUE(port.ok());
  const int c1 = connect_client(port.value());
  ASSERT_TRUE(pump_until(loop, [&] { return accepted.size() == 1; }));
  const int c2 = connect_client(port.value());
  ASSERT_TRUE(
      pump_until(loop, [&] { return conman.stats().rejected_capacity == 1; }));
  EXPECT_EQ(accepted.size(), 1u);
  ::close(c1);
  ::close(c2);
}

TEST(ConmanTest, DialToClosedPortFails) {
  EventLoop loop;
  ConnectionManager conman(loop, {});
  bool called = false;
  std::unique_ptr<Connection> result;
  conman.dial("127.0.0.1", grab_free_port(),
              [&](std::unique_ptr<Connection> conn) {
                called = true;
                result = std::move(conn);
              });
  ASSERT_TRUE(pump_until(loop, [&] { return called; }));
  EXPECT_EQ(result, nullptr);
  EXPECT_EQ(conman.stats().dial_failures, 1u);
  EXPECT_EQ(conman.connection_count(), 0u);
}

// Supervised reconnect: a HealthMonitor whose config makes the protocol
// fast — 1ms base backoff, two attempts — so the whole supervised window
// runs inside the test. The conman must mirror supervise_reconnect: enter a
// degraded window on the first failure, ledger each retry, abandon after
// max_reconnect_attempts, and close the window either way.
TEST(ConmanTest, SupervisedDialAbandonsAfterCappedBackoff) {
  Simulator sim;
  MessageBus bus;
  HealthConfig hconfig;
  hconfig.enabled = true;
  hconfig.backoff_base = milliseconds(1.0);
  hconfig.backoff_cap = milliseconds(4.0);
  hconfig.max_reconnect_attempts = 2;
  HealthMonitor health(sim, bus, hconfig, Rng(1));

  EventLoop loop;
  ConnectionManager conman(loop, {}, &health);
  bool called = false;
  std::unique_ptr<Connection> result;
  conman.dial_supervised("controller-link:test", "127.0.0.1", grab_free_port(),
                         [&](std::unique_ptr<Connection> conn) {
                           called = true;
                           result = std::move(conn);
                         });
  ASSERT_TRUE(pump_until(loop, [&] { return called; }));
  EXPECT_EQ(result, nullptr);
  EXPECT_EQ(conman.stats().reconnects_abandoned, 1u);
  EXPECT_GE(conman.stats().reconnect_attempts, 1u);
  // The ledger lands in HealthStats exactly as supervise_reconnect's would.
  EXPECT_EQ(health.stats().reconnects_abandoned, 1u);
  EXPECT_GE(health.stats().backoff_retries, 1u);
  EXPECT_EQ(health.stats().degraded_entries, 1u);
  // The window is released on abandonment (the monitor then sits in
  // kRecovering until its holdoff elapses; refs are what must balance).
  EXPECT_EQ(health.degraded_refs(), 0u);
}

TEST(ConmanTest, SupervisedDialRecoversWhenListenerAppears) {
  Simulator sim;
  MessageBus bus;
  HealthConfig hconfig;
  hconfig.enabled = true;
  hconfig.backoff_base = milliseconds(1.0);
  hconfig.backoff_cap = milliseconds(4.0);
  hconfig.max_reconnect_attempts = 0;  // unlimited: the listener will appear
  HealthMonitor health(sim, bus, hconfig, Rng(2));

  EventLoop loop;
  ConnectionManager conman(loop, {}, &health);
  const std::uint16_t port = grab_free_port();

  bool called = false;
  std::unique_ptr<Connection> result;
  conman.dial_supervised("controller-link:test", "127.0.0.1", port,
                         [&](std::unique_ptr<Connection> conn) {
                           called = true;
                           result = std::move(conn);
                         });
  // Let at least one attempt fail, then bring the listener up.
  ASSERT_TRUE(
      pump_until(loop, [&] { return conman.stats().reconnect_attempts >= 1; }));
  std::vector<std::unique_ptr<Connection>> accepted;
  auto listen_port = conman.listen("127.0.0.1", port,
                                   [&](std::unique_ptr<Connection> conn,
                                       const std::string&) {
                                     accepted.push_back(std::move(conn));
                                   });
  ASSERT_TRUE(listen_port.ok()) << listen_port.error().message;
  ASSERT_TRUE(pump_until(loop, [&] { return called; }));
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->open());
  // Recovery closes the degraded window; nothing is abandoned.
  EXPECT_EQ(health.stats().reconnects_abandoned, 0u);
  EXPECT_EQ(health.degraded_refs(), 0u);
  EXPECT_EQ(health.stats().degraded_entries, 1u);
}

TEST(ConmanTest, ReconnectBackoffIsReplayableBoundedAndResets) {
  // The supervised-dial schedule is drawn from the HealthMonitor's seeded
  // Rng through backoff_delay(attempt). Seed two monitors from the same
  // FaultPlan seed and the delay schedule must replay byte-identically;
  // every delay must respect base*2^attempt scaling within the jitter
  // band, capped; and passing attempt=0 again (a fresh supervision after a
  // healthy interval) must restart at base scale.
  HealthConfig hconfig;
  hconfig.enabled = true;
  hconfig.backoff_base = milliseconds(100);
  hconfig.backoff_cap = seconds(30.0);
  hconfig.backoff_jitter = 0.5;

  const auto schedule_for = [&](std::uint64_t seed) {
    FaultPlan plan(seed);
    Simulator sim;
    MessageBus bus;
    HealthMonitor health(sim, bus, hconfig, Rng(plan.rng().next_u64()));
    std::vector<std::int64_t> delays;
    for (int attempt = 0; attempt < 12; ++attempt) {
      const SimDuration delay = health.backoff_delay(attempt);
      plan.note("backoff: attempt=" + std::to_string(attempt) +
                " us=" + std::to_string(delay.us));
      delays.push_back(delay.us);
    }
    return std::make_pair(delays, plan.trace());
  };

  const auto [delays_a, trace_a] = schedule_for(0x5eed);
  const auto [delays_b, trace_b] = schedule_for(0x5eed);
  EXPECT_EQ(delays_a, delays_b);  // same seed -> same dial schedule
  EXPECT_EQ(trace_a, trace_b);    // replay trace byte-identical
  const auto [delays_c, trace_c] = schedule_for(0x5eee);
  EXPECT_NE(delays_a, delays_c);  // a different seed diverges

  for (int attempt = 0; attempt < 12; ++attempt) {
    const double uncapped =
        static_cast<double>(hconfig.backoff_base.us) * std::pow(2.0, attempt);
    const double pre_jitter =
        std::min(uncapped, static_cast<double>(hconfig.backoff_cap.us));
    const double lo = pre_jitter * (1.0 - hconfig.backoff_jitter);
    const double hi = pre_jitter * (1.0 + hconfig.backoff_jitter);
    EXPECT_GE(delays_a[attempt], static_cast<std::int64_t>(lo)) << attempt;
    EXPECT_LE(delays_a[attempt], static_cast<std::int64_t>(hi)) << attempt;
  }

  // Reset: a fresh attempt-0 draw is base-scale again, far below the
  // capped tail the schedule had grown to.
  Simulator sim;
  MessageBus bus;
  HealthMonitor health(sim, bus, hconfig, Rng(99));
  const std::int64_t grown = health.backoff_delay(10).us;
  const std::int64_t reset = health.backoff_delay(0).us;
  EXPECT_LT(reset, grown / 16);
}

TEST(ConmanTest, SupervisedDialLedgerReplaysFromSeed) {
  // Same seed, same closed port, same attempt budget: two independent
  // supervised dials must land the identical ledger in HealthStats and
  // ConmanStats (the schedule is deterministic even though the event loop
  // runs on wall clock). And a fresh supervision after a success starts
  // its backoff over: the second failing supervision retries exactly as
  // many times as the first, not zero.
  const auto run_failing_supervision = [](std::uint64_t seed,
                                          HealthStats* out_stats) {
    Simulator sim;
    MessageBus bus;
    HealthConfig hconfig;
    hconfig.enabled = true;
    hconfig.backoff_base = milliseconds(1.0);
    hconfig.backoff_cap = milliseconds(4.0);
    hconfig.max_reconnect_attempts = 3;
    HealthMonitor health(sim, bus, hconfig, Rng(seed));
    EventLoop loop;
    ConnectionManager conman(loop, {}, &health);
    bool called = false;
    conman.dial_supervised("replication", "127.0.0.1", grab_free_port(),
                           [&](std::unique_ptr<Connection> conn) {
                             called = true;
                             EXPECT_EQ(conn, nullptr);
                           });
    EXPECT_TRUE(pump_until(loop, [&] { return called; }));
    *out_stats = health.stats();
    return conman.stats();
  };

  HealthStats health_a;
  HealthStats health_b;
  const ConmanStats run_a = run_failing_supervision(0xabc, &health_a);
  const ConmanStats run_b = run_failing_supervision(0xabc, &health_b);
  EXPECT_EQ(run_a.reconnect_attempts, run_b.reconnect_attempts);
  EXPECT_EQ(run_a.reconnects_abandoned, run_b.reconnects_abandoned);
  EXPECT_EQ(run_a.dial_failures, run_b.dial_failures);
  EXPECT_EQ(health_a.backoff_retries, health_b.backoff_retries);
  EXPECT_EQ(health_a.reconnects_abandoned, health_b.reconnects_abandoned);
  EXPECT_EQ(health_a.backoff_retries, 3u);  // the full attempt budget, every run
}

// Egress-watermark backpressure over a real loopback pair: a peer that
// stops reading backs the connection up past the high watermark (reporting
// backed_up=true, upon which the owner pauses its producer's reads) and
// draining below the low watermark reports backed_up=false.
TEST(ConmanTest, EgressWatermarkBackpressurePausesAndResumesReads) {
  EventLoop loop;
  ConmanConfig config;
  config.connection.egress_high_watermark = 64 * 1024;
  config.connection.egress_low_watermark = 8 * 1024;
  ConnectionManager conman(loop, config);

  std::unique_ptr<Connection> server;
  auto port = conman.listen("127.0.0.1", 0,
                            [&](std::unique_ptr<Connection> conn,
                                const std::string&) { server = std::move(conn); });
  ASSERT_TRUE(port.ok());
  const int client = connect_client(port.value());
  // Shrink the kernel buffers so the watermark is reachable quickly.
  int small = 4096;
  ::setsockopt(client, SOL_SOCKET, SO_RCVBUF, &small, sizeof small);
  ASSERT_TRUE(pump_until(loop, [&] { return server != nullptr; }));
  ::setsockopt(server->fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof small);

  // Model the frontend's policy: while backed up, pause our own reads (in
  // the real pairing it is the opposite connection of the peer pair).
  std::vector<bool> transitions;
  server->on_backpressure([&](bool backed_up) {
    transitions.push_back(backed_up);
    if (backed_up) {
      server->pause_reads();
    } else {
      server->resume_reads();
    }
  });

  // Flood egress while the client does not read.
  const auto frame = encode(OfMessage{1, EchoRequestMsg{
                                             std::vector<std::uint8_t>(1000, 0x7e)}});
  while (!server->backed_up()) {
    ASSERT_TRUE(server->send(frame));
    server->flush();
    loop.run_once(0);
    ASSERT_LT(server->pending_egress_frames(), 8000u) << "never backed up";
  }
  ASSERT_EQ(transitions, (std::vector<bool>{true}));
  EXPECT_TRUE(server->reads_paused());
  EXPECT_EQ(server->stats().backpressure_pauses, 1u);
  EXPECT_GE(server->stats().would_block_writes, 1u);

  // Drain the client side until the queue falls under the low watermark.
  std::vector<std::uint8_t> sink(64 * 1024);
  ASSERT_TRUE(pump_until(loop, [&] {
    while (::recv(client, sink.data(), sink.size(), MSG_DONTWAIT) > 0) {
    }
    server->flush();
    return !server->backed_up();
  }));
  ASSERT_EQ(transitions, (std::vector<bool>{true, false}));
  EXPECT_FALSE(server->reads_paused());
  EXPECT_EQ(server->stats().backpressure_resumes, 1u);

  // The connection still works end to end after the squeeze.
  std::vector<std::vector<std::uint8_t>> received;
  server->on_frame([&](const FrameView& view) {
    received.emplace_back(view.data(), view.data() + view.size());
  });
  const auto ping = echo_frame(9);
  ASSERT_EQ(::send(client, ping.data(), ping.size(), 0),
            static_cast<ssize_t>(ping.size()));
  ASSERT_TRUE(pump_until(loop, [&] { return received.size() == 1; }));
  EXPECT_EQ(received[0], ping);
  ::close(client);
}

// A manager destroyed while a nonblocking connect is still in flight must
// reclaim the pending fd and its loop registration; the dial callback never
// fires.
TEST(ConmanTest, DestroyMidDialReclaimsPendingFd) {
  EventLoop loop;
  // A listener whose backlog is never drained: once the accept queue fills,
  // further connects sit in SYN_SENT — exactly the in-flight state a
  // teardown mid-dial has to clean up.
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(listen_fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  ASSERT_EQ(::listen(listen_fd, 1), 0);
  socklen_t len = sizeof addr;
  ASSERT_EQ(::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  std::vector<int> fillers;
  for (int i = 0; i < 8; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    make_nonblocking(fd);
    ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    fillers.push_back(fd);
  }

  const std::size_t baseline = loop.fd_count();
  bool called = false;
  {
    ConnectionManager conman(loop, {});
    conman.dial("127.0.0.1", port,
                [&](std::unique_ptr<Connection>) { called = true; });
    loop.run_once(0);
    ASSERT_FALSE(called) << "dial completed despite a full backlog";
    EXPECT_EQ(loop.fd_count(), baseline + 1);  // the pending connect
  }
  EXPECT_EQ(loop.fd_count(), baseline);
  EXPECT_FALSE(called);
  loop.run_once(0);  // late events for the dead dial are no-ops
  EXPECT_FALSE(called);

  for (const int fd : fillers) ::close(fd);
  ::close(listen_fd);
}

// A full bounded egress queue fails send() instead of blocking or growing
// without bound — the owner treats that as a sever.
TEST(ConmanTest, BoundedEgressQueueRejectsWhenFull) {
  EventLoop loop;
  ConmanConfig config;
  config.connection.max_egress_frames = 4;
  config.connection.egress_high_watermark = 1 << 30;  // watermark out of play
  config.connection.egress_low_watermark = 1 << 29;
  ConnectionManager conman(loop, config);

  std::unique_ptr<Connection> server;
  auto port = conman.listen("127.0.0.1", 0,
                            [&](std::unique_ptr<Connection> conn,
                                const std::string&) { server = std::move(conn); });
  ASSERT_TRUE(port.ok());
  const int client = connect_client(port.value());
  int small = 4096;
  ::setsockopt(client, SOL_SOCKET, SO_RCVBUF, &small, sizeof small);
  ASSERT_TRUE(pump_until(loop, [&] { return server != nullptr; }));
  ::setsockopt(server->fd(), SOL_SOCKET, SO_SNDBUF, &small, sizeof small);

  // Saturate the socket first so queued frames stay queued.
  const auto frame = encode(OfMessage{1, EchoRequestMsg{
                                             std::vector<std::uint8_t>(60000, 1)}});
  bool rejected = false;
  for (int i = 0; i < 200 && !rejected; ++i) {
    rejected = !server->send(frame);
    server->flush();
  }
  EXPECT_TRUE(rejected);
  EXPECT_GE(server->stats().send_rejected, 1u);
  EXPECT_TRUE(server->open()) << "send failure reports, it does not close";
  ::close(client);
}

}  // namespace
}  // namespace dfi::net
