// Unit tests for the Entity Resolution Manager: binding maintenance,
// enrichment (late binding), and spoof validation.
#include <gtest/gtest.h>

#include "bus/message_bus.h"
#include "core/entity_resolution.h"
#include "core/persistence.h"
#include "services/dhcp.h"
#include "services/dns.h"
#include "services/sensors.h"
#include "services/siem.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

BindingEvent user_host(const char* user, const char* host, bool retract = false) {
  BindingEvent event;
  event.kind = BindingKind::kUserHost;
  event.user = Username{user};
  event.host = Hostname{host};
  event.retracted = retract;
  return event;
}

BindingEvent host_ip(const char* host, Ipv4Address ip, bool retract = false) {
  BindingEvent event;
  event.kind = BindingKind::kHostIp;
  event.host = Hostname{host};
  event.ip = ip;
  event.retracted = retract;
  return event;
}

BindingEvent ip_mac(Ipv4Address ip, MacAddress mac, bool retract = false) {
  BindingEvent event;
  event.kind = BindingKind::kIpMac;
  event.ip = ip;
  event.mac = mac;
  event.retracted = retract;
  return event;
}

BindingEvent mac_location(MacAddress mac, Dpid dpid, PortNo port, bool retract = false) {
  BindingEvent event;
  event.kind = BindingKind::kMacLocation;
  event.mac = mac;
  event.dpid = dpid;
  event.port = port;
  event.retracted = retract;
  return event;
}

class ErmTest : public ::testing::Test {
 protected:
  ErmTest() : erm_(bus_) {}

  MessageBus bus_;
  EntityResolutionManager erm_;
};

TEST_F(ErmTest, EnrichFullChain) {
  erm_.apply(ip_mac(Ipv4Address(10, 0, 0, 5), MacAddress::from_u64(5)));
  erm_.apply(host_ip("alice-laptop", Ipv4Address(10, 0, 0, 5)));
  erm_.apply(user_host("alice", "alice-laptop"));

  EndpointView view;
  view.ip = Ipv4Address(10, 0, 0, 5);
  view.mac = MacAddress::from_u64(5);
  const EndpointView enriched = erm_.enrich(view);
  ASSERT_EQ(enriched.hostnames.size(), 1u);
  EXPECT_EQ(enriched.hostnames[0], Hostname{"alice-laptop"});
  ASSERT_EQ(enriched.usernames.size(), 1u);
  EXPECT_EQ(enriched.usernames[0], Username{"alice"});
}

TEST_F(ErmTest, EnrichUnknownIpYieldsNoIdentity) {
  EndpointView view;
  view.ip = Ipv4Address(99, 9, 9, 9);
  const EndpointView enriched = erm_.enrich(view);
  EXPECT_TRUE(enriched.hostnames.empty());
  EXPECT_TRUE(enriched.usernames.empty());
}

TEST_F(ErmTest, RetractionRemovesBinding) {
  erm_.apply(user_host("alice", "h1"));
  EXPECT_EQ(erm_.users_of_host(Hostname{"h1"}).size(), 1u);
  erm_.apply(user_host("alice", "h1", /*retract=*/true));
  EXPECT_TRUE(erm_.users_of_host(Hostname{"h1"}).empty());
  EXPECT_TRUE(erm_.hosts_of_user(Username{"alice"}).empty());
}

TEST_F(ErmTest, ManyToManyBindings) {
  // Alice logged onto two hosts; h1 also used by bob; h1 has two IPs.
  erm_.apply(user_host("alice", "h1"));
  erm_.apply(user_host("alice", "h2"));
  erm_.apply(user_host("bob", "h1"));
  erm_.apply(host_ip("h1", Ipv4Address(10, 0, 0, 1)));
  erm_.apply(host_ip("h1", Ipv4Address(10, 0, 0, 2)));

  EXPECT_EQ(erm_.hosts_of_user(Username{"alice"}).size(), 2u);
  EXPECT_EQ(erm_.users_of_host(Hostname{"h1"}).size(), 2u);
  EXPECT_EQ(erm_.ips_of_host(Hostname{"h1"}).size(), 2u);

  EndpointView view;
  view.ip = Ipv4Address(10, 0, 0, 2);
  const EndpointView enriched = erm_.enrich(view);
  EXPECT_EQ(enriched.usernames.size(), 2u);
}

TEST_F(ErmTest, DhcpReassignmentReplacesMacBinding) {
  erm_.apply(ip_mac(Ipv4Address(10, 0, 0, 1), MacAddress::from_u64(1)));
  erm_.apply(ip_mac(Ipv4Address(10, 0, 0, 1), MacAddress::from_u64(2)));
  EXPECT_EQ(erm_.mac_of_ip(Ipv4Address(10, 0, 0, 1)), MacAddress::from_u64(2));
  EXPECT_TRUE(erm_.ips_of_mac(MacAddress::from_u64(1)).empty());
}

TEST_F(ErmTest, ValidateDetectsIpSpoofing) {
  erm_.apply(ip_mac(Ipv4Address(10, 0, 0, 1), MacAddress::from_u64(1)));
  // Attacker at MAC 2 claims IP .1, which DHCP bound to MAC 1.
  const SpoofCheck check = erm_.validate(MacAddress::from_u64(2),
                                         Ipv4Address(10, 0, 0, 1), std::nullopt,
                                         std::nullopt);
  EXPECT_TRUE(check.spoofed);
  EXPECT_EQ(erm_.stats().spoof_rejections, 1u);
}

TEST_F(ErmTest, ValidateAcceptsCorrectOrUnknownBindings) {
  erm_.apply(ip_mac(Ipv4Address(10, 0, 0, 1), MacAddress::from_u64(1)));
  EXPECT_FALSE(erm_.validate(MacAddress::from_u64(1), Ipv4Address(10, 0, 0, 1),
                             std::nullopt, std::nullopt)
                   .spoofed);
  // Unknown IP: no binding to contradict — not spoofed, just unenriched.
  EXPECT_FALSE(erm_.validate(MacAddress::from_u64(9), Ipv4Address(10, 9, 9, 9),
                             std::nullopt, std::nullopt)
                   .spoofed);
}

TEST_F(ErmTest, ValidateDetectsMacAtWrongPort) {
  erm_.apply(mac_location(MacAddress::from_u64(1), Dpid{7}, PortNo{3}));
  const SpoofCheck wrong = erm_.validate(MacAddress::from_u64(1), std::nullopt,
                                         Dpid{7}, PortNo{4});
  EXPECT_TRUE(wrong.spoofed);
  const SpoofCheck right = erm_.validate(MacAddress::from_u64(1), std::nullopt,
                                         Dpid{7}, PortNo{3});
  EXPECT_FALSE(right.spoofed);
  // A different switch has no binding for this MAC: fine.
  EXPECT_FALSE(
      erm_.validate(MacAddress::from_u64(1), std::nullopt, Dpid{8}, PortNo{9}).spoofed);
}

TEST_F(ErmTest, MacLocationReplacedOnMove) {
  erm_.apply(mac_location(MacAddress::from_u64(1), Dpid{7}, PortNo{3}));
  erm_.apply(mac_location(MacAddress::from_u64(1), Dpid{7}, PortNo{5}));
  EXPECT_EQ(erm_.location_of_mac(Dpid{7}, MacAddress::from_u64(1)), PortNo{5});
}

TEST_F(ErmTest, ConsumesBusEvents) {
  bus_.publish(topics::kErmBindings, user_host("alice", "h1"));
  EXPECT_EQ(erm_.users_of_host(Hostname{"h1"}).size(), 1u);
  EXPECT_EQ(erm_.stats().binding_updates, 1u);
}

TEST_F(ErmTest, EnrichDeduplicatesUsersAcrossHostnames) {
  // One IP carries two hostname bindings (e.g. DNS alias); alice is logged
  // onto both. She must appear once in the enriched view, not per host.
  erm_.apply(host_ip("h1", Ipv4Address(10, 0, 0, 1)));
  erm_.apply(host_ip("h1-alias", Ipv4Address(10, 0, 0, 1)));
  erm_.apply(user_host("alice", "h1"));
  erm_.apply(user_host("alice", "h1-alias"));
  erm_.apply(user_host("bob", "h1"));

  EndpointView view;
  view.ip = Ipv4Address(10, 0, 0, 1);
  const EndpointView enriched = erm_.enrich(view);
  EXPECT_EQ(enriched.hostnames.size(), 2u);
  ASSERT_EQ(enriched.usernames.size(), 2u);
  EXPECT_EQ(enriched.usernames[0], Username{"alice"});
  EXPECT_EQ(enriched.usernames[1], Username{"bob"});
}

TEST_F(ErmTest, EpochBumpsOnEffectiveChangesOnly) {
  const std::uint64_t e0 = erm_.epoch();
  erm_.apply(user_host("alice", "h1"));
  EXPECT_GT(erm_.epoch(), e0);
  const std::uint64_t e1 = erm_.epoch();
  erm_.apply(user_host("alice", "h1"));  // redundant re-assertion: no-op
  EXPECT_EQ(erm_.epoch(), e1);
  erm_.apply(user_host("alice", "h9", /*retract=*/true));  // absent binding
  EXPECT_EQ(erm_.epoch(), e1);
  erm_.apply(user_host("alice", "h1", /*retract=*/true));
  EXPECT_GT(erm_.epoch(), e1);
}

TEST_F(ErmTest, EpochSkipsFirstMacLocationAssertion) {
  // A first (switch, MAC) location sighting deliberately does not bump the
  // epoch (see the header comment): validate() passes on missing location
  // bindings, so no cached decision can be contradicted by it.
  const std::uint64_t e0 = erm_.epoch();
  erm_.apply(mac_location(MacAddress::from_u64(7), Dpid{1}, PortNo{3}));
  EXPECT_EQ(erm_.epoch(), e0);
  // Re-assertion at the same port: still no change.
  erm_.apply(mac_location(MacAddress::from_u64(7), Dpid{1}, PortNo{3}));
  EXPECT_EQ(erm_.epoch(), e0);
  // A move replaces the binding: that IS an effective change.
  erm_.apply(mac_location(MacAddress::from_u64(7), Dpid{1}, PortNo{4}));
  EXPECT_GT(erm_.epoch(), e0);
  const std::uint64_t e1 = erm_.epoch();
  // Retraction of an existing location: effective change too.
  erm_.apply(mac_location(MacAddress::from_u64(7), Dpid{1}, PortNo{4}, true));
  EXPECT_GT(erm_.epoch(), e1);
}

TEST_F(ErmTest, EpochBumpsOnDhcpReassignment) {
  erm_.apply(ip_mac(Ipv4Address(10, 0, 0, 1), MacAddress::from_u64(1)));
  const std::uint64_t e0 = erm_.epoch();
  erm_.apply(ip_mac(Ipv4Address(10, 0, 0, 1), MacAddress::from_u64(1)));  // no-op
  EXPECT_EQ(erm_.epoch(), e0);
  erm_.apply(ip_mac(Ipv4Address(10, 0, 0, 1), MacAddress::from_u64(2)));  // lease moves
  EXPECT_GT(erm_.epoch(), e0);
}

TEST_F(ErmTest, BindingCountAggregates) {
  erm_.apply(user_host("a", "h"));
  erm_.apply(host_ip("h", Ipv4Address(1, 1, 1, 1)));
  erm_.apply(ip_mac(Ipv4Address(1, 1, 1, 1), MacAddress::from_u64(1)));
  erm_.apply(mac_location(MacAddress::from_u64(1), Dpid{1}, PortNo{1}));
  EXPECT_EQ(erm_.binding_count(), 4u);
}

// End-to-end sensor chain: real services feed the ERM through the sensors,
// exactly as Figure 3 prescribes.
TEST(ErmSensorsTest, ServicesFeedErmThroughSensors) {
  Simulator sim;
  MessageBus bus;
  EntityResolutionManager erm(bus);
  SensorSuite sensors(bus);
  const auto clock = [&sim]() { return sim.now(); };
  DhcpServer dhcp(bus, clock, Ipv4Address(10, 0, 0, 10), 8);
  DnsServer dns(bus, clock);
  SiemService siem(bus, clock);

  const MacAddress mac = MacAddress::from_u64(0xA11CE);
  const auto leased = dhcp.lease(mac);
  ASSERT_TRUE(leased.ok());
  dns.register_record(Hostname{"alice-laptop"}, leased.value());
  siem.process_created(Username{"alice"}, Hostname{"alice-laptop"});

  EndpointView view;
  view.ip = leased.value();
  view.mac = mac;
  const EndpointView enriched = erm.enrich(view);
  ASSERT_EQ(enriched.usernames.size(), 1u);
  EXPECT_EQ(enriched.usernames[0], Username{"alice"});
  EXPECT_EQ(erm.mac_of_ip(leased.value()), mac);

  // Log-off retracts the user binding.
  siem.process_terminated(Username{"alice"}, Hostname{"alice-laptop"});
  EXPECT_TRUE(erm.users_of_host(Hostname{"alice-laptop"}).empty());

  // Release retracts the IP<->MAC binding.
  dhcp.release(mac);
  EXPECT_FALSE(erm.mac_of_ip(leased.value()).has_value());
}

// Regression: reloading a binding snapshot replays only the *surviving*
// assertions, so without a floor the epoch counter restarts behind its
// pre-crash value — and later mutations can march it back to a value that
// pre-crash decision-cache stamps already cite, with different binding
// state behind it. load_bindings' epoch_floor closes the hole.
TEST(ErmReload, EpochFloorPreventsPreCrashStampAliasing) {
  MessageBus bus;
  EntityResolutionManager erm(bus);
  erm.apply(user_host("alice", "h1"));
  erm.apply(user_host("alice", "h1", /*retract=*/true));
  erm.apply(user_host("bob", "h2"));
  const std::uint64_t pre_crash_epoch = erm.epoch();
  ASSERT_EQ(pre_crash_epoch, 3u);
  const std::string snapshot = save_bindings(erm);

  // Plain reload: only bob's binding survives, the epoch lands at 1.
  MessageBus bus2;
  EntityResolutionManager reloaded(bus2);
  ASSERT_TRUE(load_bindings(reloaded, snapshot).ok());
  ASSERT_LT(reloaded.epoch(), pre_crash_epoch);

  // Two unrelated mutations later, the counter aliases the pre-crash value
  // while the binding state is very different — any cached decision
  // stamped (binding_epoch=3) before the crash would now validate.
  reloaded.apply(user_host("carol", "h3"));
  reloaded.apply(user_host("dave", "h4"));
  EXPECT_EQ(reloaded.epoch(), pre_crash_epoch);  // the aliasing hazard
  EXPECT_NE(save_bindings(reloaded), snapshot);

  // Floored reload: the counter can never revisit pre-crash values.
  MessageBus bus3;
  EntityResolutionManager floored(bus3);
  ASSERT_TRUE(load_bindings(floored, snapshot, pre_crash_epoch).ok());
  EXPECT_EQ(floored.epoch(), pre_crash_epoch);
  floored.apply(user_host("carol", "h3"));
  floored.apply(user_host("dave", "h4"));
  EXPECT_GT(floored.epoch(), pre_crash_epoch + 1);
}

// ------------------------------------------------ compact entity plane

TEST_F(ErmTest, InternedIdsStableAcrossEpochs) {
  erm_.apply(user_host("alice", "h1"));
  const EntityId alice = erm_.interner().users().find("alice");
  const EntityId h1 = erm_.interner().hosts().find("h1");
  ASSERT_TRUE(alice.valid());
  ASSERT_TRUE(h1.valid());

  // Retract, churn other entities across several epochs, re-assert: the
  // ids never change, and an id captured in an old snapshot still names
  // the same strings.
  erm_.apply(user_host("alice", "h1", /*retract=*/true));
  erm_.apply(user_host("bob", "h2"));
  erm_.apply(host_ip("h3", Ipv4Address(10, 0, 0, 3)));
  erm_.apply(user_host("alice", "h1"));
  EXPECT_EQ(erm_.interner().users().find("alice"), alice);
  EXPECT_EQ(erm_.interner().hosts().find("h1"), h1);
  EXPECT_EQ(erm_.interner().users().view(alice), "alice");
  EXPECT_EQ(erm_.interner().hosts().view(h1), "h1");
}

TEST_F(ErmTest, HeldSnapshotImmutableUnderMutation) {
  erm_.apply(ip_mac(Ipv4Address(10, 0, 0, 5), MacAddress::from_u64(5)));
  erm_.apply(host_ip("h5", Ipv4Address(10, 0, 0, 5)));
  erm_.apply(user_host("alice", "h5"));
  const ErmSnapshot held = erm_.snapshot_view();

  // Rebind the IP's world: user logs off, DHCP hands the IP elsewhere.
  erm_.apply(user_host("alice", "h5", /*retract=*/true));
  erm_.apply(host_ip("h5", Ipv4Address(10, 0, 0, 5), /*retract=*/true));
  erm_.apply(ip_mac(Ipv4Address(10, 0, 0, 5), MacAddress::from_u64(99)));

  // The held snapshot still answers from its epoch's world...
  EndpointView view;
  view.ip = Ipv4Address(10, 0, 0, 5);
  const EndpointView old_world = held.enrich(view);
  ASSERT_EQ(old_world.hostnames.size(), 1u);
  EXPECT_EQ(old_world.hostnames[0], Hostname{"h5"});
  ASSERT_EQ(old_world.usernames.size(), 1u);
  EXPECT_EQ(old_world.usernames[0], Username{"alice"});
  EXPECT_TRUE(held.validate_identity(MacAddress::from_u64(99),
                                     Ipv4Address(10, 0, 0, 5))
                  .spoofed);

  // ...while the live ERM answers from the new one.
  EXPECT_TRUE(erm_.enrich(view).hostnames.empty());
  EXPECT_FALSE(erm_.validate(MacAddress::from_u64(99), Ipv4Address(10, 0, 0, 5),
                             std::nullopt, std::nullopt)
                   .spoofed);
}

TEST_F(ErmTest, IncrementalPublicationSharesUntouchedPages) {
  // Load enough hosts to span several copy-on-write pages, publish, then
  // mutate one binding: only the dirty pages may be cloned.
  constexpr std::uint32_t kHosts = 4096;  // 8 pages of 512 slots
  for (std::uint32_t h = 0; h < kHosts; ++h) {
    erm_.apply(host_ip(("host" + std::to_string(h)).c_str(),
                       Ipv4Address(0x0a000000u + h)));
  }
  (void)erm_.snapshot_view();
  const CowTableStats at_publish = erm_.cow_stats();

  erm_.apply(host_ip("host7", Ipv4Address(0x0a000007u), /*retract=*/true));
  (void)erm_.snapshot_view();
  const CowTableStats after = erm_.cow_stats();
  // One host-ip retraction touches two tables; each clones at most the one
  // page holding the dirty slot (plus its root vector).
  EXPECT_LE(after.page_copies - at_publish.page_copies, 2u);
  EXPECT_LE(after.root_copies - at_publish.root_copies, 2u);
}

TEST_F(ErmTest, RedundantEventCausesNoPageCopies) {
  erm_.apply(user_host("alice", "h1"));
  (void)erm_.snapshot_view();
  const std::uint64_t epoch = erm_.epoch();
  const CowTableStats before = erm_.cow_stats();
  // Re-asserting an existing binding mutates nothing: no epoch bump (the
  // long-standing contract) and, new with CoW tables, no page clones.
  erm_.apply(user_host("alice", "h1"));
  EXPECT_EQ(erm_.epoch(), epoch);
  EXPECT_EQ(erm_.cow_stats().page_copies, before.page_copies);
}

}  // namespace
}  // namespace dfi
