#!/usr/bin/env bash
# Repo check, split into stages so CI can run them as separate jobs:
#
#   tier1  configure + build + full ctest suite (the 400+ tier-1 tests),
#          then the proxy-datapath, scale-out, entity-plane and socket-
#          datapath benches in smoke mode, each gated against its committed
#          baseline under bench/baselines/
#   asan   ASan+UBSan build (-DDFI_SANITIZE=ON) of the memory-sensitive
#          component tests — including the proxy teardown regressions
#   tsan   TSan build (-DDFI_SANITIZE=thread) of the SPSC ring stress, the
#          threaded shard-pool and bus tests
#   fuzz   the model-based invariant fuzz campaign (tests/support/
#          fuzz_harness.cc): the full deterministic campaign on the plain
#          build, plus bounded campaigns under ASan+UBSan and TSan.
#          DFI_FUZZ_SCHEDULES / DFI_FUZZ_SEED override campaign size and
#          seed (see tests/fuzz_invariants_test.cc).
#   recovery  the crash-recovery fuzz campaign (tests/
#          crash_recovery_fuzz_test.cc): seeded kill/restart schedules
#          against the journaled control plane, byte-identical recovery
#          asserted against a no-crash oracle, plus the journal and health
#          -monitor component tests — full campaign on the plain build,
#          bounded campaigns under ASan+UBSan and TSan. The same
#          DFI_FUZZ_SCHEDULES / DFI_FUZZ_SEED knobs apply.
#   replication  the two-replica failover campaign (the Replicated*
#          schedules of tests/crash_recovery_fuzz_test.cc): seeded kills of
#          either replica mid-stream over a faulty link, survivor state
#          byte-identical to the no-failure oracle, fenced stand-down of
#          every deposed primary — plus the replication component tests and
#          the failover bench smoke. Full campaign on the plain build,
#          bounded campaigns under ASan+UBSan and TSan
#          (DFI_FUZZ_SCHEDULES / DFI_FUZZ_SEED apply here too).
#
# Usage: tools/check.sh [--no-sanitize] [stage...]
#   no stages        -> all of tier1 asan tsan fuzz recovery replication
#   --no-sanitize    -> tier1 only (kept for compatibility)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

STAGES=()
for arg in "$@"; do
  case "$arg" in
    --no-sanitize) STAGES=(tier1) ;;
    tier1|asan|tsan|fuzz|recovery|replication) STAGES+=("$arg") ;;
    *) echo "unknown stage: $arg (want tier1, asan, tsan, fuzz, recovery, replication)" >&2; exit 2 ;;
  esac
done
if [[ ${#STAGES[@]} -eq 0 ]]; then
  STAGES=(tier1 asan tsan fuzz recovery replication)
fi

want() { local s; for s in "${STAGES[@]}"; do [[ "$s" == "$1" ]] && return 0; done; return 1; }

if want tier1; then
  echo "== tier-1: configure + build =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}"

  echo "== tier-1: ctest =="
  ctest --test-dir build --output-on-failure -j "${JOBS}"

  echo "== tier-1: proxy datapath bench (smoke + baseline gate) =="
  # Byte-identity + zero-allocation checks, then speedups vs the committed
  # conservative floors; a >10% regression below a floor fails the stage.
  (cd build/bench && ./bench_micro_proxy_datapath --smoke \
    --check-baseline ../../bench/baselines/BENCH_proxy_datapath.baseline.json)

  echo "== tier-1: batched-datapath scale-out bench (smoke + baseline gate) =="
  # Batch-mode decisions/s for the SPSC-ring datapath vs the committed
  # conservative floors; a >10% shortfall below a floor fails the stage.
  (cd build/bench && ./bench_ablation_scaleout --smoke \
    --check-baseline ../../bench/baselines/BENCH_scaleout.baseline.json)

  echo "== tier-1: entity-plane scale bench (smoke + baseline gate) =="
  # Interned-entity decision latency, incremental-publish throughput, and
  # RSS/binding vs committed floors; in-process scaling gates (decision
  # latency <=2x, publish <=10x across the sweep) run in every mode.
  (cd build/bench && ./bench_erm_scale --smoke \
    --check-baseline ../../bench/baselines/BENCH_erm_scale.baseline.json)

  echo "== tier-1: socket datapath bench (smoke + baseline gate) =="
  # Loopback TCP echo through the epoll event loop + readv/writev
  # Connections: frames/s and p50/p99 vs committed floors, the best-b64
  # figure vs 50% of the BENCH_proxy_datapath mixed figure, and zero
  # steady-state allocations asserted in-binary.
  (cd build/bench && ./bench_socket_datapath --smoke \
    --check-baseline ../../bench/baselines/BENCH_socket_datapath.baseline.json)

  echo "== tier-1: failover bench (smoke + baseline gate) =="
  # Warm-standby promotion drill (detection deadline, fenced stand-down,
  # post-promotion FlowMod) and steady-state replication records/s —
  # unreplicated vs in-memory link vs loopback ReplTransport — vs the
  # committed floors; standby byte-identity asserted in-binary.
  (cd build/bench && ./bench_failover --smoke \
    --check-baseline ../../bench/baselines/BENCH_failover.baseline.json)
fi

if want asan; then
  echo "== sanitizer build (ASan+UBSan) =="
  cmake -B build-asan -S . -DDFI_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "${JOBS}" --target \
    policy_index_test decision_cache_test policy_manager_test erm_test \
    intern_test pcp_test bus_test proxy_test flush_test \
    event_loop_test conman_test fault_socket_test socket_frontend_test \
    secure_channel_test wire_test

  echo "== sanitizer tests =="
  ./build-asan/tests/intern_test
  ./build-asan/tests/policy_index_test
  ./build-asan/tests/decision_cache_test
  ./build-asan/tests/policy_manager_test
  ./build-asan/tests/erm_test
  ./build-asan/tests/pcp_test
  ./build-asan/tests/bus_test
  ./build-asan/tests/proxy_test
  ./build-asan/tests/flush_test
  # Socket datapath: real-fd lifecycle (epoll registration, accept/dial,
  # scatter readv/writev, teardown with frames in flight) is exactly the
  # use-after-free / partial-buffer surface ASan exists for.
  ./build-asan/tests/event_loop_test
  ./build-asan/tests/conman_test
  ./build-asan/tests/fault_socket_test
  ./build-asan/tests/socket_frontend_test
  ./build-asan/tests/secure_channel_test
  ./build-asan/tests/wire_test
fi

if want tsan; then
  echo "== sanitizer build (TSan, threaded backend) =="
  cmake -B build-tsan -S . -DDFI_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target spsc_ring_test \
    shard_pool_test bus_test proxy_test intern_test \
    event_loop_test conman_test

  echo "== sanitizer tests (TSan) =="
  ./build-tsan/tests/intern_test
  ./build-tsan/tests/spsc_ring_test
  ./build-tsan/tests/shard_pool_test
  ./build-tsan/tests/bus_test
  ./build-tsan/tests/proxy_test
  # The event loop's cross-thread surface: eventfd wakeup + posted-closure
  # handoff (the shard-pool egress injection path), exercised by the
  # loop-thread tests; conman adds timer-wheel reconnect races.
  ./build-tsan/tests/event_loop_test
  ./build-tsan/tests/conman_test
fi

if want fuzz; then
  echo "== fuzz: full deterministic campaign (plain build) =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target fuzz_invariants_test
  ./build/tests/fuzz_invariants_test

  echo "== fuzz: bounded campaign under ASan+UBSan =="
  cmake -B build-asan -S . -DDFI_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "${JOBS}" --target fuzz_invariants_test
  DFI_FUZZ_SCHEDULES="${DFI_FUZZ_ASAN_SCHEDULES:-400}" \
    ./build-asan/tests/fuzz_invariants_test

  echo "== fuzz: bounded campaign under TSan =="
  cmake -B build-tsan -S . -DDFI_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target fuzz_invariants_test
  DFI_FUZZ_SCHEDULES="${DFI_FUZZ_TSAN_SCHEDULES:-200}" \
    ./build-tsan/tests/fuzz_invariants_test
fi

if want recovery; then
  echo "== recovery: journal + health-monitor component tests =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target \
    crash_recovery_fuzz_test journal_test health_monitor_test persistence_test
  ./build/tests/journal_test
  ./build/tests/health_monitor_test
  ./build/tests/persistence_test

  echo "== recovery: full crash-recovery fuzz campaign (plain build) =="
  ./build/tests/crash_recovery_fuzz_test

  echo "== recovery: bounded campaign under ASan+UBSan =="
  cmake -B build-asan -S . -DDFI_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "${JOBS}" --target \
    crash_recovery_fuzz_test journal_test health_monitor_test
  ./build-asan/tests/journal_test
  ./build-asan/tests/health_monitor_test
  DFI_FUZZ_SCHEDULES="${DFI_RECOVERY_ASAN_SCHEDULES:-300}" \
    ./build-asan/tests/crash_recovery_fuzz_test

  echo "== recovery: bounded campaign under TSan =="
  cmake -B build-tsan -S . -DDFI_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target crash_recovery_fuzz_test
  DFI_FUZZ_SCHEDULES="${DFI_RECOVERY_TSAN_SCHEDULES:-150}" \
    ./build-tsan/tests/crash_recovery_fuzz_test
fi

if want replication; then
  echo "== replication: component tests =="
  cmake -B build -S . >/dev/null
  cmake --build build -j "${JOBS}" --target \
    crash_recovery_fuzz_test replication_test conman_test
  ./build/tests/replication_test
  ./build/tests/conman_test

  echo "== replication: full two-replica failover campaign (plain build) =="
  ./build/tests/crash_recovery_fuzz_test \
    --gtest_filter='CrashRecoveryFuzz.Replicated*'

  echo "== replication: bounded campaign under ASan+UBSan =="
  cmake -B build-asan -S . -DDFI_SANITIZE=ON >/dev/null
  cmake --build build-asan -j "${JOBS}" --target \
    crash_recovery_fuzz_test replication_test
  ./build-asan/tests/replication_test
  DFI_FUZZ_SCHEDULES="${DFI_REPLICATION_ASAN_SCHEDULES:-300}" \
    ./build-asan/tests/crash_recovery_fuzz_test \
    --gtest_filter='CrashRecoveryFuzz.Replicated*'

  echo "== replication: bounded campaign under TSan =="
  cmake -B build-tsan -S . -DDFI_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j "${JOBS}" --target crash_recovery_fuzz_test
  DFI_FUZZ_SCHEDULES="${DFI_REPLICATION_TSAN_SCHEDULES:-150}" \
    ./build-tsan/tests/crash_recovery_fuzz_test \
    --gtest_filter='CrashRecoveryFuzz.Replicated*'
fi

echo "== all requested stages passed =="
