#!/usr/bin/env bash
# Repo check: tier-1 build + full test suite, then an ASan+UBSan build
# (-DDFI_SANITIZE=ON) running the policy-index differential and
# decision-cache tests under the sanitizers, then a TSan build
# (-DDFI_SANITIZE=thread) running the threaded shard-pool tests.
#
# Usage: tools/check.sh [--no-sanitize]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "== tier-1: configure + build =="
cmake -B build -S . >/dev/null
cmake --build build -j "${JOBS}"

echo "== tier-1: ctest =="
ctest --test-dir build --output-on-failure -j "${JOBS}"

if [[ "${1:-}" == "--no-sanitize" ]]; then
  echo "== skipping sanitizer build (--no-sanitize) =="
  exit 0
fi

echo "== sanitizer build (ASan+UBSan) =="
cmake -B build-asan -S . -DDFI_SANITIZE=ON >/dev/null
cmake --build build-asan -j "${JOBS}" --target \
  policy_index_test decision_cache_test policy_manager_test erm_test pcp_test \
  bus_test

echo "== sanitizer tests =="
./build-asan/tests/policy_index_test
./build-asan/tests/decision_cache_test
./build-asan/tests/policy_manager_test
./build-asan/tests/erm_test
./build-asan/tests/pcp_test
./build-asan/tests/bus_test

echo "== sanitizer build (TSan, threaded backend) =="
cmake -B build-tsan -S . -DDFI_SANITIZE=thread >/dev/null
cmake --build build-tsan -j "${JOBS}" --target shard_pool_test bus_test

echo "== sanitizer tests (TSan) =="
./build-tsan/tests/shard_pool_test
./build-tsan/tests/bus_test

echo "== all checks passed =="
