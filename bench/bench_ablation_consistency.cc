// Ablation: policy-switch consistency mechanisms (paper Section III-A).
//
// The paper argues neither OpenFlow timeout mechanism is suitable for
// keeping cached flow rules consistent with a changing policy, and DFI
// instead flushes rules by cookie at the moment policy changes:
//   * hard timeouts bound staleness but interrupt long-running allowed
//     flows, bouncing their packets to the control plane;
//   * soft (idle) timeouts never expire rules that stay in use, so a
//     revoked policy keeps being enforced for as long as the flow lives;
//   * cookie flushing removes exactly the stale rules immediately.
//
// Scenario: two long-running flows at 10 packets/sec for 60 s.
//   flow A — its Allow policy holds for the whole run;
//   flow B — its Allow policy is revoked at t = 20 s.
// We measure packets of B that leak through after revocation, the
// staleness window, and the control-plane load (packet-ins) the mechanism
// imposes on the still-allowed flow A.
#include <cstdio>

#include "harness/report.h"
#include "openflow/switch_device.h"
#include "sim/simulator.h"

using namespace dfi;

namespace {

enum class Strategy { kCookieFlush, kHardTimeout, kSoftTimeout };

struct Outcome {
  std::uint64_t leaked_after_revocation = 0;
  double staleness_window_s = 0.0;
  std::uint64_t packet_ins_flow_a = 0;
};

constexpr Cookie kPolicyA{0xaaaa};
constexpr Cookie kPolicyB{0xbbbb};
constexpr Cookie kDenyCookie{0x1};

Outcome run(Strategy strategy) {
  Simulator sim;
  SwitchDevice device(SwitchConfig{Dpid{1}, 4, 1 << 16}, [&sim]() { return sim.now(); });
  std::uint64_t delivered_b = 0;
  device.add_port(PortNo{1}, [](PortNo, const std::vector<std::uint8_t>&) {});
  device.add_port(PortNo{2}, [&delivered_b](PortNo, const std::vector<std::uint8_t>& bytes) {
    // Flow B's destination IP is 10.0.0.4 (offset 30..33 of the frame).
    if (bytes.size() >= 34 && bytes[33] == 4) ++delivered_b;
  });

  const Packet flow_a = make_tcp_packet(MacAddress::from_u64(1), MacAddress::from_u64(2),
                                        Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                                        5000, 80);
  const Packet flow_b = make_tcp_packet(MacAddress::from_u64(3), MacAddress::from_u64(4),
                                        Ipv4Address(10, 0, 0, 3), Ipv4Address(10, 0, 0, 4),
                                        6000, 443);

  bool revoked_b = false;
  std::uint64_t packet_ins_a = 0;

  const auto install = [&](const Packet& packet, Cookie cookie, bool allow) {
    FlowModMsg mod;
    mod.command = FlowModCommand::kAdd;
    mod.table_id = 0;
    mod.priority = 100;
    mod.cookie = cookie;
    mod.match = Match::exact_from_packet(packet, PortNo{1});
    mod.instructions = allow ? Instructions::output(PortNo{2}) : Instructions::drop();
    if (strategy == Strategy::kHardTimeout) mod.hard_timeout = 10;
    if (strategy == Strategy::kSoftTimeout) mod.idle_timeout = 10;
    device.receive_control(encode(mod.command == FlowModCommand::kAdd
                                      ? OfMessage{1, mod}
                                      : OfMessage{1, mod}));
  };

  // Reactive control plane: a packet-in re-evaluates the *current* policy
  // and installs the matching rule (allow while the policy holds, deny
  // after revocation), exactly as DFI's PCP would.
  device.connect_control([&](const std::vector<std::uint8_t>& bytes) {
    FrameDecoder decoder;
    decoder.feed(bytes);
    for (auto& result : decoder.drain()) {
      if (!result.ok()) continue;
      const auto* packet_in = std::get_if<PacketInMsg>(&result.value().payload);
      if (packet_in == nullptr) continue;
      const auto parsed = Packet::parse(packet_in->data);
      if (!parsed.ok()) continue;
      if (parsed.value().ipv4->src == flow_a.ipv4->src) {
        ++packet_ins_a;
        install(flow_a, kPolicyA, /*allow=*/true);
      } else if (revoked_b) {
        install(flow_b, kDenyCookie, /*allow=*/false);
      } else {
        install(flow_b, kPolicyB, /*allow=*/true);
      }
    }
  });

  std::uint64_t leaked = 0;
  double last_leak_s = 20.0;
  for (int tick = 0; tick < 600; ++tick) {
    sim.schedule_at(SimTime{} + milliseconds(100.0 * tick), [&]() {
      device.expire_flows();
      device.receive_packet(PortNo{1}, flow_a.serialize());
      const std::uint64_t before = delivered_b;
      device.receive_packet(PortNo{1}, flow_b.serialize());
      if (revoked_b && delivered_b > before) {
        ++leaked;
        last_leak_s = sim.now().us / 1e6;
      }
    });
  }
  // Revocation of B's policy at t = 20 s.
  sim.schedule_at(SimTime{} + seconds(20.0), [&]() {
    revoked_b = true;
    if (strategy == Strategy::kCookieFlush) {
      FlowModMsg del;
      del.command = FlowModCommand::kDelete;
      del.table_id = 0;
      del.cookie = kPolicyB;
      del.cookie_mask = Cookie{~0ull};
      device.receive_control(encode(OfMessage{2, del}));
    }
    // Timeout strategies do nothing at revocation time — that is the point.
  });

  sim.run();

  Outcome outcome;
  outcome.leaked_after_revocation = leaked;
  outcome.staleness_window_s = leaked == 0 ? 0.0 : last_leak_s - 20.0;
  outcome.packet_ins_flow_a = packet_ins_a;
  return outcome;
}

}  // namespace

int main() {
  std::printf("DFI reproduction — ablation: policy-switch consistency (Section III-A)\n");

  Report report(
      "Consistency mechanisms: flows A (allowed) & B (revoked at t=20 s), 60 s @10 pps");
  report.columns({"Strategy", "B pkts leaked after revoke", "Staleness window (s)",
                  "Packet-ins for allowed flow A"});
  const struct {
    const char* name;
    Strategy strategy;
  } strategies[] = {{"DFI cookie flush", Strategy::kCookieFlush},
                    {"hard timeout 10s", Strategy::kHardTimeout},
                    {"soft timeout 10s", Strategy::kSoftTimeout}};
  for (const auto& entry : strategies) {
    const Outcome outcome = run(entry.strategy);
    report.row({entry.name, std::to_string(outcome.leaked_after_revocation),
                Report::fmt(outcome.staleness_window_s, 1),
                std::to_string(outcome.packet_ins_flow_a)});
  }
  report.note("expected: cookie flush leaks 0 and costs flow A a single packet-in;");
  report.note("hard timeout leaks for up to its period AND bounces flow A every 10 s;");
  report.note("soft timeout never evicts the in-use stale rule (leaks all 40 s)");
  report.print();
  return 0;
}
