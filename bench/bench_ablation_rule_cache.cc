// Ablation: exact-match rules vs the wildcard-caching extension
// (paper Section III-B future work, CAB-ACME).
//
// Workload: an enterprise-ish pattern — H client hosts each opening F
// short flows (fresh ephemeral ports) to each of S servers, under per-pair
// IP Allow policies. With exact-match rules every flow costs a
// control-plane round trip and a Table-0 entry; with caching, the first
// flow per (client, server) pair installs one wildcard rule that absorbs
// the rest.
#include <cstdio>
#include <vector>

#include "bus/message_bus.h"
#include "core/pcp.h"
#include "harness/report.h"
#include "openflow/switch_device.h"
#include "sim/simulator.h"

using namespace dfi;

namespace {

struct Outcome {
  std::uint64_t packet_ins = 0;
  std::uint64_t table_rules = 0;
  std::uint64_t fallbacks = 0;
};

Outcome run(bool caching, int clients, int servers, int flows_per_pair) {
  Simulator sim;
  MessageBus bus;
  EntityResolutionManager erm(bus);
  PolicyManager manager(bus);
  PcpConfig config;
  config.zero_latency = true;
  config.wildcard_caching = caching;
  PolicyCompilationPoint pcp(sim, bus, erm, manager, config, Rng(3));

  SwitchDevice device(SwitchConfig{Dpid{1}, 4, 1 << 20}, [&sim]() { return sim.now(); });
  device.add_port(PortNo{1}, [](PortNo, const std::vector<std::uint8_t>&) {});
  device.add_port(PortNo{2}, [](PortNo, const std::vector<std::uint8_t>&) {});
  device.connect_control([&pcp](const std::vector<std::uint8_t>& bytes) {
    FrameDecoder decoder;
    decoder.feed(bytes);
    for (auto& result : decoder.drain()) {
      if (!result.ok()) continue;
      if (auto* packet_in = std::get_if<PacketInMsg>(&result.value().payload)) {
        // Only Table-0 misses are DFI's to decide (the proxy's routing
        // rule); misses in the controller tables are the controller's
        // reactive-forwarding load, not access control.
        if (packet_in->table_id == 0) {
          pcp.handle_packet_in(Dpid{1}, *packet_in, nullptr);
        }
      }
    }
  });
  pcp.register_switch(Dpid{1}, [&device](const OfMessage& message) {
    device.receive_control(encode(message));
  });

  const auto client_ip = [](int c) { return Ipv4Address(10, 0, 1, static_cast<std::uint8_t>(c + 1)); };
  const auto server_ip = [](int s) { return Ipv4Address(10, 0, 2, static_cast<std::uint8_t>(s + 1)); };

  for (int c = 0; c < clients; ++c) {
    for (int s = 0; s < servers; ++s) {
      PolicyRule rule;
      rule.action = PolicyAction::kAllow;
      rule.source.ip = client_ip(c);
      rule.destination.ip = server_ip(s);
      manager.insert(rule, PdpPriority{10}, "pairs");
    }
  }

  std::uint16_t ephemeral = 49152;
  for (int f = 0; f < flows_per_pair; ++f) {
    for (int c = 0; c < clients; ++c) {
      for (int s = 0; s < servers; ++s) {
        const Packet packet = make_tcp_packet(
            MacAddress::from_u64(0x100 + static_cast<std::uint64_t>(c)),
            MacAddress::from_u64(0x200 + static_cast<std::uint64_t>(s)),
            client_ip(c), server_ip(s), ephemeral, 443);
        device.receive_packet(PortNo{1}, packet.serialize());
        sim.run();
        ++ephemeral;
      }
    }
  }

  Outcome outcome;
  outcome.packet_ins = pcp.stats().packet_ins;
  outcome.table_rules = device.pipeline().table(0).size();
  outcome.fallbacks = pcp.stats().wildcard_fallbacks;
  return outcome;
}

}  // namespace

int main() {
  std::printf(
      "DFI reproduction — ablation: exact-match vs wildcard rule caching\n");

  constexpr int kClients = 20, kServers = 5, kFlowsPerPair = 20;
  const Outcome exact = run(false, kClients, kServers, kFlowsPerPair);
  const Outcome cached = run(true, kClients, kServers, kFlowsPerPair);

  Report report("Rule caching: " + std::to_string(kClients) + " clients x " +
                std::to_string(kServers) + " servers x " +
                std::to_string(kFlowsPerPair) + " flows/pair (2000 flows)");
  report.columns({"Configuration", "Packet-ins", "Table-0 rules", "Safety fallbacks"});
  report.row({"exact-match (paper baseline)", std::to_string(exact.packet_ins),
              std::to_string(exact.table_rules), "-"});
  report.row({"wildcard caching (extension)", std::to_string(cached.packet_ins),
              std::to_string(cached.table_rules), std::to_string(cached.fallbacks)});
  report.note("expected: caching needs one packet-in and one rule per (client, server)");
  report.note("pair; exact-match pays one of each per flow. Decisions are identical");
  report.note("(tests/rule_cache_test.cc verifies the differential property).");
  report.print();
  return 0;
}
