// Failover macro-benchmark (DESIGN.md §6.3).
//
// Two measurements anchor the replicated control plane:
//
//   - Failover drill (sim time, TTFB-style): a warm primary/standby pair
//     exchanges heartbeats on simulator timers; the primary is killed
//     silently (network split, no RST — the worst detection case) and the
//     drill measures kill -> promotion (heartbeat-timeout detection +
//     fence bump) and verifies the first post-promotion FlowMod: the
//     promoted standby re-runs the Table-0 resync and decides a fresh
//     Packet-in, exactly the DfiSystem recovery path. The drill also
//     closes the split-brain loop: healed, the deposed primary's first
//     heartbeat is fence-rejected and it stands down.
//
//   - Steady-state replication overhead (wall time): journaled policy
//     ops/s with no replication, with an in-memory-linked synced standby
//     (ship + ingest + cumulative ack per record), and with the real
//     ReplTransport over loopback TCP through the epoll event loop. The
//     committed floors keep the socket figure tied to PR 9's
//     BENCH_socket_datapath c1 floors (see the baseline comment): a
//     replication record is one small frame on the same datapath.
//
// Every mode asserts correctness in-binary: the standby is byte-identical
// after each throughput run, promotion never fires before the failover
// deadline, at least one FlowMod follows promotion, and the deposed
// primary ends fenced/stood-down.
//
// Flags:
//   --smoke                  bounded run for CI (fewer ops/drills)
//   --check-baseline <path>  compare against committed floors; exit 1 on breach.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bus/message_bus.h"
#include "common/rng.h"
#include "core/health_monitor.h"
#include "core/journal.h"
#include "core/pcp.h"
#include "core/persistence.h"
#include "net/asyncio/conman.h"
#include "net/asyncio/event_loop.h"
#include "net/packet.h"
#include "openflow/messages.h"
#include "replication/repl_transport.h"
#include "replication/replica.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

PolicyRule make_rule(std::uint8_t octet, PolicyAction action) {
  PolicyRule rule;
  rule.action = action;
  rule.properties.ether_type = 0x0800;
  rule.source.ip = Ipv4Address(10, 0, 0, octet);
  rule.source.user = Username{"user" + std::to_string(octet)};
  rule.destination.l4_port = static_cast<std::uint16_t>(1000 + octet);
  return rule;
}

// One replica node: store + journal + state plane + Replica endpoint.
struct Node {
  explicit Node(std::uint64_t seed, HealthMonitor* health = nullptr,
                ReplicaConfig config = {})
      : manager(bus), erm(bus) {
    config.seed = seed;
    journal = std::make_unique<Journal>(store);
    manager.attach_journal(journal.get());
    erm.attach_journal(journal.get());
    replica = std::make_unique<Replica>(config, *journal, manager, erm, health);
  }

  std::string image() const {
    return save_policies(manager) + "=== " + save_bindings(erm);
  }

  InMemoryJournalStore store;
  MessageBus bus;
  PolicyManager manager;
  EntityResolutionManager erm;
  std::unique_ptr<Journal> journal;
  std::unique_ptr<Replica> replica;
};

// Queued in-memory byte link (same shape as the replication tests):
// sends enqueue, pump() delivers FIFO, partition() silently eats bytes.
struct Link {
  Link(Replica& a, Replica& b) : a_(&a), b_(&b) {
    a.set_send([this](const std::string& bytes) { enqueue(1, bytes); });
    b.set_send([this](const std::string& bytes) { enqueue(0, bytes); });
  }

  void enqueue(int dest, const std::string& bytes) {
    if (partitioned) return;
    queue.emplace_back(dest, bytes);
  }

  void partition() {
    partitioned = true;
    queue.clear();
  }
  void heal() { partitioned = false; }

  void pump() {
    while (!queue.empty()) {
      auto [dest, bytes] = std::move(queue.front());
      queue.pop_front();
      Replica* target = dest == 0 ? a_ : b_;
      target->on_bytes(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                       bytes.size());
    }
  }

  Replica* a_;
  Replica* b_;
  std::deque<std::pair<int, std::string>> queue;
  bool partitioned = false;
};

// The steady-state workload: one iteration = insert + revoke = two
// journal records, so state stays bounded while the journal streams.
void workload_op(Node& node, std::size_t i) {
  const auto octet = static_cast<std::uint8_t>(1 + (i % 200));
  const PolicyRuleId id = node.manager.insert(
      make_rule(octet, PolicyAction::kAllow), PdpPriority{10}, "pdp-bench");
  node.manager.revoke(id);
}

// ---------------------------------------------------- replication overhead

struct ThroughputResult {
  double records_per_s = 0.0;
  std::uint64_t records = 0;
};

ThroughputResult baseline_throughput(std::size_t iters) {
  Node solo(101);
  for (std::size_t i = 0; i < 64; ++i) workload_op(solo, i);  // warm
  const std::uint64_t start = now_ns();
  for (std::size_t i = 0; i < iters; ++i) workload_op(solo, i);
  const double elapsed_s = static_cast<double>(now_ns() - start) * 1e-9;
  ThroughputResult result;
  result.records = 2 * iters;
  result.records_per_s = static_cast<double>(result.records) / elapsed_s;
  return result;
}

bool inmem_throughput(std::size_t iters, ThroughputResult* out) {
  Node a(11);
  Node b(22);
  Link link(*a.replica, *b.replica);
  a.replica->become_primary();
  b.replica->become_standby();
  link.pump();
  for (std::size_t i = 0; i < 64; ++i) workload_op(a, i);  // warm
  link.pump();
  const std::uint64_t applied_before = b.replica->stats().records_applied;
  const std::uint64_t start = now_ns();
  for (std::size_t i = 0; i < iters; ++i) {
    workload_op(a, i);
    link.pump();  // ship + standby ingest + cumulative ack, every record
  }
  const double elapsed_s = static_cast<double>(now_ns() - start) * 1e-9;
  const std::uint64_t applied =
      b.replica->stats().records_applied - applied_before;
  if (applied != 2 * iters) {
    std::fprintf(stderr, "FAIL: in-memory standby applied %llu of %llu records\n",
                 static_cast<unsigned long long>(applied),
                 static_cast<unsigned long long>(2 * iters));
    return false;
  }
  if (b.image() != a.image()) {
    std::fprintf(stderr, "FAIL: in-memory standby image diverged\n");
    return false;
  }
  out->records = applied;
  out->records_per_s = static_cast<double>(applied) / elapsed_s;
  return true;
}

bool socket_throughput(std::size_t iters, ThroughputResult* out) {
  net::EventLoop loop;
  net::ConnectionManager conman_a(loop, {});
  net::ConnectionManager conman_b(loop, {});
  Node a(31);
  Node b(32);
  ReplTransport transport_a(loop, conman_a, *a.replica, /*heartbeat_ms=*/50);
  ReplTransport transport_b(loop, conman_b, *b.replica, /*heartbeat_ms=*/50);

  auto bound = transport_a.listen("127.0.0.1", 0);
  if (!bound.ok()) {
    std::fprintf(stderr, "FAIL: listen: %s\n", bound.error().message.c_str());
    return false;
  }
  a.replica->become_primary();
  transport_b.dial("127.0.0.1", bound.value());

  const auto pump_until = [&](auto cond) {
    const std::uint64_t deadline = now_ns() + std::uint64_t{60} * 1000000000ull;
    while (!cond()) {
      if (now_ns() > deadline) {
        std::fprintf(stderr, "FAIL: socket replication stalled\n");
        return false;
      }
      loop.run_once(10);
    }
    return true;
  };
  if (!pump_until([&] { return b.replica->stats().snapshots_installed == 1; }))
    return false;

  for (std::size_t i = 0; i < 64; ++i) workload_op(a, i);  // warm: 128 records
  if (!pump_until([&] { return b.replica->stats().records_applied >= 128; }))
    return false;

  const std::uint64_t applied_before = b.replica->stats().records_applied;
  const std::uint64_t start = now_ns();
  for (std::size_t i = 0; i < iters; ++i) {
    workload_op(a, i);
    loop.run_once(0);  // drain egress + deliver standby ingress
  }
  if (!pump_until([&] {
        return b.replica->stats().records_applied - applied_before >= 2 * iters;
      }))
    return false;
  const double elapsed_s = static_cast<double>(now_ns() - start) * 1e-9;
  if (b.image() != a.image()) {
    std::fprintf(stderr, "FAIL: socket standby image diverged\n");
    return false;
  }
  out->records = 2 * iters;
  out->records_per_s = static_cast<double>(out->records) / elapsed_s;
  return true;
}

// ----------------------------------------------------------- failover drill

struct DrillResult {
  double detect_ms = 0.0;    // sim time: kill -> promotion (fence bumped)
  double promote_us = 0.0;   // wall time of the promote() machinery itself
  std::uint64_t post_promotion_flowmods = 0;
};

bool run_drill(std::uint64_t seed, DrillResult* out) {
  Simulator sim;
  HealthConfig hconfig;  // failover_deadline: 2 s, the committed default
  MessageBus hbus_a;
  MessageBus hbus_b;
  HealthMonitor health_a(sim, hbus_a, hconfig, Rng(seed));
  HealthMonitor health_b(sim, hbus_b, hconfig, Rng(seed ^ 1));
  Node a(seed ^ 0xa, &health_a);
  Node b(seed ^ 0xb, &health_b);
  Link link(*a.replica, *b.replica);

  bool promoted = false;
  SimTime t_promote{};
  double promote_us = 0.0;
  health_a.enable_failover(ReplicaRole::kPrimary, nullptr);
  health_b.enable_failover(ReplicaRole::kStandby, [&] {
    t_promote = sim.now();
    const std::uint64_t start = now_ns();
    b.replica->promote();
    promote_us = static_cast<double>(now_ns() - start) * 1e-3;
    promoted = true;
  });

  a.replica->become_primary();
  b.replica->become_standby();
  link.pump();
  for (std::size_t i = 0; i < 16; ++i) workload_op(a, i);  // warm workload
  link.pump();
  const std::string image_at_kill = a.image();

  // Heartbeats every 100 ms while the primary lives; the standby polls its
  // failover clock every 50 ms until it promotes. Both stop themselves, so
  // sim.run() terminates exactly when the promotion lands.
  bool primary_alive = true;
  SimTime t_kill{};
  std::function<void()> beat = [&] {
    if (!primary_alive) return;
    a.replica->tick_heartbeat();
    link.pump();
    sim.schedule_after(milliseconds(100), beat);
  };
  std::function<void()> poll = [&] {
    if (promoted) return;
    health_b.poll();
    sim.schedule_after(milliseconds(50), poll);
  };
  sim.schedule_after(milliseconds(100), beat);
  sim.schedule_after(milliseconds(50), poll);
  // The kill: a silent split just after a beat — the worst case for the
  // heartbeat-timeout detector (no RST to shortcut via promote_now).
  sim.schedule_after(milliseconds(501), [&] {
    primary_alive = false;
    link.partition();
    t_kill = sim.now();
  });
  sim.run();

  if (!promoted || !b.replica->is_primary()) {
    std::fprintf(stderr, "FAIL: drill %llu: standby never promoted\n",
                 static_cast<unsigned long long>(seed));
    return false;
  }
  out->detect_ms = static_cast<double>(t_promote.us - t_kill.us) * 1e-3;
  out->promote_us = promote_us;
  const double deadline_ms =
      static_cast<double>(hconfig.failover_deadline.us) * 1e-3;
  if (out->detect_ms < deadline_ms) {
    std::fprintf(stderr, "FAIL: drill %llu: promoted %.1f ms after kill, "
                 "before the %.1f ms failover deadline\n",
                 static_cast<unsigned long long>(seed), out->detect_ms,
                 deadline_ms);
    return false;
  }
  if (b.image() != image_at_kill) {
    std::fprintf(stderr, "FAIL: drill %llu: survivor image diverged\n",
                 static_cast<unsigned long long>(seed));
    return false;
  }

  // First post-promotion FlowMod: the promoted plane re-runs the Table-0
  // resync (cookie-masked clears) and decides a fresh Packet-in — the
  // DfiSystem path out of the promotion's degraded window.
  PcpConfig pcp_config;
  pcp_config.zero_latency = true;
  PolicyCompilationPoint pcp(sim, b.bus, b.erm, b.manager, pcp_config,
                             Rng(seed ^ 0x7ab1));
  std::uint64_t flowmods = 0;
  pcp.register_switch(Dpid{1}, [&](const OfMessage&) { ++flowmods; });
  pcp.resync_all();
  PacketInMsg msg;
  msg.table_id = 0;
  msg.in_port = PortNo{1};
  msg.data = make_tcp_packet(MacAddress::from_u64(0xa001),
                             MacAddress::from_u64(0xa002),
                             Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2),
                             1500, 1001)
                 .serialize();
  (void)pcp.decide(Dpid{1}, msg);
  if (flowmods == 0) {
    std::fprintf(stderr, "FAIL: drill %llu: no FlowMod after promotion\n",
                 static_cast<unsigned long long>(seed));
    return false;
  }
  out->post_promotion_flowmods = flowmods;

  // Close the split-brain loop: healed, the deposed primary's heartbeat
  // carries the stale fence, is rejected, and it stands down.
  link.heal();
  a.replica->tick_heartbeat();
  link.pump();
  if (a.replica->is_primary()) {
    std::fprintf(stderr, "FAIL: drill %llu: deposed primary did not stand down\n",
                 static_cast<unsigned long long>(seed));
    return false;
  }
  if (b.journal->fence_epoch() == 0) {
    std::fprintf(stderr, "FAIL: drill %llu: promotion did not bump the fence\n",
                 static_cast<unsigned long long>(seed));
    return false;
  }
  return true;
}

// ---------------------------------------------------------------- reporting

struct BenchResults {
  ThroughputResult baseline;
  ThroughputResult inmem;
  ThroughputResult socket;
  double inmem_ratio = 0.0;
  double socket_ratio = 0.0;
  double detect_ms_mean = 0.0;
  double detect_ms_max = 0.0;
  double promote_us_mean = 0.0;
  std::uint64_t drills = 0;
};

void write_json(const char* path, const BenchResults& r) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"baseline_records_per_s\": " << r.baseline.records_per_s << ",\n"
      << "  \"inmem_records_per_s\": " << r.inmem.records_per_s << ",\n"
      << "  \"socket_records_per_s\": " << r.socket.records_per_s << ",\n"
      << "  \"inmem_overhead_ratio\": " << r.inmem_ratio << ",\n"
      << "  \"socket_overhead_ratio\": " << r.socket_ratio << ",\n"
      << "  \"detect_ms_mean\": " << r.detect_ms_mean << ",\n"
      << "  \"detect_ms_max\": " << r.detect_ms_max << ",\n"
      << "  \"promote_us_mean\": " << r.promote_us_mean << ",\n"
      << "  \"drills\": " << r.drills << "\n"
      << "}\n";
  std::printf("wrote %s\n", path);
}

bool json_number(const std::string& json, const std::string& key, double* out) {
  const auto key_pos = json.find("\"" + key + "\": ");
  if (key_pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + key_pos + key.size() + 4, nullptr);
  return true;
}

int check_baseline(const char* path, const BenchResults& r) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot read baseline %s\n", path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  int failures = 0;
  const auto gate_min = [&](const char* key, double measured) {
    double floor = 0.0;
    if (!json_number(json, key, &floor)) return;
    if (measured < floor) {
      std::fprintf(stderr, "FAIL: %s %.3f below floor %.3f\n", key, measured,
                   floor);
      ++failures;
    } else {
      std::printf("baseline ok: %s %.3f (floor %.3f)\n", key, measured, floor);
    }
  };
  const auto gate_max = [&](const char* key, double measured) {
    double ceiling = 0.0;
    if (!json_number(json, key, &ceiling)) return;
    if (measured > ceiling) {
      std::fprintf(stderr, "FAIL: %s %.3f above ceiling %.3f\n", key, measured,
                   ceiling);
      ++failures;
    } else {
      std::printf("baseline ok: %s %.3f (ceiling %.3f)\n", key, measured,
                  ceiling);
    }
  };
  gate_min("min_baseline_records_per_s", r.baseline.records_per_s);
  gate_min("min_inmem_records_per_s", r.inmem.records_per_s);
  gate_min("min_socket_records_per_s", r.socket.records_per_s);
  gate_min("min_inmem_overhead_ratio", r.inmem_ratio);
  gate_min("min_socket_overhead_ratio", r.socket_ratio);
  gate_max("max_detect_ms", r.detect_ms_max);
  gate_max("max_promote_us", r.promote_us_mean);
  return failures == 0 ? 0 : 1;
}

int run(bool smoke, const char* baseline_path) {
  const std::size_t iters = smoke ? 4000 : 40000;
  const std::size_t drills = smoke ? 3 : 10;

  BenchResults r;
  r.baseline = baseline_throughput(iters);
  std::printf("journal only         %12.0f records/s\n",
              r.baseline.records_per_s);
  if (!inmem_throughput(iters, &r.inmem)) return 1;
  std::printf("replicated (in-mem)  %12.0f records/s\n", r.inmem.records_per_s);
  if (!socket_throughput(iters, &r.socket)) return 1;
  std::printf("replicated (socket)  %12.0f records/s\n",
              r.socket.records_per_s);
  r.inmem_ratio = r.inmem.records_per_s / r.baseline.records_per_s;
  r.socket_ratio = r.socket.records_per_s / r.baseline.records_per_s;
  std::printf("overhead ratios      in-mem %.3f   socket %.3f\n", r.inmem_ratio,
              r.socket_ratio);

  double detect_sum = 0.0;
  double promote_sum = 0.0;
  for (std::size_t i = 0; i < drills; ++i) {
    DrillResult drill;
    if (!run_drill(0xfa11 + i * 7919, &drill)) return 1;
    detect_sum += drill.detect_ms;
    promote_sum += drill.promote_us;
    r.detect_ms_max = std::max(r.detect_ms_max, drill.detect_ms);
    std::printf("drill %zu: kill -> promotion %.1f ms (sim), promote() %.1f us "
                "(wall), %llu post-promotion FlowMods\n",
                i, drill.detect_ms, drill.promote_us,
                static_cast<unsigned long long>(drill.post_promotion_flowmods));
  }
  r.drills = drills;
  r.detect_ms_mean = detect_sum / static_cast<double>(drills);
  r.promote_us_mean = promote_sum / static_cast<double>(drills);
  std::printf("failover detection   %.1f ms mean, %.1f ms max (deadline 2000 ms)\n",
              r.detect_ms_mean, r.detect_ms_max);

  write_json("BENCH_failover.json", r);
  if (baseline_path != nullptr) return check_baseline(baseline_path, r);
  return 0;
}

}  // namespace
}  // namespace dfi

int main(int argc, char** argv) {
  bool smoke = false;
  const char* baseline = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check-baseline <json>]\n",
                   argv[0]);
      return 2;
    }
  }
  return dfi::run(smoke, baseline);
}
