// Reproduces paper Table I: DFI performance microbenchmarks.
//
//   Metric                      Paper (mean ± sd)
//   Latency (under no load)     5.73 ms ± 3.39 ms
//   Throughput (at saturation)  1350 flows/sec ± 39
//
// Method (paper Section V-A): a cbench-style emulated switch blasts
// Packet-in events with randomized headers at the DFI control plane;
// latency mode measures serial request/response, throughput mode drives
// open-loop arrivals until completions stop tracking the offered rate.
#include <cstdio>

#include "harness/cbench.h"
#include "harness/report.h"

using namespace dfi;

int main() {
  std::printf("DFI reproduction — Table I: performance microbenchmarks\n");

  // Latency mode.
  CbenchConfig latency_config;
  CbenchEmulator latency_bench(latency_config);
  const SampleStats latency = latency_bench.run_latency_mode(2000);

  // Throughput mode: ramp the offered rate; repeat for a std-dev estimate.
  SampleStats saturation;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    CbenchConfig config;
    config.seed = 0xcbe9c4 + seed;
    CbenchEmulator bench(config);
    saturation.add(bench.find_saturation());
  }

  Report report("Table I: DFI Performance Microbenchmarks");
  report.columns({"Metric", "Paper", "Measured"});
  report.row({"Latency under no load (ms)", "5.73 +/- 3.39",
              Report::fmt(latency.mean()) + " +/- " + Report::fmt(latency.stddev())});
  report.row({"Throughput at saturation (flows/sec)", "1350 +/- 39",
              Report::fmt(saturation.mean(), 0) + " +/- " +
                  Report::fmt(saturation.stddev(), 0)});
  report.note("latency = one-way DFI traversal (packet-in to compiled rule), idle system");
  report.note("throughput = completed flow installs/sec under open-loop overload");
  report.print();
  return 0;
}
