// Ablation: worm propagation vectors (paper Sections I and V-B).
//
// The paper stresses that NotPetya's power came from *combining*
// vulnerability exploitation with credential theft — the latter succeeds
// "even if that victim is not legitimately logged onto any devices". This
// ablation runs the 09:00 S-RBAC scenario with each vector disabled:
//   * exploit-only (a WannaCry-style strain) can take the 10 unpatched
//     hosts and the servers, but patched machines are safe;
//   * credential-only (a pure lateral-movement tool) spreads inside
//     enclaves via cached admin credentials but cannot cross into servers
//     (which cache nothing and grant no one local admin), so it stays in
//     the foothold's enclave under RBAC;
//   * both vectors together take the whole network.
#include <cstdio>

#include "harness/report.h"
#include "harness/worm_experiment.h"

using namespace dfi;

int main() {
  std::printf("DFI reproduction — ablation: worm propagation vectors (S-RBAC, 09:00)\n");

  Report report("Vector ablation: infected endpoints of 92 after 90 min");
  report.columns({"Vectors", "Infected", "Via exploit", "Via credentials"});

  const struct {
    const char* name;
    bool exploit;
    bool credential;
  } variants[] = {
      {"exploit + credentials (NotPetya)", true, true},
      {"exploit only (WannaCry-style)", true, false},
      {"credentials only (lateral tool)", false, true},
  };

  for (const auto& variant : variants) {
    WormExperimentConfig config;
    config.condition = PolicyCondition::kSRbac;
    config.foothold_hour = 9;
    config.horizon_after_foothold = hours(1.5);
    config.worm.exploit_vector = variant.exploit;
    config.worm.credential_vector = variant.credential;
    const WormExperimentResult result = run_worm_experiment(config);
    report.row({variant.name, std::to_string(result.total_infected),
                std::to_string(result.stats.exploit_successes),
                std::to_string(result.stats.credential_successes)});
  }
  report.note("expected: both vectors -> full infection; exploit-only capped at the");
  report.note("16 vulnerable machines + credential pickups it cannot make; credential-");
  report.note("only confined to the foothold's enclave (servers grant no local admin)");
  report.print();
  return 0;
}
