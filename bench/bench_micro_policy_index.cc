// Policy-engine micro-benchmark: linear scan vs posting-list index, and the
// PCP decision-cache hit rate under a Fig. 4-style repeated-flow workload.
//
// Two outputs:
//   * google-benchmark timings (BM_*) for interactive use;
//   * BENCH_policy_index.json — machine-readable scan-vs-index latency at
//     10/100/1k/10k rules plus the decision-cache counters, written before
//     the google-benchmark run so CI can consume it cheaply.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <random>
#include <vector>

#include "bus/message_bus.h"
#include "common/rng.h"
#include "core/pcp.h"
#include "core/policy_manager.h"
#include "sim/simulator.h"

namespace dfi {
namespace {

// Identifier pools scale with the rule count so posting lists stay shallow
// (an enterprise policy names many distinct endpoints, not one): the index
// win comes from pruning, not from a degenerate single-bucket layout.
struct Pools {
  std::vector<Ipv4Address> ips;
  std::vector<Username> users;

  explicit Pools(std::size_t rule_count) {
    const std::size_t ip_count = std::max<std::size_t>(8, rule_count / 8);
    const std::size_t user_count = std::max<std::size_t>(4, rule_count / 16);
    ips.reserve(ip_count);
    for (std::size_t i = 0; i < ip_count; ++i) {
      ips.push_back(Ipv4Address(static_cast<std::uint32_t>(0x0a000000 + i + 1)));
    }
    users.reserve(user_count);
    for (std::size_t i = 0; i < user_count; ++i) {
      users.push_back(Username{"user" + std::to_string(i)});
    }
  }
};

void fill_rules(PolicyManager& manager, std::size_t count, const Pools& pools,
                std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> pick_ip(0, pools.ips.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_user(0, pools.users.size() - 1);
  std::uniform_int_distribution<int> pick_priority(1, 4);
  for (std::size_t i = 0; i < count; ++i) {
    PolicyRule rule;
    rule.action = (i % 3 == 0) ? PolicyAction::kDeny : PolicyAction::kAllow;
    if (i % 20 == 0) {
      rule.destination.l4_port = 445;  // wildcard-list rule (no pivot field)
    } else if (i % 2 == 0) {
      rule.source.ip = pools.ips[pick_ip(rng)];
      if (i % 4 == 0) rule.destination.l4_port = 80;
    } else {
      rule.source.user = pools.users[pick_user(rng)];
    }
    manager.insert(rule,
                   PdpPriority{static_cast<std::uint32_t>(pick_priority(rng) * 10)},
                   "bench");
  }
}

std::vector<FlowView> make_flows(std::size_t count, const Pools& pools,
                                 std::mt19937& rng) {
  std::uniform_int_distribution<std::size_t> pick_ip(0, pools.ips.size() - 1);
  std::uniform_int_distribution<std::size_t> pick_user(0, pools.users.size() - 1);
  std::vector<FlowView> flows;
  flows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FlowView flow;
    flow.ether_type = 0x0800;
    flow.ip_proto = 6;
    flow.src.ip = pools.ips[pick_ip(rng)];
    flow.src.mac = MacAddress::from_u64(i + 1);
    flow.src.usernames = {pools.users[pick_user(rng)]};
    flow.dst.ip = pools.ips[pick_ip(rng)];
    flow.dst.l4_port = (i % 2 == 0) ? 445 : 80;
    flows.push_back(std::move(flow));
  }
  return flows;
}

// ---------------------------------------------------- google-benchmark

void BM_PolicyQueryLinear(benchmark::State& state) {
  MessageBus bus;
  PolicyManager manager(bus);
  std::mt19937 rng(1);
  const Pools pools(static_cast<std::size_t>(state.range(0)));
  fill_rules(manager, static_cast<std::size_t>(state.range(0)), pools, rng);
  const auto flows = make_flows(256, pools, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.query_linear(flows[i++ % flows.size()]));
  }
}
BENCHMARK(BM_PolicyQueryLinear)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_PolicyQueryIndexed(benchmark::State& state) {
  MessageBus bus;
  PolicyManager manager(bus);
  std::mt19937 rng(1);
  const Pools pools(static_cast<std::size_t>(state.range(0)));
  fill_rules(manager, static_cast<std::size_t>(state.range(0)), pools, rng);
  const auto flows = make_flows(256, pools, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.query(flows[i++ % flows.size()]));
  }
}
BENCHMARK(BM_PolicyQueryIndexed)->Arg(10)->Arg(100)->Arg(1000)->Arg(10000);

void BM_DecisionCacheHit(benchmark::State& state) {
  DecisionCache<int> cache(1024);
  const Packet packet =
      make_tcp_packet(MacAddress::from_u64(0xa), MacAddress::from_u64(0xb),
                      Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 1000, 445);
  const FlowKey key = FlowKey::from_packet(Dpid{1}, PortNo{5}, packet);
  cache.store(key, 1, 1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup(key, 1, 1));
  }
}
BENCHMARK(BM_DecisionCacheHit);

// ------------------------------------------------- JSON report (manual)

struct ScanPoint {
  std::size_t rules = 0;
  double linear_ns = 0.0;
  double indexed_ns = 0.0;
  double speedup = 0.0;
};

template <typename QueryFn>
double measure_ns_per_query(const std::vector<FlowView>& flows, QueryFn query) {
  using Clock = std::chrono::steady_clock;
  // Warm up once, then repeat whole passes until enough wall time has
  // accumulated for a stable per-query figure.
  for (const FlowView& flow : flows) benchmark::DoNotOptimize(query(flow));
  const auto start = Clock::now();
  std::size_t queries = 0;
  double elapsed_ns = 0.0;
  do {
    for (const FlowView& flow : flows) benchmark::DoNotOptimize(query(flow));
    queries += flows.size();
    elapsed_ns = std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  } while (elapsed_ns < 5e7 && queries < 5'000'000);
  return elapsed_ns / static_cast<double>(queries);
}

ScanPoint measure_scan_point(std::size_t rule_count) {
  MessageBus bus;
  PolicyManager manager(bus);
  std::mt19937 rng(42);
  const Pools pools(rule_count);
  fill_rules(manager, rule_count, pools, rng);
  const auto flows = make_flows(512, pools, rng);
  ScanPoint point;
  point.rules = rule_count;
  point.linear_ns = measure_ns_per_query(
      flows, [&](const FlowView& flow) { return manager.query_linear(flow); });
  point.indexed_ns = measure_ns_per_query(
      flows, [&](const FlowView& flow) { return manager.query(flow); });
  point.speedup = point.indexed_ns > 0 ? point.linear_ns / point.indexed_ns : 0.0;
  return point;
}

// Fig. 4-style workload through the full PCP decision path: a fixed host
// population with warmed identity bindings, traffic drawn from a bounded
// set of flow tuples (flows repeat, as TTFB measurement traffic does), and
// periodic policy churn that invalidates the cache through the epoch.
DecisionCacheStats run_cache_workload(std::uint64_t* packet_ins) {
  constexpr std::size_t kHosts = 64;
  constexpr std::size_t kTuples = 512;
  constexpr std::size_t kPacketIns = 40'000;
  constexpr std::size_t kChurnEvery = 8'000;

  Simulator sim;
  MessageBus bus;
  EntityResolutionManager erm(bus);
  PolicyManager manager(bus);
  PcpConfig config;
  config.zero_latency = true;
  PolicyCompilationPoint pcp(sim, bus, erm, manager, config, Rng(7));
  pcp.register_switch(Dpid{1}, [](const OfMessage&) {});

  std::vector<Ipv4Address> ips;
  for (std::size_t i = 0; i < kHosts; ++i) {
    const auto ip = Ipv4Address(static_cast<std::uint32_t>(0x0a000100 + i));
    ips.push_back(ip);
    BindingEvent host_ip;
    host_ip.kind = BindingKind::kHostIp;
    host_ip.host = Hostname{"host" + std::to_string(i)};
    host_ip.ip = ip;
    erm.apply(host_ip);
    BindingEvent user_host;
    user_host.kind = BindingKind::kUserHost;
    user_host.user = Username{"user" + std::to_string(i % 16)};
    user_host.host = Hostname{"host" + std::to_string(i)};
    erm.apply(user_host);
  }
  for (std::size_t u = 0; u < 16; u += 2) {
    PolicyRule allow;
    allow.action = PolicyAction::kAllow;
    allow.source.user = Username{"user" + std::to_string(u)};
    manager.insert(allow, PdpPriority{10}, "bench");
  }

  // The bounded tuple set, pre-serialized once.
  std::mt19937 rng(9);
  std::uniform_int_distribution<std::size_t> pick_host(0, kHosts - 1);
  std::vector<PacketInMsg> tuples;
  tuples.reserve(kTuples);
  for (std::size_t i = 0; i < kTuples; ++i) {
    const std::size_t src = pick_host(rng);
    const std::size_t dst = (src + 1 + i % (kHosts - 1)) % kHosts;
    const Packet packet = make_tcp_packet(
        MacAddress::from_u64(src + 1), MacAddress::from_u64(dst + 1), ips[src],
        ips[dst], static_cast<std::uint16_t>(40000 + i % 8), 445);
    PacketInMsg msg;
    msg.in_port = PortNo{static_cast<std::uint32_t>(src % 8 + 1)};
    msg.table_id = 0;
    msg.data = packet.serialize();
    tuples.push_back(std::move(msg));
  }

  std::uniform_int_distribution<std::size_t> pick_tuple(0, kTuples - 1);
  for (std::size_t i = 0; i < kPacketIns; ++i) {
    if (i > 0 && i % kChurnEvery == 0) {
      // Policy churn: one insert+revoke pair, bumping the policy epoch.
      PolicyRule deny;
      deny.action = PolicyAction::kDeny;
      deny.destination.l4_port = 23;
      const PolicyRuleId id = manager.insert(deny, PdpPriority{20}, "churn");
      manager.revoke(id);
    }
    pcp.decide(Dpid{1}, tuples[pick_tuple(rng)]);
  }
  *packet_ins = kPacketIns;
  return pcp.decision_cache_stats();
}

void write_json_report(const char* path) {
  std::vector<ScanPoint> points;
  for (const std::size_t rules : {10u, 100u, 1000u, 10000u}) {
    points.push_back(measure_scan_point(rules));
    std::printf("rules=%5zu  linear=%10.1f ns  indexed=%8.1f ns  speedup=%6.1fx\n",
                points.back().rules, points.back().linear_ns,
                points.back().indexed_ns, points.back().speedup);
  }
  std::uint64_t packet_ins = 0;
  const DecisionCacheStats cache = run_cache_workload(&packet_ins);
  std::printf("decision cache: %llu packet-ins, %llu hits, hit rate %.3f\n",
              static_cast<unsigned long long>(packet_ins),
              static_cast<unsigned long long>(cache.hits), cache.hit_rate());

  std::ofstream out(path);
  out << "{\n  \"scan_vs_index\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    out << "    {\"rules\": " << points[i].rules
        << ", \"linear_ns\": " << points[i].linear_ns
        << ", \"indexed_ns\": " << points[i].indexed_ns
        << ", \"speedup\": " << points[i].speedup << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"decision_cache\": {\n"
      << "    \"packet_ins\": " << packet_ins << ",\n"
      << "    \"hits\": " << cache.hits << ",\n"
      << "    \"misses\": " << cache.misses << ",\n"
      << "    \"stale_policy\": " << cache.stale_policy << ",\n"
      << "    \"stale_binding\": " << cache.stale_binding << ",\n"
      << "    \"evictions\": " << cache.evictions << ",\n"
      << "    \"hit_rate\": " << cache.hit_rate() << "\n  }\n}\n";
  std::printf("wrote %s\n", path);
}

}  // namespace
}  // namespace dfi

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  dfi::write_json_report("BENCH_policy_index.json");
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
