// Ablation: decision-time (late) vs insert-time (eager) identifier binding
// (paper Section III-B, Entity Resolution Manager).
//
// DFI maps the low-level identifiers in each packet *up* to high-level
// identifiers at decision time. The alternative — compiling policies down
// to IP-level rules when they are inserted — breaks in two ways the paper
// calls out:
//   1. correctness: the compiled rule goes stale the moment a binding
//      changes (DHCP churn, log-on/log-off), until a recompile runs;
//   2. coverage: a policy naming a user who is logged off compiles to
//      nothing at insert time.
// Eager binding can chase correctness by recompiling every affected policy
// on every binding change; we count that work.
//
// Scenario: U users with one Allow policy each; K binding-churn events
// (user moves to a new host/IP). After each churn, a flow from the user's
// *current* IP is evaluated by both engines.
#include <cstdio>
#include <map>

#include "bus/message_bus.h"
#include "common/rng.h"
#include "core/entity_resolution.h"
#include "core/policy_manager.h"
#include "harness/report.h"

using namespace dfi;

namespace {

struct EagerEngine {
  // Insert-time compilation: policy (user -> allow) becomes an IP set.
  std::map<Username, std::vector<Ipv4Address>> compiled;
  std::uint64_t recompiles = 0;

  void compile(const Username& user, const EntityResolutionManager& erm) {
    std::vector<Ipv4Address> ips;
    for (const auto& host : erm.hosts_of_user(user)) {
      for (const auto& ip : erm.ips_of_host(host)) ips.push_back(ip);
    }
    compiled[user] = std::move(ips);
    ++recompiles;
  }

  bool allows(const Username& user, Ipv4Address src) const {
    const auto it = compiled.find(user);
    if (it == compiled.end()) return false;
    for (const auto& ip : it->second) {
      if (ip == src) return true;
    }
    return false;
  }
};

}  // namespace

int main() {
  std::printf(
      "DFI reproduction — ablation: decision-time vs insert-time binding\n");

  constexpr int kUsers = 50;
  constexpr int kChurnEvents = 2000;
  Rng rng(7);

  MessageBus bus;
  EntityResolutionManager erm(bus);
  PolicyManager manager(bus);

  // Late engine: policies over usernames, inserted once, never recompiled.
  for (int u = 0; u < kUsers; ++u) {
    PolicyRule rule;
    rule.action = PolicyAction::kAllow;
    rule.source.user = Username{"user-" + std::to_string(u)};
    manager.insert(rule, PdpPriority{10}, "late");
  }

  // Eager engines: one recompiles on churn, one does not.
  EagerEngine eager_stale, eager_recompiled;

  // Initial bindings: user-u on host-u with ip 10.0.(u/250).(u%250+1).
  std::map<int, Ipv4Address> current_ip;
  const auto bind_user = [&](int u, Ipv4Address ip) {
    const Username user{"user-" + std::to_string(u)};
    const Hostname host{"host-" + std::to_string(u)};
    if (current_ip.count(u) != 0) {
      BindingEvent stale_ip;
      stale_ip.kind = BindingKind::kHostIp;
      stale_ip.host = host;
      stale_ip.ip = current_ip[u];
      stale_ip.retracted = true;
      erm.apply(stale_ip);
    }
    BindingEvent host_ip;
    host_ip.kind = BindingKind::kHostIp;
    host_ip.host = host;
    host_ip.ip = ip;
    erm.apply(host_ip);
    BindingEvent user_host;
    user_host.kind = BindingKind::kUserHost;
    user_host.user = user;
    user_host.host = host;
    erm.apply(user_host);
    current_ip[u] = ip;
  };

  std::uint32_t next_ip = Ipv4Address(10, 0, 0, 1).value();
  for (int u = 0; u < kUsers; ++u) bind_user(u, Ipv4Address(next_ip++));
  for (int u = 0; u < kUsers; ++u) {
    eager_stale.compile(Username{"user-" + std::to_string(u)}, erm);
    eager_recompiled.compile(Username{"user-" + std::to_string(u)}, erm);
  }

  std::uint64_t late_wrong = 0, stale_wrong = 0, recompiled_wrong = 0;
  std::uint64_t late_queries = 0;
  for (int event = 0; event < kChurnEvents; ++event) {
    // A random user's machine gets a new DHCP lease (binding churn).
    const int u = static_cast<int>(rng.uniform_int(0, kUsers - 1));
    bind_user(u, Ipv4Address(next_ip++));
    // The recompiling engine must recompile every policy naming an entity
    // whose binding changed.
    eager_recompiled.compile(Username{"user-" + std::to_string(u)}, erm);

    // Evaluate a packet from the user's current address with all engines.
    const Username user{"user-" + std::to_string(u)};
    FlowView flow;
    flow.ether_type = 0x0800;
    flow.src.ip = current_ip[u];
    flow.src = erm.enrich(flow.src);
    ++late_queries;
    const bool late_ok = manager.query(flow).action == PolicyAction::kAllow;
    if (!late_ok) ++late_wrong;
    if (!eager_stale.allows(user, current_ip[u])) ++stale_wrong;
    if (!eager_recompiled.allows(user, current_ip[u])) ++recompiled_wrong;
  }

  Report report("Binding-time ablation: " + std::to_string(kUsers) + " user policies, " +
                std::to_string(kChurnEvents) + " binding-churn events");
  report.columns({"Engine", "Wrong decisions", "Recompiles", "Per-decision work"});
  report.row({"late binding (DFI)", std::to_string(late_wrong), "0",
              "1 enrich + 1 policy query"});
  report.row({"eager, no recompile", std::to_string(stale_wrong),
              std::to_string(kUsers), "1 set lookup"});
  report.row({"eager + recompile-on-churn", std::to_string(recompiled_wrong),
              std::to_string(eager_recompiled.recompiles),
              "1 set lookup (+recompile per churn)"});
  report.note("late binding is always correct with zero recompilation; eager binding");
  report.note("is wrong after every churn unless it recompiles on every binding event");
  report.print();
  return 0;
}
