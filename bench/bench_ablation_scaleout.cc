// Ablation: DFI control-plane scale-out (paper Sections V-A and VII:
// "Scaling up could be achieved using multiple DFI Proxy and PCP
// instances" / "running some control-plane components in parallel").
//
// PR 2 turned that deployment advice into a mechanism: the PcpShardPool
// partitions Packet-ins by canonical-flow-tuple hash over N shards, in two
// backends. PR 6 added the batched lock-free datapath: SPSC ingress and
// completion rings per shard, batch submission with one snapshot capture
// per burst, and in-order effect application on the control thread. This
// bench sweeps all of it:
//
//  * "simulated" — the cbench surrogate measures saturation throughput and
//    no-load latency in simulated time (N=1 is the paper's calibrated
//    single PCP; Table I);
//  * "threads" — std::thread workers blocking for their sampled Table II
//    service time (the production PCP blocks on IPC to the ERM / Policy
//    Manager), submitted per packet: throughput scales with in-flight
//    decisions, exactly as before the batched datapath landed;
//  * "threads_batch" — the pure-CPU decision datapath (zero_latency): shard
//    count x batch size, submitted through handle_packet_in_batch. This is
//    the section that measures the ring + batching machinery itself —
//    submission, decide, completion drain, in-order apply — with no
//    blocking to hide overhead, and the section the committed baseline
//    gates.
//
// Emits BENCH_scaleout.json. Flags (the PR 4 gate pattern):
//   --smoke                  bounded run for CI: threads_batch sweep only
//   --check-baseline <path>  compare threads_batch throughput against the
//                            committed floors; exits 1 on a >10% shortfall.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pcp.h"
#include "harness/cbench.h"
#include "harness/report.h"
#include "sim/stats.h"

namespace dfi {
namespace {

constexpr std::size_t kShardSweep[] = {1, 2, 4, 8};
constexpr std::size_t kBatchSweep[] = {1, 16, 64};
constexpr std::size_t kSmokeShardSweep[] = {1, 4};
constexpr std::size_t kSmokeBatchSweep[] = {1, 64};

struct Point {
  std::size_t shards = 0;
  double throughput_fps = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  std::vector<double> shard_hit_rates;
};

struct BatchPoint {
  std::string name;  // "s<shards>_b<batch>", the baseline key
  std::size_t shards = 0;
  std::size_t batch = 0;
  double throughput_fps = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
};

// ------------------------------------------------- simulated backend (DES)

Point run_simulated_point(std::size_t shards) {
  CbenchConfig config;
  config.dfi.pcp.shards = shards;
  config.dfi.pcp.workers = 7;
  config.dfi.pcp.queue_capacity = 96;
  config.seed = 0x5ca1e + shards;
  CbenchEmulator bench(config);

  Point point;
  point.shards = shards;
  const SampleStats latency = bench.run_latency_mode(300);
  point.latency_p50_ms = latency.percentile(50.0);
  point.latency_p99_ms = latency.percentile(99.0);
  point.throughput_fps = bench.find_saturation(200.0, 200.0, 14000.0, seconds(10.0));
  for (std::size_t s = 0; s < bench.dfi().pcp().shard_count(); ++s) {
    point.shard_hit_rates.push_back(bench.dfi().pcp().decision_cache_stats(s).hit_rate());
  }
  return point;
}

// -------------------------------------------------------- shared workload

// Fig. 4-style traffic: a fixed host population with flows drawn from a
// bounded tuple set, so they repeat (per-shard decision caches see hits)
// and hash across shards and ports.
std::vector<PacketInMsg> make_tuples(std::size_t count) {
  constexpr std::size_t kHosts = 64;
  std::vector<PacketInMsg> tuples;
  tuples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = i % kHosts;
    const std::size_t dst = (i * 7 + 1) % kHosts;
    const Packet packet = make_tcp_packet(
        MacAddress::from_u64(src + 1), MacAddress::from_u64(dst + 1),
        Ipv4Address(static_cast<std::uint32_t>(0x0a000100 + src)),
        Ipv4Address(static_cast<std::uint32_t>(0x0a000100 + dst)),
        static_cast<std::uint16_t>(40000 + i % 16), 445);
    PacketInMsg msg;
    msg.in_port = PortNo{static_cast<std::uint32_t>(src % 8 + 1)};
    msg.table_id = 0;
    msg.data = packet.serialize();
    tuples.push_back(std::move(msg));
  }
  return tuples;
}

// ------------------------------------------- threaded backend (wall clock)

// Table II blocking workload, per-packet submission: unchanged from PR 2 so
// the section stays comparable across this bench's history.
Point run_threaded_point(std::size_t shards) {
  constexpr std::size_t kTuples = 256;
  constexpr std::size_t kPackets = 400;

  Simulator sim;
  MessageBus bus;
  EntityResolutionManager erm(bus);
  PolicyManager manager(bus);
  PcpConfig config;
  config.backend = PcpBackend::kThreads;
  config.shards = shards;
  config.queue_capacity = 64;
  PolicyCompilationPoint pcp(sim, bus, erm, manager, config, Rng(11));
  pcp.register_switch(Dpid{1}, [](const OfMessage&) {});

  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  manager.insert(allow, PdpPriority{10}, "bench");

  const std::vector<PacketInMsg> tuples = make_tuples(kTuples);

  using Clock = std::chrono::steady_clock;
  std::vector<Clock::time_point> submitted(kPackets);
  SampleStats sojourn_ms;

  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < kPackets; ++i) {
    submitted[i] = Clock::now();
    const auto done = [&sojourn_ms, &submitted, i](const PcpDecision&) {
      sojourn_ms.add(std::chrono::duration<double, std::milli>(
                         Clock::now() - submitted[i])
                         .count());
    };
    // Open loop with a bounded shard queue: on rejection, release finished
    // decisions and retry. Workers are blocked in service waits, so the
    // retry loop naps instead of spinning.
    while (!pcp.handle_packet_in(Dpid{1}, tuples[i % kTuples], done)) {
      if (pcp.poll_completions() == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    pcp.poll_completions();
  }
  pcp.wait_idle();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  Point point;
  point.shards = shards;
  point.throughput_fps = static_cast<double>(kPackets) / elapsed_s;
  point.latency_p50_ms = sojourn_ms.percentile(50.0);
  point.latency_p99_ms = sojourn_ms.percentile(99.0);
  for (std::size_t s = 0; s < pcp.shard_count(); ++s) {
    point.shard_hit_rates.push_back(pcp.decision_cache_stats(s).hit_rate());
  }
  return point;
}

// --------------------------------------- batched datapath (pure CPU cost)

// The machinery measurement: zero_latency strips the modeled Table II
// blocking, so what remains is exactly the cost the batched datapath is
// built to shrink — per-decision submission, ring transfer, snapshot
// acquisition, decide, completion drain and in-order apply. Decisions/s
// here is end to end: a packet counts only once its effects have applied
// on the control thread.
BatchPoint run_threaded_batch_point(std::size_t shards, std::size_t batch,
                                    std::size_t packets) {
  constexpr std::size_t kTuples = 256;

  Simulator sim;
  MessageBus bus;
  EntityResolutionManager erm(bus);
  PolicyManager manager(bus);
  PcpConfig config;
  config.backend = PcpBackend::kThreads;
  config.shards = shards;
  config.queue_capacity = 512;
  config.zero_latency = true;
  PolicyCompilationPoint pcp(sim, bus, erm, manager, config, Rng(11));
  pcp.register_switch(Dpid{1}, [](const OfMessage&) {});

  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  manager.insert(allow, PdpPriority{10}, "bench");

  const std::vector<PacketInMsg> tuples = make_tuples(kTuples);

  using Clock = std::chrono::steady_clock;
  SampleStats sojourn_ms;
  std::vector<PolicyCompilationPoint::BatchItem> items;
  std::size_t sent = 0;
  std::size_t next_tuple = 0;

  const Clock::time_point start = Clock::now();
  while (sent < packets) {
    const std::size_t n = std::min(batch, packets - sent);
    items.clear();
    items.resize(n);
    const Clock::time_point burst_at = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      items[i].dpid = Dpid{1};
      items[i].msg = tuples[next_tuple++ % kTuples];
      items[i].done = [&sojourn_ms, burst_at](const PcpDecision&) {
        sojourn_ms.add(std::chrono::duration<double, std::milli>(Clock::now() -
                                                                 burst_at)
                           .count());
      };
    }
    const std::size_t accepted = pcp.handle_packet_in_batch(items);
    sent += accepted;
    // Open loop under backpressure: a rejected item's message and callback
    // were consumed with the attempt (exactly like per-packet submission),
    // so the next burst regenerates instead of resubmitting; drain
    // completions to free ring space either way.
    if (pcp.poll_completions() == 0 && accepted < n) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  pcp.wait_idle();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  BatchPoint point;
  point.name = "s" + std::to_string(shards) + "_b" + std::to_string(batch);
  point.shards = shards;
  point.batch = batch;
  point.throughput_fps = static_cast<double>(packets) / elapsed_s;
  point.latency_p50_ms = sojourn_ms.percentile(50.0);
  point.latency_p99_ms = sojourn_ms.percentile(99.0);
  return point;
}

// ----------------------------------------------------------------- report

void append_json(std::ofstream& out, const char* backend,
                 const std::vector<Point>& points) {
  out << "  \"" << backend << "\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    out << "    {\"shards\": " << p.shards
        << ", \"throughput_fps\": " << p.throughput_fps
        << ", \"latency_p50_ms\": " << p.latency_p50_ms
        << ", \"latency_p99_ms\": " << p.latency_p99_ms << ", \"shard_hit_rates\": [";
    for (std::size_t s = 0; s < p.shard_hit_rates.size(); ++s) {
      out << (s > 0 ? ", " : "") << p.shard_hit_rates[s];
    }
    out << "]}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]";
}

void append_batch_json(std::ofstream& out, const std::vector<BatchPoint>& points) {
  out << "  \"threads_batch\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const BatchPoint& p = points[i];
    out << "    {\"point\": \"" << p.name << "\", \"shards\": " << p.shards
        << ", \"batch\": " << p.batch
        << ", \"throughput_fps\": " << p.throughput_fps
        << ", \"latency_p50_ms\": " << p.latency_p50_ms
        << ", \"latency_p99_ms\": " << p.latency_p99_ms << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]";
}

void print_report(const char* title, const std::vector<Point>& points) {
  Report report(title);
  report.columns({"shards", "throughput (flows/s)", "latency p50 (ms)",
                  "latency p99 (ms)", "scaling vs 1 shard"});
  const double base = points.empty() ? 0.0 : points.front().throughput_fps;
  for (const Point& p : points) {
    report.row({std::to_string(p.shards), Report::fmt(p.throughput_fps, 0),
                Report::fmt(p.latency_p50_ms), Report::fmt(p.latency_p99_ms),
                Report::fmt(base > 0 ? p.throughput_fps / base : 0.0, 1) + "x"});
  }
  report.print();
}

void print_batch_report(const std::vector<BatchPoint>& points) {
  Report report("Batched datapath: decisions/s (zero-latency, pure CPU cost)");
  report.columns({"shards", "batch", "decisions/s", "latency p50 (ms)",
                  "latency p99 (ms)"});
  for (const BatchPoint& p : points) {
    report.row({std::to_string(p.shards), std::to_string(p.batch),
                Report::fmt(p.throughput_fps, 0), Report::fmt(p.latency_p50_ms),
                Report::fmt(p.latency_p99_ms)});
  }
  report.print();
}

// ----------------------------------------------------------- baseline gate

// Minimal extractor for our own baseline shape: the value following
// `"point": "<name>" ... "throughput_fps": `.
bool baseline_floor(const std::string& json, const std::string& point, double* out) {
  const auto point_pos = json.find("\"point\": \"" + point + "\"");
  if (point_pos == std::string::npos) return false;
  const auto key_pos = json.find("\"throughput_fps\": ", point_pos);
  if (key_pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + key_pos + std::strlen("\"throughput_fps\": "),
                     nullptr);
  return true;
}

int check_baseline(const char* path, const std::vector<BatchPoint>& points) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot read baseline %s\n", path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  int failures = 0;
  for (const BatchPoint& p : points) {
    double floor = 0.0;
    if (!baseline_floor(json, p.name, &floor)) {
      std::fprintf(stderr, "FAIL: baseline %s has no point \"%s\"\n", path,
                   p.name.c_str());
      ++failures;
      continue;
    }
    // The committed floors are already conservative for shared CI machines;
    // >10% below one is a datapath regression.
    if (p.throughput_fps < 0.9 * floor) {
      std::fprintf(stderr,
                   "FAIL: point %s %.0f decisions/s regressed >10%% below "
                   "baseline floor %.0f\n",
                   p.name.c_str(), p.throughput_fps, floor);
      ++failures;
    } else {
      std::printf("baseline ok: %-8s %10.0f decisions/s (floor %.0f)\n",
                  p.name.c_str(), p.throughput_fps, floor);
    }
  }
  return failures == 0 ? 0 : 1;
}

int run(bool smoke, const char* baseline_path) {
  std::printf("DFI reproduction — ablation: sharded PCP scale-out%s\n",
              smoke ? " (smoke)" : "");

  std::vector<Point> simulated;
  std::vector<Point> threaded;
  if (!smoke) {
    for (const std::size_t shards : kShardSweep) {
      simulated.push_back(run_simulated_point(shards));
      std::printf("simulated shards=%zu: %.0f flows/s\n", shards,
                  simulated.back().throughput_fps);
    }
    for (const std::size_t shards : kShardSweep) {
      threaded.push_back(run_threaded_point(shards));
      std::printf("threads   shards=%zu: %.0f flows/s\n", shards,
                  threaded.back().throughput_fps);
    }
  }

  const std::size_t batch_packets = smoke ? 6000 : 24000;
  std::vector<BatchPoint> batched;
  const auto shard_sweep = smoke ? std::vector<std::size_t>(std::begin(kSmokeShardSweep),
                                                            std::end(kSmokeShardSweep))
                                 : std::vector<std::size_t>(std::begin(kShardSweep),
                                                            std::end(kShardSweep));
  const auto batch_sweep = smoke ? std::vector<std::size_t>(std::begin(kSmokeBatchSweep),
                                                            std::end(kSmokeBatchSweep))
                                 : std::vector<std::size_t>(std::begin(kBatchSweep),
                                                            std::end(kBatchSweep));
  for (const std::size_t shards : shard_sweep) {
    for (const std::size_t batch : batch_sweep) {
      batched.push_back(run_threaded_batch_point(shards, batch, batch_packets));
      std::printf("batch     shards=%zu batch=%-3zu: %.0f decisions/s\n", shards,
                  batch, batched.back().throughput_fps);
    }
  }

  if (!smoke) {
    print_report("Simulated backend: saturation throughput vs shards (DES)",
                 simulated);
    print_report("Thread backend: wall-clock throughput vs shards (Table II "
                 "blocking)",
                 threaded);
  }
  print_batch_report(batched);

  std::ofstream out("BENCH_scaleout.json");
  out << "{\n";
  if (!smoke) {
    append_json(out, "simulated", simulated);
    out << ",\n";
    append_json(out, "threads", threaded);
    out << ",\n";
  }
  append_batch_json(out, batched);
  out << "\n}\n";
  std::printf("wrote BENCH_scaleout.json\n");

  if (!smoke && threaded.size() >= 3 && threaded[0].throughput_fps > 0) {
    std::printf("thread backend scaling at 4 shards: %.2fx\n",
                threaded[2].throughput_fps / threaded[0].throughput_fps);
  }
  if (baseline_path != nullptr) return check_baseline(baseline_path, batched);
  return 0;
}

}  // namespace
}  // namespace dfi

int main(int argc, char** argv) {
  bool smoke = false;
  const char* baseline = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check-baseline <json>]\n", argv[0]);
      return 2;
    }
  }
  return dfi::run(smoke, baseline);
}
