// Ablation: DFI control-plane scale-out (paper Sections V-A and VII:
// "Scaling up could be achieved using multiple DFI Proxy and PCP
// instances" / "running some control-plane components in parallel").
//
// PR 2 turned that deployment advice into a mechanism: the PcpShardPool
// partitions Packet-ins by canonical-flow-tuple hash over N shards, in two
// backends. This bench sweeps shards {1, 2, 4, 8} through both:
//
//  * kSimulated — the cbench surrogate measures saturation throughput and
//    no-load latency in simulated time (N=1 is the paper's calibrated
//    single PCP; Table I);
//  * kThreads — real std::thread workers measured on the wall clock. Each
//    decision blocks for its sampled Table II service time (the production
//    PCP blocks on IPC to the ERM / Policy Manager), so throughput scales
//    with the number of in-flight decisions.
//
// Emits BENCH_scaleout.json: per configuration, throughput, p50/p99
// decision latency, and the per-shard decision-cache hit rates.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/pcp.h"
#include "harness/cbench.h"
#include "harness/report.h"
#include "sim/stats.h"

namespace dfi {
namespace {

constexpr std::size_t kShardSweep[] = {1, 2, 4, 8};

struct Point {
  std::size_t shards = 0;
  double throughput_fps = 0.0;
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  std::vector<double> shard_hit_rates;
};

// ------------------------------------------------- simulated backend (DES)

Point run_simulated_point(std::size_t shards) {
  CbenchConfig config;
  config.dfi.pcp.shards = shards;
  config.dfi.pcp.workers = 7;
  config.dfi.pcp.queue_capacity = 96;
  config.seed = 0x5ca1e + shards;
  CbenchEmulator bench(config);

  Point point;
  point.shards = shards;
  const SampleStats latency = bench.run_latency_mode(300);
  point.latency_p50_ms = latency.percentile(50.0);
  point.latency_p99_ms = latency.percentile(99.0);
  point.throughput_fps = bench.find_saturation(200.0, 200.0, 14000.0, seconds(10.0));
  for (std::size_t s = 0; s < bench.dfi().pcp().shard_count(); ++s) {
    point.shard_hit_rates.push_back(bench.dfi().pcp().decision_cache_stats(s).hit_rate());
  }
  return point;
}

// ------------------------------------------- threaded backend (wall clock)

// Fig. 4-style workload: a fixed host population, traffic drawn from a
// bounded tuple set (flows repeat, so the per-shard caches see hits), an
// allow-all rule so decisions compile goto rules. Service times follow the
// Table II moments, spent as real blocking time in the shard workers.
Point run_threaded_point(std::size_t shards) {
  constexpr std::size_t kHosts = 64;
  constexpr std::size_t kTuples = 256;
  constexpr std::size_t kPackets = 400;

  Simulator sim;
  MessageBus bus;
  EntityResolutionManager erm(bus);
  PolicyManager manager(bus);
  PcpConfig config;
  config.backend = PcpBackend::kThreads;
  config.shards = shards;
  config.queue_capacity = 64;
  PolicyCompilationPoint pcp(sim, bus, erm, manager, config, Rng(11));
  pcp.register_switch(Dpid{1}, [](const OfMessage&) {});

  PolicyRule allow;
  allow.action = PolicyAction::kAllow;
  manager.insert(allow, PdpPriority{10}, "bench");

  std::vector<PacketInMsg> tuples;
  tuples.reserve(kTuples);
  for (std::size_t i = 0; i < kTuples; ++i) {
    const std::size_t src = i % kHosts;
    const std::size_t dst = (i * 7 + 1) % kHosts;
    const Packet packet = make_tcp_packet(
        MacAddress::from_u64(src + 1), MacAddress::from_u64(dst + 1),
        Ipv4Address(static_cast<std::uint32_t>(0x0a000100 + src)),
        Ipv4Address(static_cast<std::uint32_t>(0x0a000100 + dst)),
        static_cast<std::uint16_t>(40000 + i % 16), 445);
    PacketInMsg msg;
    msg.in_port = PortNo{static_cast<std::uint32_t>(src % 8 + 1)};
    msg.table_id = 0;
    msg.data = packet.serialize();
    tuples.push_back(std::move(msg));
  }

  using Clock = std::chrono::steady_clock;
  std::vector<Clock::time_point> submitted(kPackets);
  SampleStats sojourn_ms;

  const Clock::time_point start = Clock::now();
  for (std::size_t i = 0; i < kPackets; ++i) {
    submitted[i] = Clock::now();
    const auto done = [&sojourn_ms, &submitted, i](const PcpDecision&) {
      sojourn_ms.add(std::chrono::duration<double, std::milli>(
                         Clock::now() - submitted[i])
                         .count());
    };
    // Open loop with a bounded shard queue: on rejection, release finished
    // decisions and retry. Workers are blocked in service waits, so the
    // retry loop naps instead of spinning.
    while (!pcp.handle_packet_in(Dpid{1}, tuples[i % kTuples], done)) {
      if (pcp.poll_completions() == 0) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    pcp.poll_completions();
  }
  pcp.wait_idle();
  const double elapsed_s =
      std::chrono::duration<double>(Clock::now() - start).count();

  Point point;
  point.shards = shards;
  point.throughput_fps = static_cast<double>(kPackets) / elapsed_s;
  point.latency_p50_ms = sojourn_ms.percentile(50.0);
  point.latency_p99_ms = sojourn_ms.percentile(99.0);
  for (std::size_t s = 0; s < pcp.shard_count(); ++s) {
    point.shard_hit_rates.push_back(pcp.decision_cache_stats(s).hit_rate());
  }
  return point;
}

// ----------------------------------------------------------------- report

void append_json(std::ofstream& out, const char* backend,
                 const std::vector<Point>& points) {
  out << "  \"" << backend << "\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    out << "    {\"shards\": " << p.shards
        << ", \"throughput_fps\": " << p.throughput_fps
        << ", \"latency_p50_ms\": " << p.latency_p50_ms
        << ", \"latency_p99_ms\": " << p.latency_p99_ms << ", \"shard_hit_rates\": [";
    for (std::size_t s = 0; s < p.shard_hit_rates.size(); ++s) {
      out << (s > 0 ? ", " : "") << p.shard_hit_rates[s];
    }
    out << "]}" << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]";
}

void print_report(const char* title, const std::vector<Point>& points) {
  Report report(title);
  report.columns({"shards", "throughput (flows/s)", "latency p50 (ms)",
                  "latency p99 (ms)", "scaling vs 1 shard"});
  const double base = points.empty() ? 0.0 : points.front().throughput_fps;
  for (const Point& p : points) {
    report.row({std::to_string(p.shards), Report::fmt(p.throughput_fps, 0),
                Report::fmt(p.latency_p50_ms), Report::fmt(p.latency_p99_ms),
                Report::fmt(base > 0 ? p.throughput_fps / base : 0.0, 1) + "x"});
  }
  report.print();
}

}  // namespace
}  // namespace dfi

int main() {
  using namespace dfi;
  std::printf("DFI reproduction — ablation: sharded PCP scale-out\n");

  std::vector<Point> simulated;
  for (const std::size_t shards : kShardSweep) {
    simulated.push_back(run_simulated_point(shards));
    std::printf("simulated shards=%zu: %.0f flows/s\n", shards,
                simulated.back().throughput_fps);
  }
  std::vector<Point> threaded;
  for (const std::size_t shards : kShardSweep) {
    threaded.push_back(run_threaded_point(shards));
    std::printf("threads   shards=%zu: %.0f flows/s\n", shards,
                threaded.back().throughput_fps);
  }

  print_report("Simulated backend: saturation throughput vs shards (DES)", simulated);
  print_report("Thread backend: wall-clock throughput vs shards", threaded);

  std::ofstream out("BENCH_scaleout.json");
  out << "{\n";
  append_json(out, "simulated", simulated);
  out << ",\n";
  append_json(out, "threads", threaded);
  out << "\n}\n";
  std::printf("wrote BENCH_scaleout.json\n");

  const double scaling =
      threaded[0].throughput_fps > 0 ? threaded[2].throughput_fps / threaded[0].throughput_fps
                                     : 0.0;
  std::printf("thread backend scaling at 4 shards: %.2fx\n", scaling);
  return 0;
}
