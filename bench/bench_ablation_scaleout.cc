// Ablation: DFI control-plane scale-out (paper Sections V-A and VII:
// "Scaling up could be achieved using multiple DFI Proxy and PCP
// instances" / "running some control-plane components in parallel").
//
// We vary the PCP worker-pool width and measure saturation throughput with
// the cbench surrogate. Throughput should scale near-linearly with workers
// while per-flow no-load latency stays flat (the work per flow is fixed).
#include <cstdio>

#include "harness/cbench.h"
#include "harness/report.h"

using namespace dfi;

int main() {
  std::printf("DFI reproduction — ablation: PCP worker scale-out\n");

  Report report("Saturation throughput and no-load latency vs PCP workers");
  report.columns({"workers", "throughput (flows/s)", "latency mean (ms)",
                  "scaling vs 1 worker"});
  double base_throughput = 0.0;
  for (const std::size_t workers : {1u, 2u, 4u, 7u, 8u, 16u, 32u}) {
    CbenchConfig config;
    config.dfi.pcp.workers = workers;
    config.dfi.pcp.queue_capacity = 96;
    config.seed = 0x5ca1e + workers;
    CbenchEmulator bench(config);
    const SampleStats latency = bench.run_latency_mode(300);
    const double throughput = bench.find_saturation(200.0, 200.0, 12000.0,
                                                    seconds(10.0));
    if (base_throughput == 0.0) base_throughput = throughput;
    report.row({std::to_string(workers), Report::fmt(throughput, 0),
                Report::fmt(latency.mean()),
                Report::fmt(throughput / base_throughput, 1) + "x"});
  }
  report.note("paper deployment ~= 7-8 effective workers (1350 flows/s at 5.7 ms/flow)");
  report.print();
  return 0;
}
