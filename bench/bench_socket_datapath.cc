// Socket datapath macro-benchmark (DESIGN.md §9).
//
// Round-trips OpenFlow echo frames over real loopback TCP through the full
// socket stack — ConnectionManager accept/dial, edge-triggered EventLoop,
// Connection scatter-readv ingress and coalesced-writev egress — sweeping
// connection count x batch size, and reports frames/s plus per-batch p50/
// p99 round-trip latency in BENCH_socket_datapath.json.
//
// Two comparisons anchor the loopback numbers:
//   - The committed baseline's absolute frames/s floors at 64-frame batches
//     encode "at least 50% of the in-process BENCH_proxy_datapath
//     mixed-steady-state fast-path figure" (see the baseline comment) — the
//     headline syscall-amortization gate.
//   - The same binary also measures the identical echo workload through the
//     same Connection machinery in manual mode over perfect in-memory
//     sockets (FaultSocket, no faults) — framing, queueing and pooling
//     minus the kernel — and gates the loopback/in-memory ratio, so the
//     kernel-transport tax itself cannot silently regress.
//
// A sealed-egress section times the SecureChannel pooled seal_into/
// open_into path (the SwitchDevice secure_control egress). Every timed
// section asserts the zero-allocation property: once pools are warm, a
// steady-state pass touches the allocator zero times.
//
// Flags:
//   --smoke                  bounded run for CI (smaller sweep, same checks)
//   --check-baseline <path>  compare frames/s, p99 and the in-process ratio
//                            against committed floors; exits 1 on breach.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/frame_buffer_pool.h"
#include "fault/fault_socket.h"
#include "net/asyncio/conman.h"
#include "net/asyncio/connection.h"
#include "net/asyncio/event_loop.h"
#include "openflow/messages.h"
#include "openflow/secure_channel.h"
#include "openflow/wire.h"

namespace dfi {
namespace {

using net::ConnectionManager;
using net::Connection;
using net::ConmanConfig;
using net::EventLoop;

constexpr std::size_t kEchoPayload = 64;  // packet-in-sized control frames

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::vector<std::uint8_t> echo_frame() {
  return encode(
      OfMessage{7, EchoRequestMsg{std::vector<std::uint8_t>(kEchoPayload, 0x5a)}});
}

double percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(index, sorted_us.size() - 1)];
}

struct SweepResult {
  std::size_t conns = 0;
  std::size_t batch = 0;
  double frames_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t steady_state_allocations = 0;
  double pool_hit_rate = 0.0;
};

// ------------------------------------------------------- loopback echo rig
//
// Single-threaded: server and clients share one EventLoop pumped from
// main. Each client keeps exactly one batch outstanding (round-trip
// latency stays meaningful); throughput scales through connection count.

class LoopbackEcho {
 public:
  LoopbackEcho(std::size_t conns, std::size_t batch)
      : conns_(conns),
        batch_(batch),
        frame_(echo_frame()),
        pool_(conns * batch * 4 + 64),
        conman_(loop_, conman_config()) {}

  bool setup() {
    auto bound = conman_.listen(
        "127.0.0.1", 0, [this](std::unique_ptr<Connection> conn, const std::string&) {
          adopt_server(std::move(conn));
        });
    if (!bound.ok()) {
      std::fprintf(stderr, "FAIL: listen: %s\n", bound.error().message.c_str());
      return false;
    }
    const std::uint16_t port = bound.value();
    clients_.resize(conns_);
    for (std::size_t i = 0; i < conns_; ++i) {
      conman_.dial("127.0.0.1", port, [this, i](std::unique_ptr<Connection> conn) {
        if (conn != nullptr) adopt_client(i, std::move(conn));
      });
    }
    return pump_until([&] {
      return ready_clients_ == conns_ && servers_.size() == conns_;
    });
  }

  // One phase: every client round-trips `rounds` batches. Latencies are
  // recorded only when `record` is set (the measured phase).
  bool run_phase(std::size_t rounds, bool record) {
    recording_ = record;
    idle_clients_ = 0;
    for (auto& client : clients_) client.rounds_left = rounds;
    for (auto& client : clients_) send_batch(client);
    return pump_until([&] { return idle_clients_ == conns_; });
  }

  SweepResult measure(std::size_t measured_rounds) {
    SweepResult result;
    result.conns = conns_;
    result.batch = batch_;
    if (!run_phase(/*rounds=*/2, /*record=*/false)) return result;  // warm
    const std::uint64_t warm_allocations = pool_.stats().allocations;
    latencies_us_.clear();
    const std::uint64_t start = now_ns();
    if (!run_phase(measured_rounds, /*record=*/true)) return result;
    const double elapsed_s = static_cast<double>(now_ns() - start) * 1e-9;
    result.steady_state_allocations = pool_.stats().allocations - warm_allocations;
    result.pool_hit_rate = pool_.stats().hit_rate();
    // Every echoed frame crosses the transport twice (client->server, then
    // server->client), and each crossing is one full ingress+egress pass
    // through the datapath — the same unit BENCH_proxy_datapath counts per
    // frame — so frames_per_s counts both directions.
    const double frames =
        2.0 * static_cast<double>(conns_ * batch_ * measured_rounds);
    result.frames_per_s = frames / elapsed_s;
    std::sort(latencies_us_.begin(), latencies_us_.end());
    result.p50_us = percentile(latencies_us_, 0.50);
    result.p99_us = percentile(latencies_us_, 0.99);
    return result;
  }

 private:
  struct Client {
    std::unique_ptr<Connection> conn;
    std::size_t received_in_batch = 0;
    std::size_t rounds_left = 0;
    std::uint64_t batch_start_ns = 0;
  };

  ConmanConfig conman_config() const {
    ConmanConfig config;
    config.max_connections = 2 * conns_ + 8;
    config.per_ip_limit = 2 * conns_ + 8;
    return config;
  }

  void adopt_server(std::unique_ptr<Connection> conn) {
    Connection* raw = conn.get();
    raw->set_frame_pool(&pool_);
    raw->on_frame([this, raw](const FrameView& view) {
      raw->send(pool_.acquire_copy(view.data(), view.size()));
    });
    raw->on_batch_end([raw] { raw->flush(); });
    servers_.push_back(std::move(conn));
  }

  void adopt_client(std::size_t index, std::unique_ptr<Connection> conn) {
    Client& client = clients_[index];
    client.conn = std::move(conn);
    client.conn->set_frame_pool(&pool_);
    client.conn->on_frame([this, &client](const FrameView&) {
      if (++client.received_in_batch < batch_) return;
      client.received_in_batch = 0;
      if (recording_) {
        latencies_us_.push_back(
            static_cast<double>(now_ns() - client.batch_start_ns) * 1e-3);
      }
      if (--client.rounds_left > 0) {
        send_batch(client);
      } else {
        ++idle_clients_;
      }
    });
    ++ready_clients_;
  }

  void send_batch(Client& client) {
    client.batch_start_ns = now_ns();
    for (std::size_t i = 0; i < batch_; ++i) {
      client.conn->send(pool_.acquire_copy(frame_.data(), frame_.size()));
    }
    client.conn->flush();
  }

  template <typename Cond>
  bool pump_until(Cond cond) {
    const std::uint64_t deadline = now_ns() + std::uint64_t{120} * 1000000000ull;
    while (!cond()) {
      if (now_ns() > deadline) {
        std::fprintf(stderr, "FAIL: loopback echo stalled (c%zu b%zu)\n", conns_,
                     batch_);
        return false;
      }
      loop_.run_once(10);
    }
    return true;
  }

  std::size_t conns_;
  std::size_t batch_;
  std::vector<std::uint8_t> frame_;
  FrameBufferPool pool_;
  EventLoop loop_;
  ConnectionManager conman_;
  std::vector<Client> clients_;
  std::vector<std::unique_ptr<Connection>> servers_;
  std::size_t ready_clients_ = 0;
  std::size_t idle_clients_ = 0;
  bool recording_ = false;
  std::vector<double> latencies_us_;
};

// -------------------------------------------------- in-process echo figure
//
// The same echo round trip through the same Connection machinery, manual
// mode over perfect in-memory sockets: the syscall-free ceiling the
// loopback figure is gated against.

struct InProcessEcho {
  FrameBufferPool pool{1024};
  FaultSocket* client_sock = nullptr;
  FaultSocket* server_sock = nullptr;
  std::unique_ptr<Connection> client;
  std::unique_ptr<Connection> server;
  std::size_t client_received = 0;

  InProcessEcho() {
    auto make = [](FaultSocket*& sock) {
      auto owned = std::make_unique<FaultSocket>(FaultSocketSpec{}, /*seed=*/1);
      sock = owned.get();
      return owned;
    };
    client = std::make_unique<Connection>(nullptr, make(client_sock),
                                          Connection::Config{});
    server = std::make_unique<Connection>(nullptr, make(server_sock),
                                          Connection::Config{});
    client->set_frame_pool(&pool);
    server->set_frame_pool(&pool);
    client->start();
    server->start();
    server->on_frame([this](const FrameView& view) {
      server->send(pool.acquire_copy(view.data(), view.size()));
    });
    client->on_frame([this](const FrameView&) { ++client_received; });
  }

  // Move pending bytes across both in-memory pipes until quiescent.
  void pump() {
    for (;;) {
      bool moved = false;
      auto to_server = client_sock->peer_drain();
      if (!to_server.empty()) {
        moved = true;
        server_sock->peer_write(to_server);
        while (server_sock->pending_in() > 0) server->handle_io(true, false);
        server->flush();
      }
      auto to_client = server_sock->peer_drain();
      if (!to_client.empty()) {
        moved = true;
        client_sock->peer_write(to_client);
        while (client_sock->pending_in() > 0) client->handle_io(true, false);
      }
      if (!moved) return;
    }
  }

  // frames/s over `rounds` batches of `batch` frames.
  double measure(std::size_t batch, std::size_t rounds,
                 std::uint64_t* allocations_out) {
    const auto frame = echo_frame();
    auto round = [&] {
      client_received = 0;
      for (std::size_t i = 0; i < batch; ++i) {
        client->send(pool.acquire_copy(frame.data(), frame.size()));
      }
      client->flush();
      while (client_received < batch) pump();
    };
    round();  // warm
    const std::uint64_t warm_allocations = pool.stats().allocations;
    const std::uint64_t start = now_ns();
    for (std::size_t i = 0; i < rounds; ++i) round();
    const double elapsed_s = static_cast<double>(now_ns() - start) * 1e-9;
    *allocations_out = pool.stats().allocations - warm_allocations;
    // Same both-directions accounting as the loopback rig.
    return 2.0 * static_cast<double>(batch * rounds) / elapsed_s;
  }
};

// ------------------------------------------------------ sealed egress path

// SecureChannel seal_into/open_into round trip on pooled buffers — the
// SwitchDevice secure_control egress path. Returns ns/record.
double measure_sealed(std::size_t records, std::uint64_t* allocations_out) {
  SecureChannel tx(0xdf1df1ull);
  SecureChannel rx(0xdf1df1ull);
  FrameBufferPool pool(8);
  const auto frame = echo_frame();
  auto pass = [&] {
    auto sealed = pool.acquire();
    auto opened = pool.acquire();
    tx.seal_into(frame.data(), frame.size(), sealed);
    const auto result = rx.open_into(sealed.data(), sealed.size(), opened);
    if (!result.ok() || opened != frame) {
      std::fprintf(stderr, "FAIL: sealed round trip corrupted\n");
      std::exit(1);
    }
    pool.release(std::move(sealed));
    pool.release(std::move(opened));
  };
  pass();  // warm
  const std::uint64_t warm_allocations = pool.stats().allocations;
  const std::uint64_t start = now_ns();
  for (std::size_t i = 0; i < records; ++i) pass();
  const double elapsed_ns = static_cast<double>(now_ns() - start);
  *allocations_out = pool.stats().allocations - warm_allocations;
  return elapsed_ns / static_cast<double>(records);
}

// ---------------------------------------------------------------- reporting

void write_json(const char* path, const std::vector<SweepResult>& sweep,
                double inprocess_fps, double ratio_b64, double sealed_ns,
                std::uint64_t sealed_allocations) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"inprocess_frames_per_s_b64\": " << inprocess_fps << ",\n"
      << "  \"ratio_vs_inprocess_b64\": " << ratio_b64 << ",\n"
      << "  \"sealed_ns_per_record\": " << sealed_ns << ",\n"
      << "  \"sealed_steady_state_allocations\": " << sealed_allocations << ",\n"
      << "  \"sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepResult& r = sweep[i];
    out << "    {\"config\": \"c" << r.conns << "_b" << r.batch << "\""
        << ", \"conns\": " << r.conns << ", \"batch\": " << r.batch
        << ", \"frames_per_s\": " << r.frames_per_s << ", \"p50_us\": " << r.p50_us
        << ", \"p99_us\": " << r.p99_us
        << ", \"steady_state_allocations\": " << r.steady_state_allocations
        << ", \"pool_hit_rate\": " << r.pool_hit_rate << "}"
        << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path);
}

bool json_number(const std::string& json, const std::string& anchor,
                 const std::string& key, double* out) {
  std::size_t from = 0;
  if (!anchor.empty()) {
    from = json.find(anchor);
    if (from == std::string::npos) return false;
  }
  const auto key_pos = json.find("\"" + key + "\": ", from);
  if (key_pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + key_pos + key.size() + 4, nullptr);
  return true;
}

// Committed floors: min frames/s and max p99 per swept config, plus the
// minimum loopback/in-process ratio at 64-frame batches. Configs absent
// from the baseline (e.g. the full sweep under --smoke) are skipped.
int check_baseline(const char* path, const std::vector<SweepResult>& sweep,
                   double ratio_b64) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot read baseline %s\n", path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  int failures = 0;
  // The headline syscall-amortization gate: the best 64-frame-batch config
  // must clear the committed floor (50% of the BENCH_proxy_datapath
  // mixed-steady-state figure — see the baseline comment).
  double best_b64 = 0.0;
  for (const SweepResult& r : sweep) {
    if (r.batch == 64) best_b64 = std::max(best_b64, r.frames_per_s);
  }
  double min_best_b64 = 0.0;
  if (json_number(json, "", "min_best_b64_frames_per_s", &min_best_b64)) {
    if (best_b64 < min_best_b64) {
      std::fprintf(stderr, "FAIL: best b64 config %.0f frames/s below floor %.0f\n",
                   best_b64, min_best_b64);
      ++failures;
    } else {
      std::printf("baseline ok: best b64 config %.0f frames/s (floor %.0f)\n",
                  best_b64, min_best_b64);
    }
  }
  double min_ratio = 0.0;
  if (json_number(json, "", "min_ratio_vs_inprocess_b64", &min_ratio)) {
    if (ratio_b64 < min_ratio) {
      std::fprintf(stderr, "FAIL: loopback/in-process ratio %.3f below floor %.3f\n",
                   ratio_b64, min_ratio);
      ++failures;
    } else {
      std::printf("baseline ok: ratio_vs_inprocess_b64 %.3f (floor %.3f)\n",
                  ratio_b64, min_ratio);
    }
  }
  for (const SweepResult& r : sweep) {
    const std::string anchor =
        "\"config\": \"c" + std::to_string(r.conns) + "_b" +
        std::to_string(r.batch) + "\"";
    double min_fps = 0.0;
    double max_p99 = 0.0;
    if (!json_number(json, anchor, "min_frames_per_s", &min_fps) ||
        !json_number(json, anchor, "max_p99_us", &max_p99)) {
      continue;
    }
    if (r.frames_per_s < min_fps) {
      std::fprintf(stderr, "FAIL: c%zu_b%zu %.0f frames/s below floor %.0f\n",
                   r.conns, r.batch, r.frames_per_s, min_fps);
      ++failures;
    } else if (r.p99_us > max_p99) {
      std::fprintf(stderr, "FAIL: c%zu_b%zu p99 %.1fus above ceiling %.1fus\n",
                   r.conns, r.batch, r.p99_us, max_p99);
      ++failures;
    } else {
      std::printf("baseline ok: c%zu_b%zu %.0f frames/s (floor %.0f), p99 %.1fus "
                  "(ceiling %.1fus)\n",
                  r.conns, r.batch, r.frames_per_s, min_fps, r.p99_us, max_p99);
    }
  }
  return failures == 0 ? 0 : 1;
}

int run(bool smoke, const char* baseline_path) {
  const std::vector<std::size_t> conn_sweep =
      smoke ? std::vector<std::size_t>{1, 8} : std::vector<std::size_t>{1, 8, 64, 256};
  const std::vector<std::size_t> batch_sweep =
      smoke ? std::vector<std::size_t>{1, 64} : std::vector<std::size_t>{1, 16, 64};
  const std::size_t frame_target = smoke ? 4000 : 100000;

  // The in-process ceiling at 64-frame batches, same binary and machinery.
  InProcessEcho inprocess;
  std::uint64_t inprocess_allocations = 0;
  const double inprocess_fps = inprocess.measure(
      /*batch=*/64, /*rounds=*/smoke ? 100 : 2000, &inprocess_allocations);
  std::printf("in-process (b64)     %12.0f frames/s\n", inprocess_fps);
  if (inprocess_allocations != 0) {
    std::fprintf(stderr,
                 "FAIL: in-process echo allocated %llu times at steady state\n",
                 static_cast<unsigned long long>(inprocess_allocations));
    return 1;
  }

  std::vector<SweepResult> sweep;
  double best_b64_fps = 0.0;
  for (const std::size_t conns : conn_sweep) {
    for (const std::size_t batch : batch_sweep) {
      LoopbackEcho rig(conns, batch);
      if (!rig.setup()) return 1;
      const std::size_t rounds =
          std::max<std::size_t>(8, frame_target / (conns * batch));
      const SweepResult result = rig.measure(rounds);
      if (result.frames_per_s <= 0.0) return 1;
      sweep.push_back(result);
      std::printf("c%-3zu b%-3zu %12.0f frames/s   p50 %8.1f us   p99 %8.1f us   "
                  "pool_hit %.3f\n",
                  result.conns, result.batch, result.frames_per_s, result.p50_us,
                  result.p99_us, result.pool_hit_rate);
      if (result.steady_state_allocations != 0) {
        std::fprintf(stderr,
                     "FAIL: c%zu_b%zu performed %llu allocations at steady state\n",
                     conns, batch,
                     static_cast<unsigned long long>(result.steady_state_allocations));
        return 1;
      }
      if (batch == 64) best_b64_fps = std::max(best_b64_fps, result.frames_per_s);
    }
  }
  const double ratio_b64 = inprocess_fps > 0.0 ? best_b64_fps / inprocess_fps : 0.0;
  std::printf("loopback/in-process ratio at b64: %.3f\n", ratio_b64);

  std::uint64_t sealed_allocations = 0;
  const double sealed_ns =
      measure_sealed(smoke ? 20000 : 200000, &sealed_allocations);
  std::printf("sealed egress        %12.1f ns/record (pooled seal_into)\n", sealed_ns);
  if (sealed_allocations != 0) {
    std::fprintf(stderr, "FAIL: sealed path allocated %llu times at steady state\n",
                 static_cast<unsigned long long>(sealed_allocations));
    return 1;
  }

  write_json("BENCH_socket_datapath.json", sweep, inprocess_fps, ratio_b64,
             sealed_ns, sealed_allocations);
  if (baseline_path != nullptr) return check_baseline(baseline_path, sweep, ratio_b64);
  return 0;
}

}  // namespace
}  // namespace dfi

int main(int argc, char** argv) {
  bool smoke = false;
  const char* baseline = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check-baseline <json>]\n", argv[0]);
      return 2;
    }
  }
  return dfi::run(smoke, baseline);
}
