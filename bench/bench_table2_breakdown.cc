// Reproduces paper Table II: per-component latency breakdown of a DFI
// flow-start decision.
//
//   Component               Paper (mean ± sd, ms)
//   Binding query           2.41 ± 0.97
//   Policy query            2.52 ± 0.85
//   Other PCP processing    0.39 ± 0.27
//   Proxy                   0.16 ± 0.72
//   Overall                 5.73 ± 3.39
#include <cstdio>

#include "harness/cbench.h"
#include "harness/report.h"

using namespace dfi;

int main() {
  std::printf("DFI reproduction — Table II: latency breakdown\n");

  CbenchEmulator bench{CbenchConfig{}};
  const SampleStats overall = bench.run_latency_mode(3000);

  const auto& pcp = bench.dfi().pcp();
  const auto fmt_pair = [](const SampleStats& stats) {
    return Report::fmt(stats.mean()) + " +/- " + Report::fmt(stats.stddev());
  };

  Report report("Table II: Latency Breakdown (ms)");
  report.columns({"Component", "Paper", "Measured"});
  report.row({"Binding Query", "2.41 +/- 0.97", fmt_pair(pcp.binding_latency_ms())});
  report.row({"Policy Query", "2.52 +/- 0.85", fmt_pair(pcp.policy_latency_ms())});
  report.row({"Other PCP Processing", "0.39 +/- 0.27", fmt_pair(pcp.other_latency_ms())});
  report.row({"Proxy", "0.16 +/- 0.72", fmt_pair(bench.dfi().proxy().latency_ms())});
  report.row({"Overall", "5.73 +/- 3.39", fmt_pair(overall)});
  report.note("overall measured end-to-end at the emulated switch (packet-in -> rule)");
  report.print();
  return 0;
}
