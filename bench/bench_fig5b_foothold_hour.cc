// Reproduces paper Figure 5b: impact of an infection under AT-RBAC,
// conditioned on the hour of the foothold.
//
// Paper shape: footholds during business hours spread (bounded by log-on
// density); footholds outside usual hours find so few logged-on machines
// that the worm times out before spreading — often the foothold alone.
// Under baseline/S-RBAC (shown for contrast) the infection course is the
// same at any hour.
#include <cstdio>

#include "harness/report.h"
#include "harness/worm_experiment.h"

using namespace dfi;

int main() {
  std::printf("DFI reproduction — Figure 5b: AT-RBAC impact vs foothold hour\n");

  Report report("Figure 5b: total infected endpoints by foothold hour (of 92)");
  report.columns({"foothold", "AT-RBAC", "S-RBAC", "baseline"});

  for (int hour = 0; hour < 24; hour += 2) {
    std::vector<std::string> row = {
        (hour < 10 ? "0" : "") + std::to_string(hour) + ":00"};
    for (const PolicyCondition condition :
         {PolicyCondition::kAtRbac, PolicyCondition::kSRbac,
          PolicyCondition::kBaseline}) {
      // The static conditions behave identically at every hour (that is the
      // point of the figure); sample them every six hours for contrast.
      if (condition != PolicyCondition::kAtRbac && hour % 6 != 0) {
        row.push_back("-");
        continue;
      }
      WormExperimentConfig config;
      config.condition = condition;
      config.foothold_hour = hour;
      // Horizon comfortably beyond the worm's maximum 60-minute window.
      config.horizon_after_foothold = hours(1.5);
      const WormExperimentResult result = run_worm_experiment(config);
      row.push_back(std::to_string(result.total_infected));
    }
    report.row(row);
  }
  report.note("paper: AT-RBAC off-hours footholds cannot spread before the worm times out;");
  report.note("baseline and S-RBAC infect the full network regardless of hour");
  report.print();
  return 0;
}
