// Million-entity ERM / 100k-rule policy plane scale bench (DESIGN.md §8,
// EXPERIMENTS.md erm_scale).
//
// Sweeps the synthetic enterprise population (testbed/scale_generator.h)
// across entity counts and, per point, measures what the compact entity
// plane promises to keep flat:
//   * decision latency   - decide_on_snapshots() throughput with the
//                          decision cache off (every decision pays spoof
//                          validation, enrichment and the policy query);
//   * snapshot publish   - apply one binding event + snapshot_view(), i.e.
//                          the O(changed) incremental-publication path;
//   * memory             - VmRSS growth per binding during the load.
//
// The rule population is held constant across points so the sweep isolates
// entity-count scaling from rule-count scaling.
//
// Gates (the acceptance criteria, enforced in-process):
//   * decisions/s at the largest point >= half the smallest point (latency
//     stays within 2x from 10k to 1M entities);
//   * publishes/s at the largest point >= a tenth of the smallest point
//     (publication is O(changed), not O(total));
// plus committed per-point floors via --check-baseline.
//
// Usage:
//   bench_erm_scale                          full sweep (to 1M entities)
//   bench_erm_scale --smoke                  CI-bounded sweep (to 50k)
//   bench_erm_scale --check-baseline <json>  also gate against floors
// Env:
//   DFI_SCALE_ENTITIES=<n>  cap the sweep at the largest standard point
//                           with at most n entities (50000 on PR CI,
//                           1000000 nightly).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "core/decision_cache.h"
#include "core/entity_resolution.h"
#include "core/pcp_decide.h"
#include "core/policy_manager.h"
#include "net/packet.h"
#include "testbed/scale_generator.h"

namespace dfi {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// Current resident set size in bytes (Linux /proc; 0 if unreadable).
std::size_t rss_bytes() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtoull(line.c_str() + 6, nullptr, 10) * 1024;
    }
  }
  return 0;
}

struct ScalePoint {
  std::string name;
  std::uint32_t hosts = 0;
  std::size_t entities = 0;   // nominal: 4 per host
  std::size_t bindings = 0;
  double load_s = 0;
  double decisions_per_sec = 0;
  double publish_per_sec = 0;
  double rss_per_binding_bytes = 0;
  std::uint64_t cow_page_copies = 0;
};

ScalePoint run_point(std::uint32_t hosts, std::uint32_t rules, bool smoke) {
  ScaleConfig config;
  config.hosts = hosts;
  ScaleGenerator gen(config);

  ScalePoint point;
  point.name = "h" + std::to_string(hosts);
  point.hosts = hosts;
  point.entities = std::size_t{hosts} * 4;

  const std::size_t rss_before = rss_bytes();
  MessageBus bus;
  EntityResolutionManager erm(bus);
  PolicyManager manager(bus);

  // ------------------------------------------------------------- load
  const Clock::time_point load_start = Clock::now();
  gen.emit_initial_bindings([&](const BindingEvent& event) { erm.apply(event); });
  point.load_s = seconds_since(load_start);
  point.bindings = erm.binding_count();
  const std::size_t rss_after = rss_bytes();
  point.rss_per_binding_bytes =
      point.bindings == 0
          ? 0
          : static_cast<double>(rss_after - rss_before) / point.bindings;

  // Constant rule population across points. Highest priority first: the
  // insert-time overlap sweep looks only at strictly-lower buckets, which
  // are still empty in this order, so load time measures indexing, not the
  // (separately benched) consistency sweep.
  const std::vector<PolicyRule> rule_pop = gen.make_rules(rules);
  constexpr std::uint32_t kPriorityLevels = 8;
  for (std::uint32_t i = 0; i < rule_pop.size(); ++i) {
    const std::uint32_t level =
        kPriorityLevels - (i * kPriorityLevels) / static_cast<std::uint32_t>(rule_pop.size());
    manager.insert(rule_pop[i], PdpPriority{level}, "scale-bench");
  }

  // ------------------------------------------------- decision latency
  // Pre-built Packet-in population; cache off, so every decision runs
  // spoof validation + enrichment + the policy query. Flow i is built to
  // match a top-priority-bucket rule j (its endpoint is the rule's target
  // host, or its port for the port-only wildcard rules), so every flow's
  // bucket walk terminates at the first bucket at every population size
  // and the sweep isolates entity-count scaling. Random flows would
  // instead give the small point ~rules/hosts (incidental, early-exiting)
  // matches per flow and the large point almost none — comparing a
  // hit-heavy workload against one that walks every bucket's posting
  // lists, a rule-density artifact, not an entity-plane cost.
  const std::vector<std::uint32_t> targets = gen.rule_targets(rules);
  constexpr std::size_t kTuples = 512;
  std::vector<DecisionInput> inputs;
  inputs.reserve(kTuples);
  const std::uint32_t top_bucket = rules / kPriorityLevels;  // level-8 rules
  for (std::size_t i = 0; i < kTuples; ++i) {
    const std::uint32_t j = static_cast<std::uint32_t>((i * 16001u) % top_bucket);
    const std::uint32_t t = targets[j];
    const std::uint32_t other = targets[(j + 1) % rules];
    const std::uint32_t kind = j % 8;
    // Kinds 1/4/6 pivot on the destination endpoint; 7 is port-only.
    const bool target_is_dst = kind == 1 || kind == 4 || kind == 6;
    const std::uint32_t src = target_is_dst ? other : t;
    const std::uint32_t dst = target_is_dst ? t : other;
    const std::uint16_t dport =
        kind == 7 ? static_cast<std::uint16_t>(1024 + j % 40000) : 445;
    const Packet packet = make_tcp_packet(
        gen.mac_of(src), gen.mac_of(dst), gen.ip_of(src), gen.ip_of(dst),
        static_cast<std::uint16_t>(40000 + i % 1024), dport);
    PacketInMsg msg;
    msg.in_port = gen.port_of(src);
    msg.table_id = 0;
    msg.data = packet.serialize();
    DecisionInput input = make_decision_input(gen.switch_of(src), msg);
    input.prior_src_location = gen.port_of(src);
    inputs.push_back(std::move(input));
  }

  PcpConfig pcp_config;
  pcp_config.zero_latency = true;
  pcp_config.decision_cache_capacity = 0;
  DecisionCache<PcpDecision> cache(0);
  const DecisionSnapshots snapshots{erm.snapshot_view(), manager.snapshot_view()};

  const std::size_t decisions = smoke ? 20000 : 100000;
  const Clock::time_point decide_start = Clock::now();
  std::size_t allowed = 0;
  for (std::size_t i = 0; i < decisions; ++i) {
    const DecisionEffects effects =
        decide_on_snapshots(inputs[i % kTuples], snapshots, cache, pcp_config);
    allowed += effects.decision.allow ? 1 : 0;
  }
  point.decisions_per_sec =
      static_cast<double>(decisions) / seconds_since(decide_start);

  // --------------------------------------------- incremental publication
  // One binding event, one publication, repeatedly: the cost under test is
  // exactly what a log-on between two Packet-in bursts costs the control
  // thread. Alternates retract/assert so every event is a real change.
  const std::uint64_t cow_before = erm.cow_stats().page_copies;
  const std::size_t publishes = smoke ? 2000 : 10000;
  const Clock::time_point publish_start = Clock::now();
  for (std::size_t i = 0; i < publishes; ++i) {
    BindingEvent event;
    event.kind = BindingKind::kUserHost;
    event.retracted = (i % 2 == 0);
    const std::uint32_t h = static_cast<std::uint32_t>((i / 2) % hosts);
    event.user = Username{gen.user_name(h)};
    event.host = Hostname{gen.host_name(h)};
    erm.apply(event);
    const ErmSnapshot snap = erm.snapshot_view();
    if (snap.epoch() == 0) std::abort();  // keep the loop un-elidable
  }
  point.publish_per_sec =
      static_cast<double>(publishes) / seconds_since(publish_start);
  point.cow_page_copies = erm.cow_stats().page_copies - cow_before;

  std::printf(
      "%-8s %9zu entities %9zu bindings  load %6.2fs  %9.0f decisions/s "
      "(%zu allowed)  %8.0f publishes/s  %5.0f B/binding  %llu page copies\n",
      point.name.c_str(), point.entities, point.bindings, point.load_s,
      point.decisions_per_sec, allowed, point.publish_per_sec,
      point.rss_per_binding_bytes,
      static_cast<unsigned long long>(point.cow_page_copies));
  return point;
}

void write_json(const char* path, const std::vector<ScalePoint>& points,
                double decision_ratio, double publish_ratio) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"erm_scale\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const ScalePoint& p = points[i];
    out << "    {\"point\": \"" << p.name << "\", \"hosts\": " << p.hosts
        << ", \"entities\": " << p.entities << ", \"bindings\": " << p.bindings
        << ", \"load_s\": " << p.load_s
        << ", \"decisions_per_sec\": " << p.decisions_per_sec
        << ", \"publish_per_sec\": " << p.publish_per_sec
        << ", \"rss_per_binding_bytes\": " << p.rss_per_binding_bytes
        << ", \"cow_page_copies\": " << p.cow_page_copies << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"gates\": {\"decision_ratio\": " << decision_ratio
      << ", \"publish_ratio\": " << publish_ratio << "}\n}\n";
}

// Minimal scan: the numeric value of `key` inside the baseline object whose
// "point" equals `point`.
bool baseline_value(const std::string& json, const std::string& point,
                    const char* key, double* out) {
  const std::string anchor = "\"point\": \"" + point + "\"";
  std::size_t at = json.find(anchor);
  if (at == std::string::npos) return false;
  const std::size_t end = json.find('}', at);
  const std::string want = std::string("\"") + key + "\":";
  const std::size_t k = json.find(want, at);
  if (k == std::string::npos || k > end) return false;
  *out = std::strtod(json.c_str() + k + want.size(), nullptr);
  return true;
}

int check_baseline(const char* path, const std::vector<ScalePoint>& points) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot read baseline %s\n", path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  int failures = 0;
  for (const ScalePoint& p : points) {
    double decide_floor = 0, publish_floor = 0, rss_ceiling = 0;
    if (!baseline_value(json, p.name, "decisions_per_sec_floor", &decide_floor) ||
        !baseline_value(json, p.name, "publish_per_sec_floor", &publish_floor) ||
        !baseline_value(json, p.name, "rss_per_binding_ceiling", &rss_ceiling)) {
      std::fprintf(stderr, "FAIL: baseline %s lacks point \"%s\"\n", path,
                   p.name.c_str());
      ++failures;
      continue;
    }
    // Floors are committed far below quiet-machine measurements; >10%
    // under one is a scaling regression, not noise.
    if (p.decisions_per_sec < 0.9 * decide_floor) {
      std::fprintf(stderr, "FAIL: %s %.0f decisions/s under floor %.0f\n",
                   p.name.c_str(), p.decisions_per_sec, decide_floor);
      ++failures;
    }
    if (p.publish_per_sec < 0.9 * publish_floor) {
      std::fprintf(stderr, "FAIL: %s %.0f publishes/s under floor %.0f\n",
                   p.name.c_str(), p.publish_per_sec, publish_floor);
      ++failures;
    }
    if (rss_ceiling > 0 && p.rss_per_binding_bytes > rss_ceiling) {
      std::fprintf(stderr, "FAIL: %s %.0f B/binding over ceiling %.0f\n",
                   p.name.c_str(), p.rss_per_binding_bytes, rss_ceiling);
      ++failures;
    }
    if (failures == 0) {
      std::printf("baseline ok: %-8s %9.0f decisions/s  %8.0f publishes/s  "
                  "%5.0f B/binding\n",
                  p.name.c_str(), p.decisions_per_sec, p.publish_per_sec,
                  p.rss_per_binding_bytes);
    }
  }
  return failures == 0 ? 0 : 1;
}

int run(bool smoke, const char* baseline_path) {
  // Standard points (entities = 4x hosts). Smoke tops out at 50k entities,
  // the full sweep at 1M; DFI_SCALE_ENTITIES caps either.
  std::vector<std::uint32_t> hosts =
      smoke ? std::vector<std::uint32_t>{2500, 12500}
            : std::vector<std::uint32_t>{2500, 25000, 250000};
  std::size_t cap = smoke ? 50000 : 1000000;
  if (const char* env = std::getenv("DFI_SCALE_ENTITIES")) {
    cap = std::strtoull(env, nullptr, 10);
  }
  while (hosts.size() > 1 && std::size_t{hosts.back()} * 4 > cap) hosts.pop_back();

  const std::uint32_t rules = smoke ? 5000 : 100000;
  std::vector<ScalePoint> points;
  for (const std::uint32_t h : hosts) points.push_back(run_point(h, rules, smoke));

  const ScalePoint& small = points.front();
  const ScalePoint& large = points.back();
  const double decision_ratio =
      large.decisions_per_sec > 0 ? small.decisions_per_sec / large.decisions_per_sec : 1e9;
  const double publish_ratio =
      large.publish_per_sec > 0 ? small.publish_per_sec / large.publish_per_sec : 1e9;
  write_json("BENCH_erm_scale.json", points, decision_ratio, publish_ratio);

  int failures = 0;
  if (points.size() > 1) {
    // Acceptance gates: decision latency flat within 2x, publication cost
    // within 10x, from the smallest point to the largest.
    if (decision_ratio > 2.0) {
      std::fprintf(stderr,
                   "FAIL: decisions/s degraded %.2fx from %s to %s (gate: 2x)\n",
                   decision_ratio, small.name.c_str(), large.name.c_str());
      ++failures;
    }
    if (publish_ratio > 10.0) {
      std::fprintf(stderr,
                   "FAIL: publish rate degraded %.2fx from %s to %s (gate: 10x)\n",
                   publish_ratio, small.name.c_str(), large.name.c_str());
      ++failures;
    }
    if (failures == 0) {
      std::printf("gates ok: decision ratio %.2fx (<=2x), publish ratio %.2fx (<=10x)\n",
                  decision_ratio, publish_ratio);
    }
  }
  if (baseline_path != nullptr) failures += check_baseline(baseline_path, points);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace dfi

int main(int argc, char** argv) {
  bool smoke = false;
  const char* baseline = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check-baseline <json>]\n", argv[0]);
      return 2;
    }
  }
  return dfi::run(smoke, baseline);
}
