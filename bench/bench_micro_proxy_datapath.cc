// Wire-layer proxy datapath micro-benchmark (DESIGN.md §5).
//
// Replays OpenFlow byte streams through the two proxy datapaths —
//
//   slow:  FrameDecoder -> decode() -> table shift on the message ->
//          encode() into a scratch vector (the pre-fast-path proxy);
//   fast:  FrameDecoder::next_frame -> classify() -> forward verbatim or
//          patch_table_refs() in place on a pooled buffer;
//
// — over several message mixes and frame sizes, and reports per-frame
// latency, throughput and the fast/slow speedup in
// BENCH_proxy_datapath.json.
//
// Before timing anything it proves the fast path honest: both pipelines run
// the same stream and their outputs must be byte-identical. After timing it
// asserts the zero-allocation property: once the pool is warm, a full
// pass-through/patched pass performs no allocator calls.
//
// Flags:
//   --smoke                  bounded run for CI (smaller reps, same checks)
//   --check-baseline <path>  compare speedups against a committed baseline
//                            JSON; exits 1 on a >10% regression.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "common/frame_buffer_pool.h"
#include "common/rng.h"
#include "openflow/wire.h"

namespace dfi {
namespace {

constexpr std::uint8_t kNumTables = 4;
constexpr std::size_t kChunkSize = 1460;  // TCP segment-sized feeds

struct WireFrame {
  std::vector<std::uint8_t> bytes;
  ProxyDirection direction;
};

// ---------------------------------------------------------------- workloads

Match bench_match(Rng& rng) {
  Match match;
  match.in_port = PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 48))};
  match.eth_src = MacAddress::from_u64(rng.next_u64() & 0xffffffffffffull);
  match.eth_dst = MacAddress::from_u64(rng.next_u64() & 0xffffffffffffull);
  match.eth_type = 0x0800;
  match.ip_proto = 6;
  match.ipv4_src = Ipv4Address(10, 0, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
  match.ipv4_dst = Ipv4Address(10, 1, 0, static_cast<std::uint8_t>(rng.uniform_int(1, 254)));
  match.tcp_src = static_cast<std::uint16_t>(rng.uniform_int(1024, 65535));
  match.tcp_dst = 445;
  return match;
}

WireFrame echo_frame(Rng& rng) {
  std::vector<std::uint8_t> payload(8);
  for (auto& byte : payload) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return {encode(OfMessage{static_cast<std::uint32_t>(rng.next_u64()),
                           EchoRequestMsg{payload}}),
          ProxyDirection::kSwitchToController};
}

WireFrame packet_in_frame(Rng& rng, std::size_t payload_len) {
  PacketInMsg msg;
  msg.total_len = static_cast<std::uint16_t>(payload_len);
  msg.table_id = static_cast<std::uint8_t>(rng.uniform_int(1, 3));
  msg.cookie = Cookie{rng.next_u64()};
  msg.in_port = PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 48))};
  msg.data.resize(payload_len);
  for (auto& byte : msg.data) byte = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return {encode(OfMessage{static_cast<std::uint32_t>(rng.next_u64()), msg}),
          ProxyDirection::kSwitchToController};
}

WireFrame flow_mod_frame(Rng& rng) {
  FlowModMsg mod;
  mod.cookie = Cookie{rng.next_u64()};
  mod.table_id = static_cast<std::uint8_t>(rng.uniform_int(0, 2));
  mod.priority = static_cast<std::uint16_t>(rng.uniform_int(0, 65535));
  mod.match = bench_match(rng);
  mod.instructions.apply_actions.push_back(
      OutputAction{PortNo{static_cast<std::uint32_t>(rng.uniform_int(1, 48))}});
  if (rng.chance(0.5)) {
    mod.instructions.goto_table = static_cast<std::uint8_t>(rng.uniform_int(1, 2));
  }
  return {encode(OfMessage{static_cast<std::uint32_t>(rng.next_u64()), mod}),
          ProxyDirection::kControllerToSwitch};
}

WireFrame flow_removed_frame(Rng& rng) {
  FlowRemovedMsg removed;
  removed.cookie = Cookie{rng.next_u64()};
  removed.table_id = static_cast<std::uint8_t>(rng.uniform_int(1, 3));
  removed.packet_count = rng.next_u64() % 100000;
  removed.byte_count = rng.next_u64() % 10000000;
  removed.match = bench_match(rng);
  return {encode(OfMessage{static_cast<std::uint32_t>(rng.next_u64()), removed}),
          ProxyDirection::kSwitchToController};
}

WireFrame stats_reply_frame(Rng& rng) {
  MultipartReplyMsg reply;
  reply.stats_type = kStatsTypeFlow;
  const int entries = static_cast<int>(rng.uniform_int(2, 4));
  for (int i = 0; i < entries; ++i) {
    FlowStatsEntry entry;
    entry.table_id = static_cast<std::uint8_t>(rng.uniform_int(1, 3));
    entry.cookie = Cookie{rng.next_u64()};
    entry.packet_count = rng.next_u64() % 100000;
    entry.match = bench_match(rng);
    entry.instructions.goto_table = static_cast<std::uint8_t>(rng.uniform_int(1, 3));
    reply.flow_stats.push_back(std::move(entry));
  }
  return {encode(OfMessage{static_cast<std::uint32_t>(rng.next_u64()), reply}),
          ProxyDirection::kSwitchToController};
}

// A workload is what a proxy session sees: per-direction byte streams,
// pre-segmented into TCP-sized chunks. Segmentation happens once here so the
// timed passes only pay the costs the proxy pays — feed, framing, and the
// per-frame datapath.
struct Workload {
  std::string name;
  std::vector<std::vector<std::uint8_t>> from_switch_chunks;
  std::vector<std::vector<std::uint8_t>> from_controller_chunks;
  std::size_t frame_count = 0;
  std::size_t stream_bytes = 0;
};

void segment_stream(const std::vector<std::uint8_t>& stream,
                    std::vector<std::vector<std::uint8_t>>& chunks) {
  for (std::size_t offset = 0; offset < stream.size(); offset += kChunkSize) {
    const std::size_t take = std::min(kChunkSize, stream.size() - offset);
    chunks.emplace_back(stream.begin() + static_cast<std::ptrdiff_t>(offset),
                        stream.begin() + static_cast<std::ptrdiff_t>(offset + take));
  }
}

Workload make_workload(const std::string& name, std::size_t count,
                       const std::function<WireFrame(Rng&)>& generator,
                       std::uint64_t seed) {
  Workload workload;
  workload.name = name;
  Rng rng(seed);
  std::vector<std::uint8_t> from_switch;
  std::vector<std::uint8_t> from_controller;
  for (std::size_t i = 0; i < count; ++i) {
    WireFrame frame = generator(rng);
    auto& stream = frame.direction == ProxyDirection::kSwitchToController
                       ? from_switch
                       : from_controller;
    stream.insert(stream.end(), frame.bytes.begin(), frame.bytes.end());
    workload.stream_bytes += frame.bytes.size();
    ++workload.frame_count;
  }
  segment_stream(from_switch, workload.from_switch_chunks);
  segment_stream(from_controller, workload.from_controller_chunks);
  return workload;
}

// ---------------------------------------------------------------- pipelines

// The proxy's table-shift on a decoded message (src/core/proxy.cc subset
// covering the bench's message types).
bool shift_message(OfMessage& message, ProxyDirection direction) {
  if (direction == ProxyDirection::kSwitchToController) {
    if (auto* packet_in = std::get_if<PacketInMsg>(&message.payload)) {
      if (packet_in->table_id == 0) return false;  // PCP path (not generated)
      --packet_in->table_id;
      return true;
    }
    if (auto* removed = std::get_if<FlowRemovedMsg>(&message.payload)) {
      if (removed->table_id == 0) return false;
      --removed->table_id;
      return true;
    }
    if (auto* reply = std::get_if<MultipartReplyMsg>(&message.payload)) {
      for (auto& entry : reply->flow_stats) {
        --entry.table_id;
        if (entry.instructions.goto_table.has_value() &&
            *entry.instructions.goto_table > 0) {
          --*entry.instructions.goto_table;
        }
      }
      return true;
    }
    return true;  // echo etc: forwarded unchanged
  }
  if (auto* flow_mod = std::get_if<FlowModMsg>(&message.payload)) {
    ++flow_mod->table_id;
    if (flow_mod->instructions.goto_table.has_value()) {
      ++*flow_mod->instructions.goto_table;
    }
    return true;
  }
  return true;
}

// Order-sensitive sink hashing every output byte — used by the differential
// phase to prove the two pipelines byte-identical.
struct ByteSink {
  std::uint64_t checksum = 0;
  std::uint64_t bytes = 0;
  std::uint64_t frames = 0;

  void consume(const std::uint8_t* data, std::size_t size) {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < size; ++i) sum += data[i];
    checksum = checksum * 1099511628211ull + sum + size;
    bytes += size;
    ++frames;
  }
};

// Sink for the timed passes: touches both ends of the frame so the output
// cannot be optimized away, without charging an O(size) hash to either path.
struct LightSink {
  std::uint64_t checksum = 0;

  void consume(const std::uint8_t* data, std::size_t size) {
    checksum += data[0] + data[size - 1] + size;
  }
};

// One pass of the decode -> shift -> re-encode proxy over the workload's
// pre-segmented byte streams, one FrameDecoder per direction.
template <typename Sink>
void run_slow_pass(const Workload& workload, Sink& sink) {
  std::vector<std::uint8_t> scratch;
  auto drain_stream = [&](const std::vector<std::vector<std::uint8_t>>& chunks,
                          ProxyDirection direction) {
    FrameDecoder decoder;
    FrameView view;
    for (const auto& chunk : chunks) {
      decoder.feed(chunk);
      while (decoder.next_frame(view) == FrameStatus::kFrame) {
        auto decoded = decode(view);
        if (!decoded.ok()) continue;
        if (!shift_message(decoded.value(), direction)) continue;
        encode_into(decoded.value(), scratch);
        sink.consume(scratch.data(), scratch.size());
      }
    }
  };
  drain_stream(workload.from_switch_chunks, ProxyDirection::kSwitchToController);
  drain_stream(workload.from_controller_chunks, ProxyDirection::kControllerToSwitch);
}

// One pass of the classify/patch fast path over the same streams. Pooled
// buffers stand in for the proxy's deferred-delivery frames.
template <typename Sink>
void run_fast_pass(const Workload& workload, FrameBufferPool& pool, Sink& sink) {
  auto drain_stream = [&](const std::vector<std::vector<std::uint8_t>>& chunks,
                          ProxyDirection direction) {
    FrameDecoder decoder;
    FrameView view;
    for (const auto& chunk : chunks) {
      decoder.feed(chunk);
      while (decoder.next_frame(view) == FrameStatus::kFrame) {
        switch (classify(view, direction, kNumTables)) {
          case FrameClass::kPassThrough: {
            std::vector<std::uint8_t> buffer = pool.acquire_copy(view.data(), view.size());
            sink.consume(buffer.data(), buffer.size());
            pool.release(std::move(buffer));
            break;
          }
          case FrameClass::kPatch: {
            if (view.type() == OfType::kFlowRemoved &&
                view.data()[kFlowRemovedTableOffset] == 0) {
              break;  // dropped, no copy
            }
            std::vector<std::uint8_t> buffer = pool.acquire_copy(view.data(), view.size());
            if (patch_table_refs(buffer.data(), buffer.size(), direction)) {
              sink.consume(buffer.data(), buffer.size());
            }
            pool.release(std::move(buffer));
            break;
          }
          case FrameClass::kDecode: {
            auto decoded = decode(view);
            if (!decoded.ok()) break;
            if (!shift_message(decoded.value(), direction)) break;
            std::vector<std::uint8_t> buffer = pool.acquire();
            encode_into(decoded.value(), buffer);
            sink.consume(buffer.data(), buffer.size());
            pool.release(std::move(buffer));
            break;
          }
        }
      }
    }
  };
  drain_stream(workload.from_switch_chunks, ProxyDirection::kSwitchToController);
  drain_stream(workload.from_controller_chunks, ProxyDirection::kControllerToSwitch);
}

// Byte-identity: both pipelines over the same stream must produce the same
// output frame sequence (compared via the order-sensitive sink checksum).
bool verify_equivalence(const Workload& workload) {
  ByteSink slow_sink;
  run_slow_pass(workload, slow_sink);
  FrameBufferPool pool;
  ByteSink fast_sink;
  run_fast_pass(workload, pool, fast_sink);
  if (slow_sink.checksum != fast_sink.checksum || slow_sink.bytes != fast_sink.bytes ||
      slow_sink.frames != fast_sink.frames) {
    std::fprintf(stderr,
                 "FAIL %s: fast path diverged from slow path "
                 "(frames %llu vs %llu, bytes %llu vs %llu)\n",
                 workload.name.c_str(),
                 static_cast<unsigned long long>(slow_sink.frames),
                 static_cast<unsigned long long>(fast_sink.frames),
                 static_cast<unsigned long long>(slow_sink.bytes),
                 static_cast<unsigned long long>(fast_sink.bytes));
    return false;
  }
  return true;
}

// ---------------------------------------------------------------- timing

struct MixResult {
  std::string name;
  std::size_t frames_per_pass = 0;
  std::size_t stream_bytes = 0;
  double slow_ns_per_frame = 0.0;
  double fast_ns_per_frame = 0.0;
  double slow_mb_per_s = 0.0;
  double fast_mb_per_s = 0.0;
  double speedup = 0.0;
  std::uint64_t steady_state_allocations = 0;
  double pool_hit_rate = 0.0;
};

template <typename PassFn>
double measure_ns_per_frame(const Workload& workload, double min_wall_ns, PassFn pass) {
  using Clock = std::chrono::steady_clock;
  pass();  // warm-up
  const auto start = Clock::now();
  std::size_t frames = 0;
  double elapsed_ns = 0.0;
  do {
    pass();
    frames += workload.frame_count;
    elapsed_ns = std::chrono::duration<double, std::nano>(Clock::now() - start).count();
  } while (elapsed_ns < min_wall_ns);
  return elapsed_ns / static_cast<double>(frames);
}

MixResult measure_mix(const Workload& workload, bool smoke) {
  const double min_wall_ns = smoke ? 2e7 : 2e8;
  MixResult result;
  result.name = workload.name;
  result.frames_per_pass = workload.frame_count;
  result.stream_bytes = workload.stream_bytes;

  LightSink slow_sink;
  result.slow_ns_per_frame = measure_ns_per_frame(
      workload, min_wall_ns, [&] { run_slow_pass(workload, slow_sink); });

  FrameBufferPool pool;
  LightSink fast_sink;
  // Warm the pool explicitly, snapshot, then measure: the allocation count
  // must not move during timed passes — zero allocations per frame at
  // steady state.
  run_fast_pass(workload, pool, fast_sink);
  const std::uint64_t warm_allocations = pool.stats().allocations;
  result.fast_ns_per_frame = measure_ns_per_frame(
      workload, min_wall_ns, [&] { run_fast_pass(workload, pool, fast_sink); });
  result.steady_state_allocations = pool.stats().allocations - warm_allocations;
  result.pool_hit_rate = pool.stats().hit_rate();

  result.speedup = result.fast_ns_per_frame > 0
                       ? result.slow_ns_per_frame / result.fast_ns_per_frame
                       : 0.0;
  const double bytes_per_frame =
      static_cast<double>(workload.stream_bytes) /
      static_cast<double>(workload.frame_count);
  result.slow_mb_per_s = bytes_per_frame / result.slow_ns_per_frame * 1e3;
  result.fast_mb_per_s = bytes_per_frame / result.fast_ns_per_frame * 1e3;
  return result;
}

// ---------------------------------------------------------------- reporting

void write_json(const char* path, const std::vector<MixResult>& results) {
  std::ofstream out(path);
  out << "{\n  \"mixes\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const MixResult& r = results[i];
    out << "    {\"mix\": \"" << r.name << "\""
        << ", \"frames_per_pass\": " << r.frames_per_pass
        << ", \"stream_bytes\": " << r.stream_bytes
        << ", \"slow_ns_per_frame\": " << r.slow_ns_per_frame
        << ", \"fast_ns_per_frame\": " << r.fast_ns_per_frame
        << ", \"slow_mb_per_s\": " << r.slow_mb_per_s
        << ", \"fast_mb_per_s\": " << r.fast_mb_per_s
        << ", \"speedup\": " << r.speedup
        << ", \"steady_state_allocations\": " << r.steady_state_allocations
        << ", \"pool_hit_rate\": " << r.pool_hit_rate << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path);
}

// Minimal extractor for our own JSON shape: returns the value following
// `"mix": "<name>" ... "speedup": ` in the baseline file.
bool baseline_speedup(const std::string& json, const std::string& mix, double* out) {
  const auto mix_pos = json.find("\"mix\": \"" + mix + "\"");
  if (mix_pos == std::string::npos) return false;
  const auto key_pos = json.find("\"speedup\": ", mix_pos);
  if (key_pos == std::string::npos) return false;
  *out = std::strtod(json.c_str() + key_pos + std::strlen("\"speedup\": "), nullptr);
  return true;
}

int check_baseline(const char* path, const std::vector<MixResult>& results) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "FAIL: cannot read baseline %s\n", path);
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  int failures = 0;
  for (const MixResult& r : results) {
    double expected = 0.0;
    if (!baseline_speedup(json, r.name, &expected)) {
      std::fprintf(stderr, "FAIL: baseline %s has no mix \"%s\"\n", path, r.name.c_str());
      ++failures;
      continue;
    }
    // >10% below the committed speedup is a datapath regression.
    if (r.speedup < 0.9 * expected) {
      std::fprintf(stderr,
                   "FAIL: mix %s speedup %.2fx regressed >10%% vs baseline %.2fx\n",
                   r.name.c_str(), r.speedup, expected);
      ++failures;
    } else {
      std::printf("baseline ok: mix %-20s %.2fx (baseline %.2fx)\n", r.name.c_str(),
                  r.speedup, expected);
    }
  }
  return failures == 0 ? 0 : 1;
}

int run(bool smoke, const char* baseline_path) {
  const std::size_t frames = smoke ? 256 : 1024;
  std::vector<Workload> workloads;
  workloads.push_back(make_workload("passthrough_echo", frames, echo_frame, 11));
  workloads.push_back(make_workload(
      "patched_packet_in_64", frames,
      [](Rng& rng) { return packet_in_frame(rng, 64); }, 13));
  workloads.push_back(make_workload(
      "patched_packet_in_1024", frames,
      [](Rng& rng) { return packet_in_frame(rng, 1024); }, 17));
  workloads.push_back(make_workload("patched_flow_mod", frames, flow_mod_frame, 19));
  workloads.push_back(
      make_workload("patched_stats_reply", frames / 4, stats_reply_frame, 23));
  workloads.push_back(make_workload(
      "mixed_realistic", frames,
      [](Rng& rng) -> WireFrame {
        // Roughly the proxied steady state: mostly packet-ins and flow-mods
        // with periodic echoes, flow expiries and stats polls.
        const int roll = static_cast<int>(rng.uniform_int(0, 9));
        if (roll < 4) return packet_in_frame(rng, 128);
        if (roll < 7) return flow_mod_frame(rng);
        if (roll < 8) return flow_removed_frame(rng);
        if (roll < 9) return echo_frame(rng);
        return stats_reply_frame(rng);
      },
      29));

  for (const Workload& workload : workloads) {
    if (!verify_equivalence(workload)) return 1;
  }
  std::printf("differential check: fast path byte-identical on all %zu mixes\n",
              workloads.size());

  std::vector<MixResult> results;
  for (const Workload& workload : workloads) {
    results.push_back(measure_mix(workload, smoke));
    const MixResult& r = results.back();
    std::printf(
        "%-24s slow %8.1f ns/frame  fast %7.1f ns/frame  %5.2fx  %7.1f MB/s  "
        "pool_hit %.3f\n",
        r.name.c_str(), r.slow_ns_per_frame, r.fast_ns_per_frame, r.speedup,
        r.fast_mb_per_s, r.pool_hit_rate);
    if (r.steady_state_allocations != 0) {
      std::fprintf(stderr,
                   "FAIL: mix %s performed %llu allocations at steady state "
                   "(expected 0)\n",
                   r.name.c_str(),
                   static_cast<unsigned long long>(r.steady_state_allocations));
      return 1;
    }
  }
  write_json("BENCH_proxy_datapath.json", results);
  if (baseline_path != nullptr) return check_baseline(baseline_path, results);
  return 0;
}

}  // namespace
}  // namespace dfi

int main(int argc, char** argv) {
  bool smoke = false;
  const char* baseline = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--check-baseline") == 0 && i + 1 < argc) {
      baseline = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--check-baseline <json>]\n", argv[0]);
      return 2;
    }
  }
  return dfi::run(smoke, baseline);
}
