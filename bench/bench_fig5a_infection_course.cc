// Reproduces paper Figure 5a: infections from the NotPetya surrogate over
// the first hour of a 09:00 foothold, under three conditions.
//
// Paper shape:
//   baseline — first infection after ~1 s; all 92 endpoints by ~2 min.
//   S-RBAC   — first infection ~2.5 min; full infection by ~25 min.
//   AT-RBAC  — first infection ~2.5 min; 83/92 in ~40 min; at least one
//              enclave never infected (its vulnerable host had no user).
#include <cstdio>
#include <vector>

#include "harness/report.h"
#include "harness/worm_experiment.h"

using namespace dfi;

int main() {
  std::printf("DFI reproduction — Figure 5a: infection course, 09:00 foothold\n");

  const PolicyCondition conditions[] = {PolicyCondition::kBaseline,
                                        PolicyCondition::kSRbac,
                                        PolicyCondition::kAtRbac};

  std::vector<WormExperimentResult> results;
  for (const PolicyCondition condition : conditions) {
    WormExperimentConfig config;
    config.condition = condition;
    config.foothold_hour = 9;
    config.horizon_after_foothold = hours(1.0);
    results.push_back(run_worm_experiment(config));
  }

  Report curve("Figure 5a: infected endpoints over time (09:00 foothold)");
  curve.columns({"t (min)", "baseline", "S-RBAC", "AT-RBAC"});
  for (const double minute : {0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 15.0, 20.0, 25.0,
                              30.0, 40.0, 50.0, 60.0}) {
    std::vector<std::string> row = {Report::fmt(minute, 1)};
    for (const auto& result : results) {
      row.push_back(Report::fmt(result.curve.value_at(minute * 60.0), 0));
    }
    curve.row(row);
  }
  curve.print();

  Report milestones("Figure 5a milestones: paper vs measured");
  milestones.columns({"Condition", "Metric", "Paper", "Measured"});
  const char* names[] = {"baseline", "S-RBAC", "AT-RBAC"};
  const char* first_paper[] = {"~1 s", "~2.5 min", "~2.5 min"};
  const char* total_paper[] = {"92/92 by ~2 min", "92/92 by ~25 min",
                               "83/92 by ~40 min"};
  for (int i = 0; i < 3; ++i) {
    milestones.row({names[i], "first infection", first_paper[i],
                    Report::fmt(results[static_cast<std::size_t>(i)].first_infection_s) + " s"});
    milestones.row(
        {names[i], "total infected (1 h)", total_paper[i],
         std::to_string(results[static_cast<std::size_t>(i)].total_infected) + "/" +
             std::to_string(results[static_cast<std::size_t>(i)].endpoints) +
             " (last at " +
             Report::fmt(results[static_cast<std::size_t>(i)].last_infection_s / 60.0, 1) +
             " min)"});
  }
  milestones.note("expected ordering: baseline fastest/fullest; AT-RBAC slowest & partial");
  milestones.print();
  return 0;
}
