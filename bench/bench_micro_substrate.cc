// Substrate micro-benchmarks (google-benchmark): the hot-path costs of the
// packet codec, match engine, flow tables, wire codec, ERM and Policy
// Manager that every simulated flow exercises.
#include <benchmark/benchmark.h>

#include "bus/message_bus.h"
#include "common/rng.h"
#include "core/entity_resolution.h"
#include "core/policy_manager.h"
#include "openflow/flow_table.h"
#include "openflow/wire.h"

namespace dfi {
namespace {

Packet sample_packet() {
  return make_tcp_packet(MacAddress::from_u64(0xa), MacAddress::from_u64(0xb),
                         Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2), 49152,
                         445);
}

void BM_PacketSerialize(benchmark::State& state) {
  const Packet packet = sample_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(packet.serialize());
  }
}
BENCHMARK(BM_PacketSerialize);

void BM_PacketParse(benchmark::State& state) {
  const auto bytes = sample_packet().serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Packet::parse(bytes));
  }
}
BENCHMARK(BM_PacketParse);

void BM_MatchExactFromPacket(benchmark::State& state) {
  const Packet packet = sample_packet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Match::exact_from_packet(packet, PortNo{1}));
  }
}
BENCHMARK(BM_MatchExactFromPacket);

void BM_MatchMatches(benchmark::State& state) {
  const Packet packet = sample_packet();
  const Match match = Match::exact_from_packet(packet, PortNo{1});
  for (auto _ : state) {
    benchmark::DoNotOptimize(match.matches(packet, PortNo{1}));
  }
}
BENCHMARK(BM_MatchMatches);

// Wildcard (partial-match) rules live on the linear list: O(N) by design.
void BM_FlowTableLookupWildcardRules(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  FlowTable table(0, rules + 1);
  Rng rng(1);
  for (std::size_t i = 0; i < rules; ++i) {
    FlowRule rule;
    rule.priority = 100;
    rule.match.ipv4_src = Ipv4Address(static_cast<std::uint32_t>(rng.next_u64()));
    rule.match.tcp_src = static_cast<std::uint16_t>(rng.uniform_int(1, 65535));
    table.add(std::move(rule), SimTime{});
  }
  const Packet packet = sample_packet();  // matches none: worst case
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(packet, PortNo{1}, 64, SimTime{}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlowTableLookupWildcardRules)->Range(16, 16384)->Complexity(benchmark::oN);

// Exact-match (DFI-style) rules hit the hash index: O(1) regardless of N.
void BM_FlowTableLookupExactRules(benchmark::State& state) {
  const auto rules = static_cast<std::size_t>(state.range(0));
  FlowTable table(0, rules + 1);
  Rng rng(2);
  for (std::size_t i = 0; i < rules; ++i) {
    const Packet packet = make_tcp_packet(
        MacAddress::from_u64(rng.next_u64() & 0xffffffffffull),
        MacAddress::from_u64(rng.next_u64() & 0xffffffffffull),
        Ipv4Address(static_cast<std::uint32_t>(rng.next_u64())),
        Ipv4Address(static_cast<std::uint32_t>(rng.next_u64())),
        static_cast<std::uint16_t>(rng.uniform_int(1, 65535)), 445);
    FlowRule rule;
    rule.priority = 100;
    rule.match = Match::exact_from_packet(packet, PortNo{1});
    table.add(std::move(rule), SimTime{});
  }
  const Packet probe = sample_packet();  // miss: must prove nothing matches
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(probe, PortNo{1}, 64, SimTime{}));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FlowTableLookupExactRules)->Range(16, 16384)->Complexity(benchmark::o1);

void BM_WireEncodeFlowMod(benchmark::State& state) {
  FlowModMsg mod;
  mod.match = Match::exact_from_packet(sample_packet(), PortNo{1});
  mod.instructions = Instructions::to_table(1);
  const OfMessage message{1, mod};
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode(message));
  }
}
BENCHMARK(BM_WireEncodeFlowMod);

void BM_WireDecodeFlowMod(benchmark::State& state) {
  FlowModMsg mod;
  mod.match = Match::exact_from_packet(sample_packet(), PortNo{1});
  mod.instructions = Instructions::to_table(1);
  const auto bytes = encode(OfMessage{1, mod});
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode(bytes));
  }
}
BENCHMARK(BM_WireDecodeFlowMod);

void BM_PolicyQuery(benchmark::State& state) {
  const auto rule_count = static_cast<int>(state.range(0));
  MessageBus bus;
  PolicyManager manager(bus);
  for (int i = 0; i < rule_count; ++i) {
    PolicyRule rule;
    rule.action = PolicyAction::kAllow;
    rule.source.host = Hostname{"host-" + std::to_string(i)};
    rule.destination.host = Hostname{"host-" + std::to_string(i + 1)};
    manager.insert(rule, PdpPriority{10}, "bench");
  }
  FlowView flow;
  flow.ether_type = 0x0800;
  flow.src.hostnames = {Hostname{"host-0"}};
  flow.dst.hostnames = {Hostname{"host-1"}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.query(flow));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PolicyQuery)->Range(16, 4096)->Complexity(benchmark::oN);

void BM_ErmEnrich(benchmark::State& state) {
  MessageBus bus;
  EntityResolutionManager erm(bus);
  const auto bindings = static_cast<int>(state.range(0));
  for (int i = 0; i < bindings; ++i) {
    BindingEvent host_ip;
    host_ip.kind = BindingKind::kHostIp;
    host_ip.host = Hostname{"host-" + std::to_string(i)};
    host_ip.ip = Ipv4Address(static_cast<std::uint32_t>(0x0a000001 + i));
    erm.apply(host_ip);
    BindingEvent user_host;
    user_host.kind = BindingKind::kUserHost;
    user_host.user = Username{"user-" + std::to_string(i)};
    user_host.host = Hostname{"host-" + std::to_string(i)};
    erm.apply(user_host);
  }
  EndpointView view;
  view.ip = Ipv4Address(0x0a000001 + static_cast<std::uint32_t>(bindings / 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(erm.enrich(view));
  }
}
BENCHMARK(BM_ErmEnrich)->Range(64, 8192);

void BM_MessageBusPublish(benchmark::State& state) {
  MessageBus bus;
  int sink = 0;
  auto sub = bus.subscribe<int>("t", [&sink](const int& v) { sink += v; });
  for (auto _ : state) {
    bus.publish("t", 1);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_MessageBusPublish);

}  // namespace
}  // namespace dfi

BENCHMARK_MAIN();
