// Reproduces paper Figure 4: Time-to-First-Byte for new flows as a function
// of the new-flow arrival rate, with and without DFI.
//
// Paper shape: without DFI, TTFB is flat at 4-6 ms across all rates. With
// DFI, TTFB starts ~22 ms, rises to ~85 ms at 700 flows/sec (saturation
// onset), and past ~800 flows/sec the bounded queue drops flows, which
// re-enter on TCP retransmission — the mean plateaus around 200 ms with
// high variance.
#include <cstdio>
#include <vector>

#include "harness/report.h"
#include "harness/ttfb.h"

using namespace dfi;

int main() {
  std::printf("DFI reproduction — Figure 4: TTFB vs flow arrival rate\n");
  std::printf("(series: no-DFI and DFI; paper reference points inline)\n");

  const std::vector<double> rates = {0,   100, 200, 300, 400, 500, 600,
                                     700, 800, 900, 1000, 1200, 1400};

  Report report("Figure 4: TTFB (ms) vs background flow rate (flows/sec)");
  report.columns({"rate", "no-DFI mean", "no-DFI sd", "DFI mean", "DFI sd",
                  "DFI drops", "paper ref"});

  ProxyStats recovery_totals;
  for (const double rate : rates) {
    TtfbConfig without;
    without.with_dfi = false;
    without.background_fps = rate;
    without.duration = seconds(20.0);
    const TtfbResult base = run_ttfb_experiment(without);

    TtfbConfig with;
    with.with_dfi = true;
    with.background_fps = rate;
    with.duration = seconds(20.0);
    const TtfbResult dfi = run_ttfb_experiment(with);

    recovery_totals.degraded_entries += dfi.proxy.degraded_entries;
    recovery_totals.degraded_exits += dfi.proxy.degraded_exits;
    recovery_totals.degraded_suppressed += dfi.proxy.degraded_suppressed;
    recovery_totals.degraded_forwarded += dfi.proxy.degraded_forwarded;
    recovery_totals.backoff_retries += dfi.proxy.backoff_retries;
    recovery_totals.resync_clears += dfi.proxy.resync_clears;
    recovery_totals.journal_replays += dfi.proxy.journal_replays;
    recovery_totals.journal_records_replayed += dfi.proxy.journal_records_replayed;
    recovery_totals.journal_torn_tails += dfi.proxy.journal_torn_tails;

    std::string paper_ref = "-";
    if (rate == 0) paper_ref = "no-DFI 4-6; DFI ~22";
    if (rate == 700) paper_ref = "DFI ~85 (saturation begins)";
    if (rate >= 900) paper_ref = "DFI plateau ~200, high variance";

    report.row({Report::fmt(rate, 0), Report::fmt(base.ttfb_ms.mean()),
                Report::fmt(base.ttfb_ms.stddev()), Report::fmt(dfi.ttfb_ms.mean()),
                Report::fmt(dfi.ttfb_ms.stddev()),
                std::to_string(dfi.control_plane_drops), paper_ref});
  }
  report.note("each row: 20 s run, probe every 250 ms; drops = PCP queue rejections");
  report.print();

  // Fault-free runs should show all-zero recovery counters — a nonzero row
  // here means a degraded window opened during the benchmark.
  Report recovery = recovery_report(recovery_totals);
  recovery.note("summed over the DFI series above (health monitoring idle)");
  recovery.print();
  return 0;
}
