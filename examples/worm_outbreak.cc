// Worm outbreak demo: the NotPetya surrogate loose on the enterprise
// testbed under a chosen policy condition (paper Section V-B).
//
// Usage: worm_outbreak [baseline|srbac|atrbac] [foothold-hour]
//
// Prints the live infection log and a final summary: who was infected,
// when, from where, and by which vector.
#include <cstdio>
#include <cstring>

#include "worm/worm.h"

using namespace dfi;

int main(int argc, char** argv) {
  PolicyCondition condition = PolicyCondition::kAtRbac;
  int foothold_hour = 9;
  if (argc > 1) {
    if (std::strcmp(argv[1], "baseline") == 0) condition = PolicyCondition::kBaseline;
    if (std::strcmp(argv[1], "srbac") == 0) condition = PolicyCondition::kSRbac;
    if (std::strcmp(argv[1], "atrbac") == 0) condition = PolicyCondition::kAtRbac;
  }
  if (argc > 2) foothold_hour = std::atoi(argv[2]);

  std::printf("DFI worm outbreak demo — condition=%s, foothold at %02d:00\n\n",
              to_string(condition), foothold_hour);

  EnterpriseConfig config;
  config.condition = condition;
  if (condition != PolicyCondition::kBaseline) config.dfi = DfiConfig::functional();
  config.controller.zero_latency = true;
  EnterpriseTestbed testbed(config);
  testbed.schedule_all_activity();

  WormScenario worm(testbed, WormConfig{});
  const Hostname foothold{"host-d3-2"};
  worm.infect_foothold(foothold, clock_time(foothold_hour));
  worm.run_until(clock_time(foothold_hour) + hours(1.5));

  std::printf("infection log:\n");
  for (const auto& record : worm.infections()) {
    std::printf("  %s  %-12s %s%s\n", format_clock(record.at).c_str(),
                record.host.value.c_str(),
                record.infected_from.value.empty()
                    ? "(foothold)"
                    : ("<- " + record.infected_from.value).c_str(),
                record.infected_from.value.empty()
                    ? ""
                    : (record.via_exploit ? "  [exploit]" : "  [stolen credential]"));
  }

  const auto& stats = worm.stats();
  std::printf("\nsummary after 90 minutes:\n");
  std::printf("  infected: %zu / %zu endpoints\n", worm.infected_count(),
              testbed.endpoints().size());
  std::printf("  connection attempts: %llu (%llu reached their target)\n",
              static_cast<unsigned long long>(stats.connection_attempts),
              static_cast<unsigned long long>(stats.connections_succeeded));
  std::printf("  vectors: %llu exploit, %llu credential theft\n",
              static_cast<unsigned long long>(stats.exploit_successes),
              static_cast<unsigned long long>(stats.credential_successes));
  if (condition != PolicyCondition::kBaseline) {
    const auto& pcp = testbed.dfi()->pcp().stats();
    std::printf("  DFI: %llu packet-ins, %llu denied flows, %llu rules installed\n",
                static_cast<unsigned long long>(pcp.packet_ins),
                static_cast<unsigned long long>(pcp.denied + pcp.default_denied),
                static_cast<unsigned long long>(pcp.rules_installed));
  }
  return 0;
}
