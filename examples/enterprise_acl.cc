// Enterprise access control demo: the full 92-endpoint paper testbed with
// the AT-RBAC policy, showing how reachability follows user sessions.
//
// The example provisions the enterprise, logs users on and off, and probes
// concrete flows through the real OpenFlow data plane after each event —
// the reachability matrix changes in front of you as sessions change.
#include <cstdio>

#include "testbed/enterprise.h"

using namespace dfi;

namespace {

void probe(EnterpriseTestbed& testbed, const char* from, const char* to,
           std::uint16_t port) {
  Host* source = testbed.host(Hostname{from});
  Host* target = testbed.host(Hostname{to});
  if (source == nullptr || target == nullptr) return;
  ConnectResult outcome;
  source->connect(target->ip(), port, [&](const ConnectResult& r) { outcome = r; },
                  ConnectOptions{seconds(3.0), milliseconds(500), 2});
  testbed.sim().run_until(testbed.sim().now() + seconds(5.0));
  std::printf("  %-12s -> %-12s :%-4u  %s\n", from, to, port,
              outcome.connected ? "ALLOWED"
                                : (outcome.refused ? "refused (port closed)"
                                                   : "denied"));
}

void logon(EnterpriseTestbed& testbed, const char* host) {
  const auto user = testbed.primary_user(Hostname{host});
  if (!user.has_value()) return;
  std::printf("\n== %s logs onto %s ==\n", user->value.c_str(), host);
  testbed.directory().record_logon(*user, Hostname{host});
  testbed.siem().process_created(*user, Hostname{host});
  testbed.sim().run_until(testbed.sim().now() + seconds(1.0));
}

void logoff(EnterpriseTestbed& testbed, const char* host) {
  const auto user = testbed.primary_user(Hostname{host});
  if (!user.has_value()) return;
  std::printf("\n== %s logs off %s ==\n", user->value.c_str(), host);
  testbed.siem().process_terminated(*user, Hostname{host});
  testbed.sim().run_until(testbed.sim().now() + seconds(1.0));
}

}  // namespace

int main() {
  std::printf("DFI enterprise ACL demo — AT-RBAC on the paper's 92-endpoint testbed\n");

  EnterpriseConfig config;
  config.condition = PolicyCondition::kAtRbac;
  config.dfi = DfiConfig::functional();
  config.controller.zero_latency = true;
  EnterpriseTestbed testbed(config);

  std::printf("\ntestbed: %zu endpoints (%zu servers), %zu switches, policy = %s\n",
              testbed.endpoints().size(), testbed.servers().size(),
              testbed.network().switches().size(), to_string(config.condition));
  std::printf("policy rules in the Policy Manager: %zu (standing auth set)\n",
              testbed.dfi()->policy_manager().size());

  std::printf("\n-- everyone logged off: only the authentication set is open --\n");
  probe(testbed, "host-d1-2", "host-d1-3", 445);  // enclave peer: denied
  probe(testbed, "host-d1-2", "srv-email", 445);  // server: denied
  probe(testbed, "host-d1-2", "srv-ad", 88);      // Kerberos on AD: allowed

  logon(testbed, "host-d1-2");
  std::printf("policy rules now: %zu\n", testbed.dfi()->policy_manager().size());
  probe(testbed, "host-d1-2", "host-d1-3", 445);  // enclave peer: allowed
  probe(testbed, "host-d1-2", "srv-email", 445);  // server: allowed
  probe(testbed, "host-d1-2", "host-d2-1", 445);  // cross-enclave: denied

  logon(testbed, "host-d2-1");
  probe(testbed, "host-d1-2", "host-d2-1", 445);  // still cross-enclave: denied
  probe(testbed, "host-d2-1", "srv-file", 445);   // its own role set: allowed

  logoff(testbed, "host-d1-2");
  probe(testbed, "host-d1-2", "host-d1-3", 445);  // revoked: denied again
  probe(testbed, "host-d1-2", "srv-ad", 88);      // auth set persists

  const auto& pcp = testbed.dfi()->pcp().stats();
  std::printf("\nDFI: %llu packet-ins (%llu allowed, %llu denied/default), "
              "%llu flushes, %llu spoof rejections\n",
              static_cast<unsigned long long>(pcp.packet_ins),
              static_cast<unsigned long long>(pcp.allowed),
              static_cast<unsigned long long>(pcp.denied + pcp.default_denied),
              static_cast<unsigned long long>(pcp.flush_directives),
              static_cast<unsigned long long>(pcp.spoof_denied));
  return 0;
}
