// Quickstart: the paper's end-to-end example (Section III-C).
//
// "When Alice is logged on, the computer she is using can communicate with
// the email server. When she is logged off, it cannot."
//
// This example builds a minimal deployment — one OpenFlow switch, Alice's
// laptop and an email server, the DFI control plane interposed between the
// switch and a learning controller, and the DHCP/DNS/SIEM services feeding
// the identifier-binding sensors — then walks the paper's 15-step sequence.
#include <cstdio>

#include "controller/learning_controller.h"
#include "core/dfi_system.h"
#include "core/pdp.h"
#include "services/dhcp.h"
#include "services/dns.h"
#include "services/siem.h"
#include "testbed/network.h"

using namespace dfi;

namespace {

// A tiny authentication-driven PDP, exactly the policy in the paper's
// example: on Alice's log-on, allow her machine <-> email server; on
// log-off, revoke.
class AliceMailPdp : public Pdp {
 public:
  AliceMailPdp(PolicyManager& policy, MessageBus& bus)
      : Pdp("alice-mail", PdpPriority{50}, policy),
        subscription_(bus.subscribe<SessionEvent>(
            topics::kSiemSessions, [this](const SessionEvent& event) {
              if (event.user != Username{"alice"}) return;
              if (event.logged_on) {
                PolicyRule to_mail;
                to_mail.action = PolicyAction::kAllow;
                to_mail.source.user = Username{"alice"};
                to_mail.destination.host = Hostname{"srv-email"};
                ids_.push_back(emit_rule(to_mail));
                PolicyRule from_mail;
                from_mail.action = PolicyAction::kAllow;
                from_mail.source.host = Hostname{"srv-email"};
                from_mail.destination.user = Username{"alice"};
                ids_.push_back(emit_rule(from_mail));
                std::printf("  [PDP] log-on event -> emitted %zu policy rules\n",
                            ids_.size());
              } else {
                for (const PolicyRuleId id : ids_) revoke_rule(id);
                ids_.clear();
                std::printf("  [PDP] log-off event -> policy revoked\n");
              }
            })) {}

 private:
  Subscription subscription_;
  std::vector<PolicyRuleId> ids_;
};

void check_mail(Simulator& sim, Host& laptop, Host& mail, const char* phase) {
  bool done = false;
  ConnectResult outcome;
  laptop.connect(mail.ip(), 143, [&](const ConnectResult& r) {
    outcome = r;
    done = true;
  });
  sim.run_until(sim.now() + seconds(10.0));
  std::printf("  [%s] IMAP connection: %s%s\n", phase,
              outcome.connected ? "ALLOWED" : "DENIED",
              outcome.connected
                  ? (" (TTFB " + format_duration(outcome.time_to_first_byte) + ")").c_str()
                  : "");
  (void)done;
}

}  // namespace

int main() {
  std::printf("DFI quickstart — the paper's Alice example (Section III-C)\n\n");

  Simulator sim;
  MessageBus bus;

  // The DFI control plane: ERM + Policy Manager + PCP + Proxy + sensors.
  DfiSystem dfi(sim, bus);
  LearningController controller(sim, ControllerConfig{}, Rng(1));

  // Data-plane services (the AD server provides DHCP and DNS).
  const auto clock = [&sim]() { return sim.now(); };
  DhcpServer dhcp(bus, clock, Ipv4Address(10, 0, 0, 10), 16);
  DnsServer dns(bus, clock);
  SiemService siem(bus, clock);

  // One switch, two endpoints.
  Network network(sim);
  network.add_switch(Dpid{1});
  Host& laptop = network.add_host(Hostname{"alice-laptop"},
                                  MacAddress::from_u64(0x020000000001ull), Dpid{1},
                                  PortNo{2});
  Host& mail = network.add_host(Hostname{"srv-email"},
                                MacAddress::from_u64(0x020000000002ull), Dpid{1},
                                PortNo{3});
  mail.open_port(143);

  std::printf("step 1-2: laptop joins the domain; DHCP + DNS bindings flow to the ERM\n");
  for (Host* host : {&laptop, &mail}) {
    const auto leased = dhcp.lease(host->mac());
    host->set_ip(leased.value());
    dns.register_record(host->name(), leased.value());
    (*network.arp())[leased.value()] = host->mac();
    std::printf("  %s -> %s\n", host->name().value.c_str(),
                leased.value().to_string().c_str());
  }

  network.attach_dfi_control(dfi, controller);
  network.settle();
  AliceMailPdp pdp(dfi.policy_manager(), bus);

  std::printf("\nbefore log-on: default deny\n");
  check_mail(sim, laptop, mail, "pre-logon");

  std::printf("\nstep 3-5: Alice logs on; SIEM sensor fires; PDP emits policy\n");
  siem.process_created(Username{"alice"}, Hostname{"alice-laptop"});

  std::printf("step 6-11: Alice checks her email\n");
  check_mail(sim, laptop, mail, "logged-on");

  std::printf("\nstep 12-15: Alice logs off; policy revoked; switch rules flushed\n");
  siem.process_terminated(Username{"alice"}, Hostname{"alice-laptop"});
  sim.run_until(sim.now() + seconds(1.0));
  check_mail(sim, laptop, mail, "post-logoff");

  const auto& stats = dfi.pcp().stats();
  std::printf("\nDFI control-plane stats: %llu packet-ins, %llu allowed, "
              "%llu default-denied, %llu rules installed, %llu flushes\n",
              static_cast<unsigned long long>(stats.packet_ins),
              static_cast<unsigned long long>(stats.allowed),
              static_cast<unsigned long long>(stats.default_denied),
              static_cast<unsigned long long>(stats.rules_installed),
              static_cast<unsigned long long>(stats.flush_directives));
  return 0;
}
