// Incident response demo: combining PDPs at different priorities.
//
// The paper supports multiple PDPs whose rules are resolved by unique
// administrator-assigned priorities (Section III-B). Here an S-RBAC PDP
// (priority 100) provides normal connectivity while a Quarantine PDP
// (priority 200) reacts to IDS alerts: on compromise it cuts the host off
// in both directions — the Policy Manager's consistency check flushes the
// host's cached Allow rules so even *ongoing* flows are cut — and on
// remediation it releases the quarantine.
#include <cstdio>

#include "core/pdps/quarantine.h"
#include "testbed/enterprise.h"

using namespace dfi;

namespace {

void probe(EnterpriseTestbed& testbed, const char* from, const char* to) {
  Host* source = testbed.host(Hostname{from});
  Host* target = testbed.host(Hostname{to});
  ConnectResult outcome;
  source->connect(target->ip(), 445, [&](const ConnectResult& r) { outcome = r; },
                  ConnectOptions{seconds(3.0), milliseconds(500), 2});
  testbed.sim().run_until(testbed.sim().now() + seconds(5.0));
  std::printf("  %-12s -> %-12s  %s\n", from, to,
              outcome.connected ? "ALLOWED" : "denied");
}

}  // namespace

int main() {
  std::printf("DFI incident response demo — S-RBAC + quarantine PDP stacking\n\n");

  EnterpriseConfig config;
  config.condition = PolicyCondition::kSRbac;
  config.dfi = DfiConfig::functional();
  config.controller.zero_latency = true;
  EnterpriseTestbed testbed(config);

  QuarantinePdp quarantine(PdpPriority{200}, testbed.dfi()->policy_manager(),
                           testbed.bus());

  std::printf("normal operations under S-RBAC:\n");
  probe(testbed, "host-d1-1", "host-d1-2");
  probe(testbed, "host-d1-1", "srv-file");

  std::printf("\n[IDS] alert: host-d1-1 is beaconing to a C2 server — quarantine!\n");
  testbed.bus().publish(topics::kQuarantineAlerts,
                        QuarantineAlert{Hostname{"host-d1-1"}, false});
  testbed.sim().run_until(testbed.sim().now() + seconds(1.0));

  std::printf("during quarantine (rules flushed from switches immediately):\n");
  probe(testbed, "host-d1-1", "host-d1-2");
  probe(testbed, "host-d1-1", "srv-file");
  probe(testbed, "host-d1-2", "host-d1-1");  // inbound also cut
  probe(testbed, "host-d1-2", "srv-file");   // the rest of the enclave is fine

  std::printf("\n[IR] host-d1-1 reimaged and cleared — release quarantine\n");
  testbed.bus().publish(topics::kQuarantineAlerts,
                        QuarantineAlert{Hostname{"host-d1-1"}, true});
  testbed.sim().run_until(testbed.sim().now() + seconds(1.0));

  std::printf("after release:\n");
  probe(testbed, "host-d1-1", "host-d1-2");
  probe(testbed, "host-d1-1", "srv-file");

  std::printf("\npolicy rules: %zu; PCP flushes executed: %llu\n",
              testbed.dfi()->policy_manager().size(),
              static_cast<unsigned long long>(
                  testbed.dfi()->pcp().stats().flush_directives));
  return 0;
}
